"""Unit conversions used throughout the library.

The paper expresses reliability in FIT (Failures In Time): the expected number
of failures per one billion (1e9) device-hours.  Internally the simulator works
in seconds and bytes, so this module centralises the conversions to avoid
scattering magic constants.
"""

from __future__ import annotations

#: Number of hours in the FIT reference interval (one billion hours).
FIT_HOURS: float = 1e9

#: Binary size units.
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Seconds per hour.
SECONDS_PER_HOUR: float = 3600.0


def fit_to_failures_per_hour(fit: float) -> float:
    """Convert a FIT rate to failures per hour.

    Parameters
    ----------
    fit:
        Rate in failures per 1e9 hours.

    Returns
    -------
    float
        Equivalent rate in failures per hour.
    """
    return fit / FIT_HOURS


def failures_per_hour_to_fit(rate_per_hour: float) -> float:
    """Convert a failures-per-hour rate to FIT."""
    return rate_per_hour * FIT_HOURS


def fit_to_failures_per_second(fit: float) -> float:
    """Convert a FIT rate to failures per second."""
    return fit / (FIT_HOURS * SECONDS_PER_HOUR)


def failures_per_second_to_fit(rate_per_second: float) -> float:
    """Convert a failures-per-second rate to FIT."""
    return rate_per_second * FIT_HOURS * SECONDS_PER_HOUR


def fit_to_mtbf_hours(fit: float) -> float:
    """Mean time between failures (hours) for a given FIT rate.

    Raises
    ------
    ValueError
        If ``fit`` is not strictly positive (an MTBF is undefined for a zero
        failure rate).
    """
    if fit <= 0:
        raise ValueError(f"MTBF undefined for non-positive FIT rate {fit!r}")
    return FIT_HOURS / fit


def mtbf_hours_to_fit(mtbf_hours: float) -> float:
    """FIT rate corresponding to a mean time between failures in hours."""
    if mtbf_hours <= 0:
        raise ValueError(f"MTBF must be positive, got {mtbf_hours!r}")
    return FIT_HOURS / mtbf_hours


def format_bytes(n_bytes: float) -> str:
    """Human-readable binary size (``"1.50 MiB"``, ``"312 B"``).

    Used by ``repro cache ls|stats`` so store sizes are readable at a glance;
    negative inputs keep their sign.  Rounding happens *after* unit selection,
    so a value whose rendering reaches the next binary boundary is promoted
    (1048575 bytes formats as ``"1.00 MiB"``, never ``"1024.00 KiB"``), and a
    magnitude that renders as zero drops the sign (no ``"-0 B"``).
    """
    value = abs(float(n_bytes))
    units = (("GiB", GIB), ("MiB", MIB), ("KiB", KIB), ("B", 1))
    for i, (unit, factor) in enumerate(units):
        if value >= factor or factor == 1:
            rendered = f"{value / factor:.2f}" if factor > 1 else f"{value:.0f}"
            if i > 0 and float(rendered) >= KIB:
                unit, factor = units[i - 1]
                rendered = f"{value / factor:.2f}"
            break
    sign = "-" if n_bytes < 0 and float(rendered) != 0.0 else ""
    return f"{sign}{rendered} {unit}"


def bytes_to_gib(n_bytes: float) -> float:
    """Convert a byte count to GiB."""
    return n_bytes / GIB


def bytes_to_mib(n_bytes: float) -> float:
    """Convert a byte count to MiB."""
    return n_bytes / MIB


def gib(n: float) -> float:
    """Byte count of ``n`` GiB."""
    return n * GIB


def mib(n: float) -> float:
    """Byte count of ``n`` MiB."""
    return n * MIB


def kib(n: float) -> float:
    """Byte count of ``n`` KiB."""
    return n * KIB


def hours(n: float) -> float:
    """Seconds in ``n`` hours."""
    return n * SECONDS_PER_HOUR


def seconds(n: float) -> float:
    """Identity helper kept for symmetry with :func:`hours`."""
    return float(n)


def milliseconds(n: float) -> float:
    """Seconds in ``n`` milliseconds."""
    return n * 1e-3


def microseconds(n: float) -> float:
    """Seconds in ``n`` microseconds."""
    return n * 1e-6
