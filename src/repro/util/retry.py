"""Bounded retries with exponential backoff, full jitter, and deadlines.

One shared retry discipline for every unreliable boundary in the system —
the ``repro submit``/``repro status`` HTTP client, the sweep workers'
store/lease IO, and the server's artifact composition all route through
:func:`retry_call`.  The policy is the textbook AWS "full jitter" scheme:
attempt ``i`` sleeps ``uniform(0, min(max_delay, base * 2**i))``, so
synchronized retry storms decorrelate, and two independent bounds stop the
loop — a maximum attempt count and a wall-clock deadline.

Jitter deliberately randomises *timing only*: whether an operation is
retried, and how often, is bounded by the policy, so chaos-injected fault
schedules (see :mod:`repro.serve.chaos`) stay replayable even though the
sleeps between attempts vary run to run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how fast, and for how long to keep retrying.

    ``max_attempts`` counts *total* calls (first try included), so
    ``max_attempts=1`` means no retries at all.  ``deadline_s`` is measured
    from the first attempt; a retry is only scheduled while the deadline has
    not passed, and the pre-retry sleep is clipped so the loop never
    oversleeps it.  ``deadline_s=None`` leaves only the attempt bound.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: Optional[float] = None
    jitter: bool = True

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The backoff before retry number ``attempt`` (0-based), jittered."""
        cap = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        if not self.jitter:
            return cap
        return (rng.random() if rng is not None else random.random()) * cap


class RetryError(RuntimeError):
    """Every attempt failed; the last underlying exception is ``__cause__``."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


def retry_call(
    fn: Callable[[], Any],
    *,
    policy: Optional[RetryPolicy] = None,
    retryable: Tuple[Type[BaseException], ...] = (OSError,),
    describe: str = "operation",
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
) -> Any:
    """Call ``fn`` until it succeeds, the attempts run out, or the deadline does.

    Only exceptions matching ``retryable`` are retried; anything else
    propagates immediately (a 404 is not a flaky network).  When the budget
    is exhausted the *original* exception type propagates (raised from a
    :class:`RetryError` carrying the attempt count), so callers' existing
    ``except`` clauses keep working whether or not a retry happened.

    ``on_retry(attempt, exc, delay_s)`` fires before each backoff sleep —
    the CLI uses it to tell the user why it is waiting.  ``sleep`` and
    ``rng`` are injectable so tests can pin timing without patching globals.
    """
    policy = policy if policy is not None else RetryPolicy()
    attempts = max(1, int(policy.max_attempts))
    started = time.monotonic()
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt + 1 >= attempts:
                break
            delay = policy.delay(attempt, rng)
            if policy.deadline_s is not None:
                remaining = policy.deadline_s - (time.monotonic() - started)
                if remaining <= 0:
                    break
                delay = min(delay, remaining)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    assert last is not None  # the loop only exits via return or an exception
    raise last from RetryError(
        f"{describe} failed after {attempts} attempt(s): {last}", attempts
    )


def poll_delays(
    base_delay_s: float = 0.1,
    max_delay_s: float = 2.0,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """An endless jittered backoff schedule for polling loops.

    Unlike :func:`retry_call` this never gives up — the caller owns the
    overall deadline — but the interval still grows exponentially to the cap
    and carries full jitter, so many pollers watching one job do not beat on
    the server in lockstep (the fix for ``--wait``'s fixed-interval poll).
    """
    attempt = 0
    while True:
        cap = min(max_delay_s, base_delay_s * (2.0 ** attempt))
        u = rng.random() if rng is not None else random.random()
        # Keep a floor of half the cap: pure full-jitter can draw ~0 and turn
        # the poll into a busy loop; polling wants paced, not instant.
        yield cap * (0.5 + 0.5 * u)
        if cap < max_delay_s:
            attempt += 1
