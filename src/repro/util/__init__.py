"""Shared utilities: unit conversions, seeded RNG streams, validation, tables.

These helpers are deliberately dependency-free (NumPy only) so every other
subpackage can import them without cycles.
"""

from repro.util.units import (
    FIT_HOURS,
    GIB,
    KIB,
    MIB,
    bytes_to_gib,
    bytes_to_mib,
    fit_to_failures_per_hour,
    fit_to_mtbf_hours,
    failures_per_hour_to_fit,
    hours,
    microseconds,
    milliseconds,
    mtbf_hours_to_fit,
    seconds,
)
from repro.util.retry import RetryError, RetryPolicy, poll_delays, retry_call
from repro.util.rng import RngStream, spawn_streams
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.util.tables import TextTable

__all__ = [
    "FIT_HOURS",
    "GIB",
    "KIB",
    "MIB",
    "RetryError",
    "RetryPolicy",
    "RngStream",
    "TextTable",
    "bytes_to_gib",
    "bytes_to_mib",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "failures_per_hour_to_fit",
    "fit_to_failures_per_hour",
    "fit_to_mtbf_hours",
    "hours",
    "microseconds",
    "milliseconds",
    "mtbf_hours_to_fit",
    "poll_delays",
    "retry_call",
    "seconds",
    "spawn_streams",
]
