"""Plain-text table rendering for experiment reports.

The benchmark harnesses print rows comparable to the paper's tables and
figures; this keeps the formatting in one place and independent of any plotting
library (none is available offline).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class TextTable:
    """Accumulate rows and render them as an aligned plain-text table."""

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        """Append a row; values are stringified with sensible float formatting."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._fmt(v) for v in values])

    @staticmethod
    def _fmt(value) -> str:
        """Render one cell: booleans as yes/no, floats with 3 decimals."""
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Render the table as a string with aligned columns."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(header))
        lines.append(header)
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction (0..1) as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def summarize_series(values: Iterable[float]) -> dict:
    """Return min/max/mean of a series (empty series yields zeros)."""
    vals = list(values)
    if not vals:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "count": 0}
    return {
        "min": min(vals),
        "max": max(vals),
        "mean": sum(vals) / len(vals),
        "count": len(vals),
    }
