"""Small argument-validation helpers shared across the library.

All helpers raise :class:`ValueError` (or :class:`TypeError` for wrong types)
with a message that names the offending parameter, and return the validated
value so they can be used inline in constructors.
"""

from __future__ import annotations

from typing import Any


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Require an integer ``value > 0``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    v = check_non_negative(value, name)
    if v > 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_fraction(value: float, name: str) -> float:
    """Alias of :func:`check_probability` for readability at call sites."""
    return check_probability(value, name)


def check_in(value: Any, options, name: str):
    """Require ``value`` to be one of ``options``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {sorted(map(str, options))}, got {value!r}")
    return value
