"""Deterministic random number streams.

Every stochastic component (fault injector, random selection policy, synthetic
workload jitter) takes an :class:`RngStream` so experiments are reproducible
and independent components never share generator state.

Two stream disciplines coexist:

* **sequential streams** (:class:`RngStream` on its default PCG64 generator) —
  one consumer draws in a fixed program order; correct whenever that order is
  itself deterministic (the single-threaded machine simulator, workload
  generation);
* **keyed streams** (:func:`fault_stream`) — draws are addressed by a key
  rather than by arrival order, so *concurrent* consumers (worker threads of
  the functional executor) observe values that are a pure function of
  ``(root_seed, task_id, execution_index)`` no matter which thread reaches the
  draw first.  Keyed streams use the counter-based Philox bit generator keyed
  through ``SeedSequence`` spawn keys, the mechanism ``SeedSequence.spawn``
  itself uses, so distinct keys yield statistically independent streams.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: ``spawn_key`` lane of fault-occurrence draws (crash/SDC Bernoullis).
FAULT_LANE_DRAW = 0
#: ``spawn_key`` lane of corruption-content draws (which bit flips where).
FAULT_LANE_CORRUPTION = 1

#: Two's-complement width used to fold (possibly negative) task ids into the
#: non-negative integers ``SeedSequence`` spawn keys require.
_KEY_WIDTH_MASK = (1 << 64) - 1


class RngStream:
    """A thin, seedable wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that (a) all call sites share one spelling for the
    handful of distributions we need, and (b) streams can be forked
    deterministically for sub-components.  ``bit_generator`` selects the
    underlying algorithm: the default PCG64 for ordinary sequential streams,
    or the counter-based ``"philox"`` for keyed per-execution streams.
    """

    def __init__(
        self,
        seed: int | np.random.SeedSequence | None = 0,
        bit_generator: str = "pcg64",
    ) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            self._seq = np.random.SeedSequence(seed)
        if bit_generator == "pcg64":
            self._gen = np.random.default_rng(self._seq)
        elif bit_generator == "philox":
            self._gen = np.random.Generator(np.random.Philox(self._seq))
        else:
            raise ValueError(f"unknown bit generator {bit_generator!r}")

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._gen

    def derived_seed(self) -> int:
        """A stable integer identity of this stream's full seed material.

        Equal to the plain integer seed for directly-constructed streams
        (``RngStream(99).derived_seed() == 99``), so seeding an injector with
        ``rng=RngStream(s)`` and with ``root_seed=s`` mean the same thing.
        Forked/spawned children share their parent's ``entropy`` but differ in
        spawn key, and streams built from composite entropy have no single
        integer seed — both derive a distinct value from the whole
        ``SeedSequence`` state instead, so two sibling forks never alias.
        """
        entropy = self._seq.entropy
        if isinstance(entropy, int) and not self._seq.spawn_key:
            return entropy
        return int(self._seq.generate_state(1, np.uint64)[0])

    def fork(self, n: int) -> List["RngStream"]:
        """Create ``n`` statistically independent child streams."""
        return [RngStream(s) for s in self._seq.spawn(n)]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a single uniform float in ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def random(self) -> float:
        """Draw a single uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def bernoulli(self, p: float) -> bool:
        """Draw a single Bernoulli sample with success probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self._gen.random() < p)

    def exponential(self, mean: float) -> float:
        """Draw an exponential variate with the given mean."""
        return float(self._gen.exponential(mean))

    def poisson(self, lam: float) -> int:
        """Draw a Poisson variate with rate ``lam``."""
        return int(self._gen.poisson(lam))

    def integers(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq: Sequence, size: int | None = None, replace: bool = True):
        """Choose elements from ``seq`` uniformly at random."""
        idx = self._gen.choice(len(seq), size=size, replace=replace)
        if size is None:
            return seq[int(idx)]
        return [seq[int(i)] for i in np.atleast_1d(idx)]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._gen.shuffle(items)

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Draw a normal variate."""
        return float(self._gen.normal(mean, std))

    def lognormal_duration(self, mean: float, cv: float) -> float:
        """Draw a positive duration with the given mean and coefficient of variation.

        Used to add realistic jitter to synthetic task durations.  ``cv == 0``
        returns the mean exactly.
        """
        if mean <= 0:
            raise ValueError(f"mean duration must be positive, got {mean!r}")
        if cv < 0:
            raise ValueError(f"coefficient of variation must be >= 0, got {cv!r}")
        if cv == 0.0:
            return float(mean)
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self._gen.lognormal(mu, np.sqrt(sigma2)))


def fault_key(task_id: int, execution_index: int, lane: int = FAULT_LANE_DRAW) -> Tuple[int, ...]:
    """The canonical ``SeedSequence`` spawn key of one fault-stream draw site.

    Negative components (tests use sentinel task ids like ``-1``) are folded
    two's-complement into 64 bits so the key is always valid spawn-key input.
    """
    return (
        task_id & _KEY_WIDTH_MASK,
        execution_index & _KEY_WIDTH_MASK,
        lane & _KEY_WIDTH_MASK,
    )


def fault_stream(
    root_seed: int,
    task_id: int,
    execution_index: int,
    lane: int = FAULT_LANE_DRAW,
) -> RngStream:
    """A keyed, counter-based stream for one execution of one task.

    The stream is a pure function of ``(root_seed, task_id, execution_index,
    lane)``: any two calls with the same key — in any process, thread, or
    call order — return streams that produce identical draws, and distinct
    keys produce statistically independent streams (``SeedSequence`` spawn
    semantics over the counter-based Philox generator).  This is what makes
    the injected-fault multiset of a functional run independent of worker
    count and scheduling order.
    """
    seq = np.random.SeedSequence(
        entropy=int(root_seed) & _KEY_WIDTH_MASK,
        spawn_key=fault_key(task_id, execution_index, lane),
    )
    return RngStream(seq, bit_generator="philox")


def spawn_streams(seed: int, names: Iterable[str]) -> dict:
    """Create one named child stream per entry of ``names`` from a root seed.

    The mapping is deterministic in both the seed and the order of ``names``.
    """
    names = list(names)
    root = RngStream(seed)
    children = root.fork(len(names))
    return dict(zip(names, children))
