"""Deterministic random number streams.

Every stochastic component (fault injector, random selection policy, synthetic
workload jitter) takes an :class:`RngStream` so experiments are reproducible
and independent components never share generator state.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


class RngStream:
    """A thin, seedable wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that (a) all call sites share one spelling for the
    handful of distributions we need, and (b) streams can be forked
    deterministically for sub-components.
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = 0) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            self._seq = np.random.SeedSequence(seed)
        self._gen = np.random.default_rng(self._seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._gen

    def fork(self, n: int) -> List["RngStream"]:
        """Create ``n`` statistically independent child streams."""
        return [RngStream(s) for s in self._seq.spawn(n)]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a single uniform float in ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def random(self) -> float:
        """Draw a single uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def bernoulli(self, p: float) -> bool:
        """Draw a single Bernoulli sample with success probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self._gen.random() < p)

    def exponential(self, mean: float) -> float:
        """Draw an exponential variate with the given mean."""
        return float(self._gen.exponential(mean))

    def poisson(self, lam: float) -> int:
        """Draw a Poisson variate with rate ``lam``."""
        return int(self._gen.poisson(lam))

    def integers(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq: Sequence, size: int | None = None, replace: bool = True):
        """Choose elements from ``seq`` uniformly at random."""
        idx = self._gen.choice(len(seq), size=size, replace=replace)
        if size is None:
            return seq[int(idx)]
        return [seq[int(i)] for i in np.atleast_1d(idx)]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._gen.shuffle(items)

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Draw a normal variate."""
        return float(self._gen.normal(mean, std))

    def lognormal_duration(self, mean: float, cv: float) -> float:
        """Draw a positive duration with the given mean and coefficient of variation.

        Used to add realistic jitter to synthetic task durations.  ``cv == 0``
        returns the mean exactly.
        """
        if mean <= 0:
            raise ValueError(f"mean duration must be positive, got {mean!r}")
        if cv < 0:
            raise ValueError(f"coefficient of variation must be >= 0, got {cv!r}")
        if cv == 0.0:
            return float(mean)
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self._gen.lognormal(mu, np.sqrt(sigma2)))


def spawn_streams(seed: int, names: Iterable[str]) -> dict:
    """Create one named child stream per entry of ``names`` from a root seed.

    The mapping is deterministic in both the seed and the order of ``names``.
    """
    names = list(names)
    root = RngStream(seed)
    children = root.fork(len(names))
    return dict(zip(names, children))
