"""PEP 562 lazy-export helper for the package ``__init__`` modules.

CLI startup cost is dominated by imports, and the figure targets only need a
narrow slice of the package (the analysis drivers import their dependencies
submodule-by-submodule).  Each package ``__init__`` therefore declares *where*
its public names live and resolves them on first attribute access instead of
importing every subsystem eagerly: ``import repro`` stays cheap, while
``from repro.core import AppFit`` behaves exactly as before.
"""

from __future__ import annotations

import sys
from importlib import import_module
from typing import Callable, Dict, Iterable, List, Tuple


def lazy_exports(
    module_name: str,
    exports: Dict[str, str],
    submodules: Iterable[str] = (),
) -> Tuple[Callable[[str], object], Callable[[], List[str]]]:
    """Build the ``(__getattr__, __dir__)`` pair for a lazy package init.

    ``exports`` maps public name -> defining module; ``submodules`` lists
    child modules reachable as attributes (``repro.runtime`` after ``import
    repro``, without an explicit submodule import).  Resolved names are cached
    on the package, so each attribute pays its import once.
    """
    children = frozenset(submodules)

    def __getattr__(name: str) -> object:  # noqa: N807 - PEP 562 hook
        target = exports.get(name)
        if target is not None:
            value = getattr(import_module(target), name)
        elif name in children:
            value = import_module(f"{module_name}.{name}")
        else:
            raise AttributeError(f"module {module_name!r} has no attribute {name!r}")
        setattr(sys.modules[module_name], name, value)
        return value

    def __dir__() -> List[str]:
        return sorted(set(vars(sys.modules[module_name])) | set(exports) | children)

    return __getattr__, __dir__
