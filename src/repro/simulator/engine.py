"""A minimal discrete-event queue.

The execution simulator only needs ordered delivery of timestamped events with
deterministic tie-breaking, so the engine is a thin wrapper around ``heapq``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class EventQueue:
    """A time-ordered event queue with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """The timestamp of the most recently popped event."""
        return self._now

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at absolute time ``time``."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule an event in the past: {time} < now {self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def push_after(self, delay: float, payload: Any) -> None:
        """Schedule ``payload`` after a relative delay from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.push(self._now + delay, payload)

    def pop(self) -> Tuple[float, Any]:
        """Pop the earliest event, advancing the simulation clock."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, _seq, payload = heapq.heappop(self._heap)
        self._now = time
        return time, payload

    def peek_time(self) -> Optional[float]:
        """The timestamp of the next event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def run(self, handler: Callable[[float, Any], None], max_events: Optional[int] = None) -> int:
        """Drain the queue, calling ``handler(time, payload)`` for each event.

        Returns the number of events processed.  ``max_events`` guards against
        runaway schedules in tests.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {processed} events"
                )
            time, payload = self.pop()
            handler(time, payload)
            processed += 1
        return processed
