"""Numba-compatible twin of the C replay kernel (``_simkernel.c``).

One function, :func:`kernel`, written in the nopython subset: typed NumPy
workspaces, inner closures for the heap primitives (lengths live in one-cell
int64 arrays because numba closures cannot rebind enclosing scalars), and no
Python objects in the hot loop.  The same function object is

* JIT-compiled by :mod:`repro.simulator.backend` when numba is installed
  (the ``numba`` backend), and
* executed as plain Python by the test suite to pin its semantics against the
  scalar reference even on machines without numba.

Argument order mirrors ``simulate_kernel`` in ``_simkernel.c`` so the two
backends share one dispatch site in ``fastpath``.  Every float operation,
comparison, event-ordering rule and fault-draw cursor step matches the
reference loops in :mod:`repro.simulator.fastpath` — events are ordered by the
total order (time, sequence number), so heap-layout differences cannot change
the pop sequence.
"""

from __future__ import annotations

import numpy as np

#: Return codes, matching ``_simkernel.c``.
OK = 0
ERR_ALLOC = 1
ERR_HEAP_OVERFLOW = 2
ERR_DRAWS_EXHAUSTED = 3

#: Event kinds, matching ``fastpath`` / ``_simkernel.c``.
_READY, _FREE, _SPARE_FREE, _COMPLETE = 0, 1, 2, 3


def kernel(
    n,
    n_nodes,
    cores_per_node,
    spares_per_node,
    net_latency,
    net_bandwidth,
    contention,
    collect,
    p_crash,
    p_sdc,
    decision_s,
    dur,
    mem,
    core_busy0,
    rep_core_busy,
    completion_spare,
    core_busy_nospare,
    completion_nospare,
    overhead_rep,
    restore_dur,
    restore_dur_vote,
    succ_indptr,
    succ_indices,
    edge_bytes,
    in_degree,
    node_of,
    is_replicated,
    uniforms,
    n_uniforms,
    out_scalars,
    out_counts,
    start_at,
    finish_at,
    overhead_at,
    recovery_at,
):
    """Replay one compiled graph; returns a status code (0 = OK)."""
    crash_mid = 0.0 < p_crash < 1.0
    crash_hi = p_crash >= 1.0
    sdc_mid = 0.0 < p_sdc < 1.0
    sdc_hi = p_sdc >= 1.0

    # (time, seq) event heap with (kind, idx) payload.
    cap = 4 * n + 8
    ev_time = np.empty(cap, np.float64)
    ev_seq = np.empty(cap, np.int64)
    ev_kind = np.empty(cap, np.int64)
    ev_idx = np.empty(cap, np.int64)
    hlen = np.zeros(1, np.int64)

    def heap_push(time, seq, kind, idx):
        pos = hlen[0]
        hlen[0] = pos + 1
        ev_time[pos] = time
        ev_seq[pos] = seq
        ev_kind[pos] = kind
        ev_idx[pos] = idx
        while pos > 0:
            parent = (pos - 1) // 2
            if ev_time[pos] < ev_time[parent] or (
                ev_time[pos] == ev_time[parent] and ev_seq[pos] < ev_seq[parent]
            ):
                ev_time[pos], ev_time[parent] = ev_time[parent], ev_time[pos]
                ev_seq[pos], ev_seq[parent] = ev_seq[parent], ev_seq[pos]
                ev_kind[pos], ev_kind[parent] = ev_kind[parent], ev_kind[pos]
                ev_idx[pos], ev_idx[parent] = ev_idx[parent], ev_idx[pos]
                pos = parent
            else:
                break

    def heap_pop():
        top_time = ev_time[0]
        top_kind = ev_kind[0]
        top_idx = ev_idx[0]
        last = hlen[0] - 1
        hlen[0] = last
        if last > 0:
            ev_time[0] = ev_time[last]
            ev_seq[0] = ev_seq[last]
            ev_kind[0] = ev_kind[last]
            ev_idx[0] = ev_idx[last]
            pos = 0
            while True:
                left = 2 * pos + 1
                right = left + 1
                best = pos
                if left < last and (
                    ev_time[left] < ev_time[best]
                    or (ev_time[left] == ev_time[best] and ev_seq[left] < ev_seq[best])
                ):
                    best = left
                if right < last and (
                    ev_time[right] < ev_time[best]
                    or (ev_time[right] == ev_time[best] and ev_seq[right] < ev_seq[best])
                ):
                    best = right
                if best == pos:
                    break
                ev_time[pos], ev_time[best] = ev_time[best], ev_time[pos]
                ev_seq[pos], ev_seq[best] = ev_seq[best], ev_seq[pos]
                ev_kind[pos], ev_kind[best] = ev_kind[best], ev_kind[pos]
                ev_idx[pos], ev_idx[best] = ev_idx[best], ev_idx[pos]
                pos = best
        return top_time, top_kind, top_idx

    # Per-node ready heaps (plain int min-heaps of dense task indices) share
    # one backing array: each task enters its node's queue exactly once.
    ready = np.empty(max(n, 1), np.int64)
    ready_off = np.zeros(n_nodes, np.int64)
    ready_len = np.zeros(n_nodes, np.int64)
    node_count = np.zeros(n_nodes, np.int64)
    for i in range(n):
        node_count[node_of[i]] += 1
    off = 0
    for nid in range(n_nodes):
        ready_off[nid] = off
        off += node_count[nid]

    def ready_push(nid, value):
        base = ready_off[nid]
        pos = ready_len[nid]
        ready_len[nid] = pos + 1
        ready[base + pos] = value
        while pos > 0:
            parent = (pos - 1) // 2
            if ready[base + pos] < ready[base + parent]:
                ready[base + pos], ready[base + parent] = (
                    ready[base + parent],
                    ready[base + pos],
                )
                pos = parent
            else:
                break

    def ready_pop(nid):
        base = ready_off[nid]
        top = ready[base]
        last = ready_len[nid] - 1
        ready_len[nid] = last
        if last > 0:
            ready[base] = ready[base + last]
            pos = 0
            while True:
                left = 2 * pos + 1
                right = left + 1
                best = pos
                if left < last and ready[base + left] < ready[base + best]:
                    best = left
                if right < last and ready[base + right] < ready[base + best]:
                    best = right
                if best == pos:
                    break
                ready[base + pos], ready[base + best] = (
                    ready[base + best],
                    ready[base + pos],
                )
                pos = best
        return top

    pending = in_degree.copy()
    earliest = np.zeros(max(n, 1), np.float64)
    free_cores = np.empty(n_nodes, np.int64)
    free_spares = np.empty(n_nodes, np.int64)
    node_mem = np.zeros(n_nodes, np.float64)
    for nid in range(n_nodes):
        free_cores[nid] = cores_per_node
        free_spares[nid] = spares_per_node

    dpos = 0
    crashes = 0
    sdcs = 0
    replicated_count = 0
    n_started = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    makespan = 0.0

    seq = 0
    for i in range(n):
        if pending[i] == 0:
            heap_push(0.0, seq, _READY, i)
            seq += 1

    while hlen[0] > 0:
        now, kind, i = heap_pop()
        nid = node_of[i]
        if kind == _READY:
            ready_push(nid, i)
        elif kind == _FREE:
            free_cores[nid] += 1
        elif kind == _SPARE_FREE:
            free_spares[nid] += 1
            continue
        else:  # _COMPLETE
            for k in range(succ_indptr[i], succ_indptr[i + 1]):
                s = succ_indices[k]
                delay = 0.0
                if node_of[s] != nid:
                    delay = net_latency + edge_bytes[k] / net_bandwidth
                arrival = now + delay
                if arrival > earliest[s]:
                    earliest[s] = arrival
                pending[s] -= 1
                if pending[s] == 0:
                    at = now if now > earliest[s] else earliest[s]
                    heap_push(at, seq, _READY, s)
                    seq += 1

        # try_start(nid): drain the node's ready heap while cores are free.
        while free_cores[nid] > 0 and ready_len[nid] > 0:
            i = ready_pop(nid)
            free_cores[nid] -= 1
            use_spare = False
            crash1 = False
            sdc1 = False
            if is_replicated[i]:
                replicated_count += 1
                if free_spares[nid] > 0:
                    free_spares[nid] -= 1
                    use_spare = True
                    core_busy = rep_core_busy[i]
                    completion = completion_spare[i]
                else:
                    core_busy = core_busy_nospare[i]
                    completion = completion_nospare[i]
                if crash_mid:
                    if dpos + 2 > n_uniforms:
                        return ERR_DRAWS_EXHAUSTED
                    crash0 = uniforms[dpos] < p_crash
                    dpos += 1
                    crash1 = uniforms[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash_hi
                    crash1 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= n_uniforms:
                            return ERR_DRAWS_EXHAUSTED
                        sdc0 = uniforms[dpos] < p_sdc
                        dpos += 1
                    if crash1:
                        sdc1 = False
                    else:
                        if dpos >= n_uniforms:
                            return ERR_DRAWS_EXHAUSTED
                        sdc1 = uniforms[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                    sdc1 = (not crash1) and sdc_hi
                crashes += int(crash0) + int(crash1)
                sdcs += int(sdc0) + int(sdc1)
                if crash0 and crash1:
                    recovery = restore_dur[i]
                    completion += recovery
                    total_recovery += recovery
                elif (sdc0 != sdc1) and not (crash0 or crash1):
                    recovery = restore_dur_vote[i]
                    completion += recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                overhead = overhead_rep[i]
            else:
                if crash_mid:
                    if dpos >= n_uniforms:
                        return ERR_DRAWS_EXHAUSTED
                    crash0 = uniforms[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= n_uniforms:
                            return ERR_DRAWS_EXHAUSTED
                        sdc0 = uniforms[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                crashes += int(crash0)
                sdcs += int(sdc0)
                if crash0:
                    recovery = dur[i]
                    core_busy = core_busy0[i] + recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                    core_busy = core_busy0[i]
                completion = core_busy
                overhead = decision_s

            total_overhead += overhead
            total_work += dur[i]
            if contention:
                node_mem[nid] += mem[i]
            finish = now + completion
            if finish > makespan:
                makespan = finish
            if collect:
                start_at[i] = now
                finish_at[i] = finish
                overhead_at[i] = overhead
                recovery_at[i] = recovery
            n_started += 1
            # Spare release precedes core release at equal timestamps, as in
            # the reference loop.
            if use_spare:
                heap_push(now + core_busy, seq, _SPARE_FREE, i)
                seq += 1
            heap_push(now + core_busy, seq, _FREE, i)
            seq += 1
            heap_push(finish, seq, _COMPLETE, i)
            seq += 1

    max_node_mem = 0.0
    for nid in range(n_nodes):
        if node_mem[nid] > max_node_mem:
            max_node_mem = node_mem[nid]
    out_scalars[0] = makespan
    out_scalars[1] = total_work
    out_scalars[2] = total_overhead
    out_scalars[3] = total_recovery
    out_scalars[4] = max_node_mem
    out_counts[0] = crashes
    out_counts[1] = sdcs
    out_counts[2] = replicated_count
    out_counts[3] = n_started
    out_counts[4] = dpos
    return OK
