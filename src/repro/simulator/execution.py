"""Replay a task graph against a machine model.

The simulator performs event-driven list scheduling of a
:class:`~repro.runtime.graph.TaskGraph`:

* tasks become *ready* when every predecessor has finished (plus inter-node
  communication delay for edges that cross nodes),
* ready tasks start as soon as a worker core of their node is free (FIFO in
  submission order, matching the runtime's default scheduler),
* a task selected for replication additionally occupies a spare core for its
  replica ("task replicas are executed on spare cores"); the checkpoint,
  replica execution and output comparison run on the spare core, so the worker
  core only pays the (tiny) decision and replica-creation costs — but the
  task's *completion* (the moment dependent tasks may start) waits for the
  comparison, exactly as in the paper's design,
* per-node memory bandwidth caps the node's aggregate throughput: a node can
  never finish faster than the total bytes its original tasks stream divided by
  its memory bandwidth (this is what keeps Stream from scaling, with or
  without replication); replicas run on the spare partition (the node's second
  socket in the Marenostrum analogy) and do not steal bandwidth from
  originals,
* injected faults extend the affected tasks with the recovery work the
  replication protocol performs (re-execution from the checkpoint, majority
  vote), or — for unprotected tasks — with a plain task restart.

The model is deliberately simple (bandwidth shares are evaluated at task start
rather than continuously), which is sufficient to reproduce the *shape* of the
paper's Figures 4-6.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.faults.injector import FaultInjector
from repro.runtime.compiled import edge_comm_bytes
from repro.runtime.graph import TaskGraph
from repro.runtime.task import TaskDescriptor
from repro.simulator.costs import ReplicationCostModel
from repro.simulator.engine import EventQueue
from repro.simulator.machine import MachineSpec
from repro.util.rng import RngStream
from repro.util.validation import check_probability


@dataclass
class SimulationConfig:
    """What to simulate."""

    #: Ids of tasks to replicate; ``None`` means replicate nothing and the
    #: string ``"all"`` (via :meth:`replicate_all`) selects every task.
    #: Any iterable of ids is accepted and normalised to a ``frozenset`` so
    #: membership tests stay O(1) (a list-valued config used to make the fast
    #: path's per-task ``in`` scan O(n·m)) and so the value is hashable for
    #: the replay-array memos.
    replicated_ids: Optional[Set[int]] = None
    replicate_all: bool = False
    costs: ReplicationCostModel = field(default_factory=ReplicationCostModel)
    #: Per-execution crash probability (the paper's "per task fixed fault rates").
    crash_probability: float = 0.0
    #: Per-execution silent-corruption probability.
    sdc_probability: float = 0.0
    #: Whether the per-node memory-bandwidth throughput cap is modelled.
    model_memory_contention: bool = True
    #: Seed for the fault draws.  The simulator deliberately keeps a
    #: *sequential* stream (unlike the functional injector's keyed
    #: per-execution streams): the event loop is single-threaded and replays
    #: tasks in a deterministic order, so draws are already reproducible, and
    #: the vectorized fast path consumes the identical uniform sequence in
    #: chunks — bit-identity between the two (and with the committed goldens)
    #: depends on this draw discipline staying put.
    seed: int = 0
    #: Whether per-task :class:`SimulatedTaskRecord` objects are materialised.
    #: The experiment drivers only consume the aggregate numbers and switch
    #: this off; the scalar reference path always collects.
    collect_records: bool = True

    def __post_init__(self) -> None:
        check_probability(self.crash_probability, "crash_probability")
        check_probability(self.sdc_probability, "sdc_probability")
        if self.replicated_ids is not None and not isinstance(self.replicated_ids, frozenset):
            self.replicated_ids = frozenset(self.replicated_ids)

    def is_replicated(self, task_id: int) -> bool:
        """Whether a task is selected for replication in this simulation."""
        if self.replicate_all:
            return True
        return self.replicated_ids is not None and task_id in self.replicated_ids


@dataclass
class SimulatedTaskRecord:
    """Timing record of one task in a simulation."""

    task_id: int
    node: int
    start_s: float
    finish_s: float
    replicated: bool
    base_duration_s: float
    overhead_s: float
    recovery_s: float

    @property
    def elapsed_s(self) -> float:
        """Total core occupancy of the task (including overheads and recovery)."""
        return self.finish_s - self.start_s


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    makespan_s: float
    machine: MachineSpec
    config: SimulationConfig
    records: Dict[int, SimulatedTaskRecord]
    total_work_s: float
    total_overhead_s: float
    total_recovery_s: float
    crashes_injected: int
    sdcs_injected: int
    replicated_tasks: int

    @property
    def n_tasks(self) -> int:
        """Number of simulated tasks."""
        return len(self.records)

    @property
    def replication_task_fraction(self) -> float:
        """Fraction of tasks that were replicated."""
        return self.replicated_tasks / self.n_tasks if self.n_tasks else 0.0

    def overhead_vs(self, baseline: "SimulationResult") -> float:
        """Relative makespan overhead with respect to a baseline simulation."""
        if baseline.makespan_s <= 0:
            return 0.0
        return (self.makespan_s - baseline.makespan_s) / baseline.makespan_s

    def speedup_vs(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to a baseline run (baseline / this)."""
        if self.makespan_s <= 0:
            return 0.0
        return baseline.makespan_s / self.makespan_s


# -- internal helpers -------------------------------------------------------------

#: Canonical implementation lives with the graph-compilation subsystem so the
#: compiled per-edge payloads are the same floats this loop derives on the fly.
_edge_comm_bytes = edge_comm_bytes


class _NodeState:
    """Mutable per-node resource state during a simulation."""

    __slots__ = ("free_cores", "free_spares", "active_streams", "ready", "busy_until")

    def __init__(self, cores: int, spares: int) -> None:
        self.free_cores = cores
        self.free_spares = spares
        self.active_streams = 0
        self.ready: List[Tuple[int, int]] = []  # (submission index, task id)
        self.busy_until = 0.0


def simulate_graph(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Simulate the execution of ``graph`` on ``machine`` under ``config``."""
    config = config if config is not None else SimulationConfig()
    costs = config.costs
    rng = RngStream(config.seed)

    tasks = {t.task_id: t for t in graph.tasks()}
    submission_index = {tid: i for i, tid in enumerate(graph.task_ids())}
    n_nodes = machine.n_nodes

    def node_of(task: TaskDescriptor) -> int:
        if task.node is not None:
            return task.node % n_nodes
        if n_nodes == 1:
            return 0
        # Deterministic round-robin for distributed graphs that left placement
        # to the runtime.
        return submission_index[task.task_id] % n_nodes

    nodes = [
        _NodeState(machine.cores_per_node, machine.spare_cores_per_node)
        for _ in range(n_nodes)
    ]
    pending = {tid: graph.in_degree(tid) for tid in tasks}
    earliest: Dict[int, float] = {tid: 0.0 for tid in tasks}
    finish_time: Dict[int, float] = {}
    records: Dict[int, SimulatedTaskRecord] = {}

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0

    queue = EventQueue()

    # Event payloads: ("ready", task_id) and ("finish", task_id, used_spare).
    for tid, deg in pending.items():
        if deg == 0:
            queue.push(0.0, ("ready", tid))

    # Aggregate bytes streamed by original tasks per node (for the node-level
    # bandwidth throughput bound).
    node_mem_bytes = [0.0] * n_nodes

    def task_mem_bytes(task: TaskDescriptor) -> float:
        return float(task.metadata.get("mem_bytes", task.argument_bytes))

    def effective_duration(task: TaskDescriptor, node: _NodeState, extra_streams: int) -> float:
        compute = task.duration_s
        mem_bytes = task_mem_bytes(task)
        if not config.model_memory_contention or mem_bytes <= 0:
            return compute
        # Roofline per-task duration: the task can go no faster than its memory
        # traffic allows even when it runs alone on the node.
        return max(compute, mem_bytes / machine.memory_bandwidth_Bps)

    def start_task(tid: int, now: float) -> None:
        nonlocal crashes, sdcs, total_overhead, total_recovery, total_work, replicated_count
        task = tasks[tid]
        nid = node_of(task)
        node = nodes[nid]
        replicated = config.is_replicated(tid)

        node.free_cores -= 1
        use_spare = False
        if replicated:
            replicated_count += 1
            if node.free_spares > 0:
                node.free_spares -= 1
                use_spare = True

        duration = effective_duration(task, node, extra_streams=1)
        node.active_streams += 1
        if config.model_memory_contention:
            node_mem_bytes[nid] += task_mem_bytes(task)

        # Time the worker core is occupied / time until the task's result is
        # committed and dependent tasks may start.
        core_busy = costs.decision_s + duration
        completion = core_busy
        overhead = costs.decision_s
        recovery = 0.0

        if replicated:
            # The replica path: checkpoint + replica execution + comparison run
            # on the spare core; the worker core only creates the descriptor.
            core_busy += costs.replica_creation_s
            overhead += costs.replica_creation_s
            replica_path = (
                costs.checkpoint_time(task) + duration + costs.compare_time(task)
            )
            overhead += costs.checkpoint_time(task) + costs.compare_time(task)
            if not use_spare:
                # No spare core available: the replica serialises on the worker.
                core_busy += replica_path
            completion = max(core_busy, costs.replica_creation_s + replica_path)

            # Fault draws for the two redundant executions.
            crash0 = rng.bernoulli(config.crash_probability)
            crash1 = rng.bernoulli(config.crash_probability)
            sdc0 = (not crash0) and rng.bernoulli(config.sdc_probability)
            sdc1 = (not crash1) and rng.bernoulli(config.sdc_probability)
            crashes += int(crash0) + int(crash1)
            sdcs += int(sdc0) + int(sdc1)
            if crash0 and crash1:
                # Both replicas died: restart from the checkpoint.
                recovery += costs.restore_time(task) + duration
            elif (sdc0 != sdc1) and not (crash0 or crash1):
                # One corrupted result: detected by comparison, re-execute + vote.
                recovery += costs.restore_time(task) + duration + costs.vote_time(task)
            completion += recovery
        else:
            crash0 = rng.bernoulli(config.crash_probability)
            sdc0 = (not crash0) and rng.bernoulli(config.sdc_probability)
            crashes += int(crash0)
            sdcs += int(sdc0)
            if crash0:
                # Unprotected crash: the task restarts from scratch.
                recovery += duration
            core_busy += recovery
            completion = core_busy

        # The spare core is modelled as freed together with the worker core: the
        # residual comparison tail is tiny relative to task durations, and
        # freeing it later would make back-to-back waves serialise their
        # replicas spuriously whenever spares == cores.
        spare_busy = core_busy if (replicated and use_spare) else 0.0
        total_overhead += overhead
        total_recovery += recovery
        total_work += duration

        records[tid] = SimulatedTaskRecord(
            task_id=tid,
            node=nid,
            start_s=now,
            finish_s=now + completion,
            replicated=replicated,
            base_duration_s=duration,
            overhead_s=overhead,
            recovery_s=recovery,
        )
        # The spare-release event is queued before the core-release event so
        # that, at equal timestamps, a task started by the freed core already
        # sees the spare available.
        if use_spare:
            queue.push(now + spare_busy, ("spare_free", tid))
        queue.push(now + core_busy, ("free", tid))
        queue.push(now + completion, ("complete", tid))

    def try_start(nid: int, now: float) -> None:
        node = nodes[nid]
        while node.free_cores > 0 and node.ready:
            _, tid = heapq.heappop(node.ready)
            start_task(tid, now)

    def handle(now: float, payload: tuple) -> None:
        kind = payload[0]
        tid = payload[1]
        task = tasks[tid]
        nid = node_of(task)
        node = nodes[nid]
        if kind == "ready":
            heapq.heappush(node.ready, (submission_index[tid], tid))
            try_start(nid, now)
        elif kind == "free":
            node.free_cores += 1
            node.active_streams -= 1
            try_start(nid, now)
        elif kind == "spare_free":
            node.free_spares += 1
        elif kind == "complete":
            finish_time[tid] = now
            # Sorted iteration pins the tie-break order of successors that
            # become ready at the same timestamp, so runs are reproducible and
            # the vectorized fast path can match this path bit for bit.
            for succ_id in sorted(graph.successors(tid)):
                succ = tasks[succ_id]
                delay = 0.0
                if n_nodes > 1 and node_of(succ) != nid:
                    comm_bytes = _edge_comm_bytes(task, succ)
                    delay = machine.network_latency_s + comm_bytes / machine.network_bandwidth_Bps
                earliest[succ_id] = max(earliest[succ_id], now + delay)
                pending[succ_id] -= 1
                if pending[succ_id] == 0:
                    queue.push(max(now, earliest[succ_id]), ("ready", succ_id))
            try_start(nid, now)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event {payload!r}")

    queue.run(handle)

    if len(records) != len(tasks):
        missing = len(tasks) - len(records)
        raise RuntimeError(
            f"simulation finished with {missing} unexecuted tasks; "
            "the graph probably contains a cycle"
        )

    makespan = max((r.finish_s for r in records.values()), default=0.0)
    if config.model_memory_contention and n_nodes > 0:
        # A node cannot stream more bytes per second than its memory bandwidth:
        # the makespan is at least the busiest node's aggregate traffic time.
        bandwidth_bound = max(node_mem_bytes) / machine.memory_bandwidth_Bps
        makespan = max(makespan, bandwidth_bound)
    return SimulationResult(
        makespan_s=makespan,
        machine=machine,
        config=config,
        records=records,
        total_work_s=total_work,
        total_overhead_s=total_overhead,
        total_recovery_s=total_recovery,
        crashes_injected=crashes,
        sdcs_injected=sdcs,
        replicated_tasks=replicated_count,
    )
