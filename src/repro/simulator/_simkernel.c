/* Event-loop replay kernel of the compiled-graph simulator.
 *
 * This is the C twin of the pure-Python loops in repro/simulator/fastpath.py
 * (and of the numba twin in repro/simulator/_kernel_py.py): one general
 * multi-node event loop that also covers the single-node case.  Every float
 * operation, comparison and event-ordering rule matches the Python reference
 * exactly:
 *
 *  - events are ordered by (time, sequence number) — a total order, so any
 *    binary-heap layout pops the identical event sequence;
 *  - all per-task float terms arrive pre-folded (the replay arrays built by
 *    SimGraphCache.replay_arrays with the reference association order); the
 *    loop only selects, adds and compares IEEE doubles in the same order the
 *    Python loop does;
 *  - fault Bernoullis are consumed from a pre-drawn uniform block (the same
 *    chunked generator sequence the Python loop buffers), with the identical
 *    conditional draw-cursor discipline.
 *
 * Compiled with -ffp-contract=off so no multiply-add contraction can change
 * results (the loop performs no multiplications, but the flag makes the
 * guarantee explicit).  Built lazily by repro.simulator.backend via the
 * system C compiler; the pure-Python path remains the reference.
 */

#include <stdlib.h>
#include <string.h>

typedef long long i64;

/* Event kinds, matching fastpath.py. */
#define EV_READY 0
#define EV_FREE 1
#define EV_SPARE_FREE 2
#define EV_COMPLETE 3

/* Return codes. */
#define OK 0
#define ERR_ALLOC 1
#define ERR_HEAP_OVERFLOW 2
#define ERR_DRAWS_EXHAUSTED 3

/* ------------------------------------------------------------------ */
/* (time, seq) binary min-heap with (kind, idx) payload.              */

typedef struct {
    double *time;
    i64 *seq;
    int *kind;
    i64 *idx;
    i64 len;
    i64 cap;
} Heap;

static int heap_less(const Heap *h, i64 a, i64 b) {
    if (h->time[a] < h->time[b]) return 1;
    if (h->time[a] > h->time[b]) return 0;
    return h->seq[a] < h->seq[b];
}

static void heap_swap(Heap *h, i64 a, i64 b) {
    double t = h->time[a]; h->time[a] = h->time[b]; h->time[b] = t;
    i64 s = h->seq[a]; h->seq[a] = h->seq[b]; h->seq[b] = s;
    int k = h->kind[a]; h->kind[a] = h->kind[b]; h->kind[b] = k;
    i64 i = h->idx[a]; h->idx[a] = h->idx[b]; h->idx[b] = i;
}

static int heap_push(Heap *h, double time, i64 seq, int kind, i64 idx) {
    if (h->len >= h->cap) return 0;
    i64 pos = h->len++;
    h->time[pos] = time; h->seq[pos] = seq; h->kind[pos] = kind; h->idx[pos] = idx;
    while (pos > 0) {
        i64 parent = (pos - 1) / 2;
        if (!heap_less(h, pos, parent)) break;
        heap_swap(h, pos, parent);
        pos = parent;
    }
    return 1;
}

static void heap_pop(Heap *h, double *time, int *kind, i64 *idx) {
    *time = h->time[0]; *kind = h->kind[0]; *idx = h->idx[0];
    h->len--;
    if (h->len == 0) return;
    h->time[0] = h->time[h->len]; h->seq[0] = h->seq[h->len];
    h->kind[0] = h->kind[h->len]; h->idx[0] = h->idx[h->len];
    i64 pos = 0;
    for (;;) {
        i64 left = 2 * pos + 1, right = left + 1, best = pos;
        if (left < h->len && heap_less(h, left, best)) best = left;
        if (right < h->len && heap_less(h, right, best)) best = right;
        if (best == pos) break;
        heap_swap(h, pos, best);
        pos = best;
    }
}

/* Plain int min-heap (the per-node ready queues hold dense task indices). */

static void iheap_push(i64 *heap, i64 *len, i64 value) {
    i64 pos = (*len)++;
    heap[pos] = value;
    while (pos > 0) {
        i64 parent = (pos - 1) / 2;
        if (heap[pos] >= heap[parent]) break;
        i64 t = heap[pos]; heap[pos] = heap[parent]; heap[parent] = t;
        pos = parent;
    }
}

static i64 iheap_pop(i64 *heap, i64 *len) {
    i64 top = heap[0];
    (*len)--;
    if (*len == 0) return top;
    heap[0] = heap[*len];
    i64 pos = 0;
    for (;;) {
        i64 left = 2 * pos + 1, right = left + 1, best = pos;
        if (left < *len && heap[left] < heap[best]) best = left;
        if (right < *len && heap[right] < heap[best]) best = right;
        if (best == pos) break;
        i64 t = heap[pos]; heap[pos] = heap[best]; heap[best] = t;
        pos = best;
    }
    return top;
}

/* ------------------------------------------------------------------ */

/* Replay one compiled graph on one machine; see fastpath.py for the
 * reference semantics this mirrors bit for bit. */
int simulate_kernel(
    i64 n, i64 n_nodes, i64 cores_per_node, i64 spares_per_node,
    double net_latency, double net_bandwidth,
    int contention, int collect,
    double p_crash, double p_sdc, double decision_s,
    const double *dur, const double *mem,
    const double *core_busy0, const double *rep_core_busy,
    const double *completion_spare, const double *core_busy_nospare,
    const double *completion_nospare, const double *overhead_rep,
    const double *restore_dur, const double *restore_dur_vote,
    const i64 *succ_indptr, const i64 *succ_indices, const double *edge_bytes,
    const i64 *in_degree, const i64 *node_of, const unsigned char *is_replicated,
    const double *uniforms, i64 n_uniforms,
    double *out_scalars, /* makespan, work, overhead, recovery, max_node_mem */
    i64 *out_counts,     /* crashes, sdcs, replicated, n_started, draws */
    double *start_at, double *finish_at, double *overhead_at, double *recovery_at)
{
    const int crash_mid = (0.0 < p_crash) && (p_crash < 1.0);
    const int crash_hi = p_crash >= 1.0;
    const int sdc_mid = (0.0 < p_sdc) && (p_sdc < 1.0);
    const int sdc_hi = p_sdc >= 1.0;

    int rc = OK;
    i64 dpos = 0;

    i64 crashes = 0, sdcs = 0, replicated_count = 0, n_started = 0;
    double total_overhead = 0.0, total_recovery = 0.0, total_work = 0.0;
    double makespan = 0.0;

    /* Workspace. */
    Heap heap;
    heap.cap = 4 * n + 8;
    heap.time = (double *)malloc((size_t)heap.cap * sizeof(double));
    heap.seq = (i64 *)malloc((size_t)heap.cap * sizeof(i64));
    heap.kind = (int *)malloc((size_t)heap.cap * sizeof(int));
    heap.idx = (i64 *)malloc((size_t)heap.cap * sizeof(i64));
    heap.len = 0;
    i64 *pending = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
    double *earliest = (double *)malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    i64 *free_cores = (i64 *)malloc((size_t)n_nodes * sizeof(i64));
    i64 *free_spares = (i64 *)malloc((size_t)n_nodes * sizeof(i64));
    double *node_mem = (double *)malloc((size_t)n_nodes * sizeof(double));
    /* Per-node ready heaps share one backing array: each task enters its
     * node's queue exactly once, so node slices sized by task count suffice. */
    i64 *node_count = (i64 *)malloc((size_t)n_nodes * sizeof(i64));
    i64 *ready_off = (i64 *)malloc((size_t)n_nodes * sizeof(i64));
    i64 *ready_len = (i64 *)malloc((size_t)n_nodes * sizeof(i64));
    i64 *ready = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));

    if (!heap.time || !heap.seq || !heap.kind || !heap.idx || !pending ||
        !earliest || !free_cores || !free_spares || !node_mem || !node_count ||
        !ready_off || !ready_len || !ready) {
        rc = ERR_ALLOC;
        goto done;
    }

    memcpy(pending, in_degree, (size_t)n * sizeof(i64));
    for (i64 i = 0; i < n; i++) earliest[i] = 0.0;
    for (i64 nid = 0; nid < n_nodes; nid++) {
        free_cores[nid] = cores_per_node;
        free_spares[nid] = spares_per_node;
        node_mem[nid] = 0.0;
        node_count[nid] = 0;
        ready_len[nid] = 0;
    }
    for (i64 i = 0; i < n; i++) node_count[node_of[i]]++;
    i64 off = 0;
    for (i64 nid = 0; nid < n_nodes; nid++) {
        ready_off[nid] = off;
        off += node_count[nid];
    }

    i64 seq = 0;
    for (i64 i = 0; i < n; i++) {
        if (pending[i] == 0) {
            if (!heap_push(&heap, 0.0, seq, EV_READY, i)) { rc = ERR_HEAP_OVERFLOW; goto done; }
            seq++;
        }
    }

    while (heap.len > 0) {
        double now;
        int kind;
        i64 i;
        heap_pop(&heap, &now, &kind, &i);
        i64 nid = node_of[i];
        if (kind == EV_READY) {
            iheap_push(ready + ready_off[nid], &ready_len[nid], i);
        } else if (kind == EV_FREE) {
            free_cores[nid]++;
        } else if (kind == EV_SPARE_FREE) {
            free_spares[nid]++;
            continue;
        } else { /* EV_COMPLETE */
            for (i64 k = succ_indptr[i]; k < succ_indptr[i + 1]; k++) {
                i64 s = succ_indices[k];
                double delay = 0.0;
                if (node_of[s] != nid) {
                    delay = net_latency + edge_bytes[k] / net_bandwidth;
                }
                double arrival = now + delay;
                if (arrival > earliest[s]) earliest[s] = arrival;
                pending[s]--;
                if (pending[s] == 0) {
                    double at = now > earliest[s] ? now : earliest[s];
                    if (!heap_push(&heap, at, seq, EV_READY, s)) { rc = ERR_HEAP_OVERFLOW; goto done; }
                    seq++;
                }
            }
        }

        /* try_start(nid): drain the node's ready heap while cores are free. */
        while (free_cores[nid] > 0 && ready_len[nid] > 0) {
            i = iheap_pop(ready + ready_off[nid], &ready_len[nid]);
            free_cores[nid]--;
            int use_spare = 0;
            int crash0, crash1 = 0, sdc0, sdc1 = 0;
            double core_busy, completion, recovery, overhead;
            if (is_replicated[i]) {
                replicated_count++;
                if (free_spares[nid] > 0) {
                    free_spares[nid]--;
                    use_spare = 1;
                    core_busy = rep_core_busy[i];
                    completion = completion_spare[i];
                } else {
                    core_busy = core_busy_nospare[i];
                    completion = completion_nospare[i];
                }
                if (crash_mid) {
                    if (dpos + 2 > n_uniforms) { rc = ERR_DRAWS_EXHAUSTED; goto done; }
                    crash0 = uniforms[dpos++] < p_crash;
                    crash1 = uniforms[dpos++] < p_crash;
                } else {
                    crash0 = crash1 = crash_hi;
                }
                if (sdc_mid) {
                    if (crash0) {
                        sdc0 = 0;
                    } else {
                        if (dpos >= n_uniforms) { rc = ERR_DRAWS_EXHAUSTED; goto done; }
                        sdc0 = uniforms[dpos++] < p_sdc;
                    }
                    if (crash1) {
                        sdc1 = 0;
                    } else {
                        if (dpos >= n_uniforms) { rc = ERR_DRAWS_EXHAUSTED; goto done; }
                        sdc1 = uniforms[dpos++] < p_sdc;
                    }
                } else {
                    sdc0 = (!crash0) && sdc_hi;
                    sdc1 = (!crash1) && sdc_hi;
                }
                crashes += crash0 + crash1;
                sdcs += sdc0 + sdc1;
                if (crash0 && crash1) {
                    recovery = restore_dur[i];
                    completion += recovery;
                    total_recovery += recovery;
                } else if ((sdc0 != sdc1) && !(crash0 || crash1)) {
                    recovery = restore_dur_vote[i];
                    completion += recovery;
                    total_recovery += recovery;
                } else {
                    recovery = 0.0;
                }
                overhead = overhead_rep[i];
            } else {
                if (crash_mid) {
                    if (dpos >= n_uniforms) { rc = ERR_DRAWS_EXHAUSTED; goto done; }
                    crash0 = uniforms[dpos++] < p_crash;
                } else {
                    crash0 = crash_hi;
                }
                if (sdc_mid) {
                    if (crash0) {
                        sdc0 = 0;
                    } else {
                        if (dpos >= n_uniforms) { rc = ERR_DRAWS_EXHAUSTED; goto done; }
                        sdc0 = uniforms[dpos++] < p_sdc;
                    }
                } else {
                    sdc0 = (!crash0) && sdc_hi;
                }
                crashes += crash0;
                sdcs += sdc0;
                if (crash0) {
                    recovery = dur[i];
                    core_busy = core_busy0[i] + recovery;
                    total_recovery += recovery;
                } else {
                    recovery = 0.0;
                    core_busy = core_busy0[i];
                }
                completion = core_busy;
                overhead = decision_s;
            }

            total_overhead += overhead;
            total_work += dur[i];
            if (contention) node_mem[nid] += mem[i];
            double finish = now + completion;
            if (finish > makespan) makespan = finish;
            if (collect) {
                start_at[i] = now;
                finish_at[i] = finish;
                overhead_at[i] = overhead;
                recovery_at[i] = recovery;
            }
            n_started++;
            /* Spare release precedes core release at equal timestamps, as in
             * the reference loop. */
            if (use_spare) {
                if (!heap_push(&heap, now + core_busy, seq, EV_SPARE_FREE, i)) { rc = ERR_HEAP_OVERFLOW; goto done; }
                seq++;
            }
            if (!heap_push(&heap, now + core_busy, seq, EV_FREE, i)) { rc = ERR_HEAP_OVERFLOW; goto done; }
            seq++;
            if (!heap_push(&heap, finish, seq, EV_COMPLETE, i)) { rc = ERR_HEAP_OVERFLOW; goto done; }
            seq++;
        }
    }

    double max_node_mem = 0.0;
    for (i64 nid = 0; nid < n_nodes; nid++) {
        if (node_mem[nid] > max_node_mem) max_node_mem = node_mem[nid];
    }
    out_scalars[0] = makespan;
    out_scalars[1] = total_work;
    out_scalars[2] = total_overhead;
    out_scalars[3] = total_recovery;
    out_scalars[4] = max_node_mem;
    out_counts[0] = crashes;
    out_counts[1] = sdcs;
    out_counts[2] = replicated_count;
    out_counts[3] = n_started;
    out_counts[4] = dpos;

done:
    free(heap.time); free(heap.seq); free(heap.kind); free(heap.idx);
    free(pending); free(earliest); free(free_cores); free(free_spares);
    free(node_mem); free(node_count); free(ready_off); free(ready_len); free(ready);
    return rc;
}

/* Replay a whole seed batch: lane j consumes uniforms row j and writes its
 * outputs at lane offsets.  One call amortises the Python->C transition over
 * the batch. */
int simulate_kernel_batch(
    i64 n_lanes,
    i64 n, i64 n_nodes, i64 cores_per_node, i64 spares_per_node,
    double net_latency, double net_bandwidth,
    int contention, int collect,
    double p_crash, double p_sdc, double decision_s,
    const double *dur, const double *mem,
    const double *core_busy0, const double *rep_core_busy,
    const double *completion_spare, const double *core_busy_nospare,
    const double *completion_nospare, const double *overhead_rep,
    const double *restore_dur, const double *restore_dur_vote,
    const i64 *succ_indptr, const i64 *succ_indices, const double *edge_bytes,
    const i64 *in_degree, const i64 *node_of, const unsigned char *is_replicated,
    const double *uniforms, i64 n_uniforms, /* n_lanes rows of n_uniforms */
    double *out_scalars, /* n_lanes x 5 */
    i64 *out_counts,     /* n_lanes x 5 */
    double *start_at, double *finish_at, double *overhead_at, double *recovery_at /* n_lanes x n */)
{
    for (i64 lane = 0; lane < n_lanes; lane++) {
        int rc = simulate_kernel(
            n, n_nodes, cores_per_node, spares_per_node,
            net_latency, net_bandwidth, contention, collect,
            p_crash, p_sdc, decision_s,
            dur, mem, core_busy0, rep_core_busy, completion_spare,
            core_busy_nospare, completion_nospare, overhead_rep,
            restore_dur, restore_dur_vote,
            succ_indptr, succ_indices, edge_bytes, in_degree, node_of,
            is_replicated,
            uniforms + lane * n_uniforms, n_uniforms,
            out_scalars + lane * 5, out_counts + lane * 5,
            collect ? start_at + lane * n : start_at,
            collect ? finish_at + lane * n : finish_at,
            collect ? overhead_at + lane * n : overhead_at,
            collect ? recovery_at + lane * n : recovery_at);
        if (rc != OK) return rc;
    }
    return OK;
}
