"""Vectorized fast path of the machine simulator.

:func:`repro.simulator.execution.simulate_graph` is the reference
implementation: a readable event loop that re-derives every per-task quantity
(costs, memory traffic, node placement) from the descriptors on each call.
The experiment drivers, however, replay the *same* graph many times — once per
fault rate and machine size — so this module splits the work:

* :class:`SimGraphCache` precomputes, once per graph, everything that does not
  depend on the simulated machine or fault configuration: per-task durations,
  memory traffic, replication cost terms (vectorized with NumPy), sorted
  successor lists, in-degrees and cross-node edge payloads;
* :func:`simulate_graph_fast` replays the cached arrays through a flat
  ``heapq`` event loop over primitive floats and ints, drawing fault Bernoullis
  from a chunk-buffered NumPy stream that consumes the *same* underlying
  uniform sequence as the reference path's per-call draws.

Every arithmetic expression mirrors the reference loop operation for
operation, and events are pushed in the same order with the same FIFO
tie-breaking, so the fast path is bit-identical to the reference — which the
equivalence test suite asserts.  Use ``fast=False`` (or the benchmark
harness's ``--reference`` flag) to fall back to the reference implementation.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.graph import TaskGraph
from repro.simulator.costs import ReplicationCostModel
from repro.simulator.execution import (
    SimulatedTaskRecord,
    SimulationConfig,
    SimulationResult,
    _edge_comm_bytes,
    simulate_graph,
)
from repro.simulator.machine import MachineSpec

#: Event kinds of the flat loop (values never compared — the heap tuples are
#: ordered by (time, sequence number) alone, as in the reference EventQueue).
_READY, _FREE, _SPARE_FREE, _COMPLETE = 0, 1, 2, 3


class _DrawBuffer:
    """Chunked uniform draws that replay ``Generator.random()`` call-for-call.

    NumPy's ``Generator.random(n)`` consumes the identical double sequence as
    ``n`` successive ``Generator.random()`` calls, so buffering in chunks keeps
    the fault draws bit-identical to the reference path while amortising the
    per-call overhead.
    """

    __slots__ = ("_gen", "_buf", "_pos", "_chunk")

    def __init__(self, gen: np.random.Generator, chunk: int = 4096) -> None:
        self._gen = gen
        self._buf: List[float] = []
        self._pos = 0
        self._chunk = chunk

    def bernoulli(self, p: float) -> bool:
        """Mirror :meth:`RngStream.bernoulli`: no draw at the 0/1 extremes."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        if self._pos >= len(self._buf):
            self._buf = self._gen.random(self._chunk).tolist()
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value < p


class SimGraphCache:
    """Machine-independent precomputation for repeated simulations of one graph."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        tasks = graph.tasks()
        n = self.n = len(tasks)
        self.task_ids: List[int] = [t.task_id for t in tasks]
        index = {tid: i for i, tid in enumerate(self.task_ids)}
        durations = np.empty(n, dtype=np.float64)
        mem_bytes = np.empty(n, dtype=np.float64)
        input_bytes = np.empty(n, dtype=np.float64)
        output_bytes = np.empty(n, dtype=np.float64)
        node_attr: List[int] = [-1] * n
        for i, t in enumerate(tasks):
            durations[i] = t.duration_s
            in_b = 0.0
            out_b = 0.0
            all_b = 0.0
            for a in t.args:
                size = a.size_bytes
                direction = a.direction
                all_b += size
                if direction.reads:
                    in_b += size
                if direction.writes:
                    out_b += size
            mem = t.metadata.get("mem_bytes")
            mem_bytes[i] = float(all_b if mem is None else mem)
            input_bytes[i] = in_b
            output_bytes[i] = out_b
            if t.node is not None:
                node_attr[i] = t.node
        self.durations = durations
        self.mem_bytes = mem_bytes
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        #: Explicit node placements (-1 when the runtime is free to choose).
        self.node_attr = node_attr
        self.in_degree: List[int] = [graph.in_degree(tid) for tid in self.task_ids]
        #: Successors as dense indices, sorted like the reference loop iterates.
        succ_map = graph._succ
        self.successors: List[List[int]] = [
            [index[s] for s in sorted(succ_map[tid])] for tid in self.task_ids
        ]
        self._tasks = tasks
        self._cost_arrays: Dict[ReplicationCostModel, Tuple[List[float], ...]] = {}
        self._node_maps: Dict[int, List[int]] = {}
        self._edge_bytes: Dict[Tuple[int, int], float] = {}

    # -- memoised derived quantities ----------------------------------------

    def cost_arrays(
        self, costs: ReplicationCostModel
    ) -> Tuple[List[float], List[float], List[float], List[float]]:
        """(checkpoint, compare, restore, vote) seconds per task under ``costs``."""
        cached = self._cost_arrays.get(costs)
        if cached is None:
            checkpoint = (
                costs.checkpoint_latency_s + self.input_bytes / costs.checkpoint_bandwidth_Bps
            )
            restore = (
                costs.restore_latency_s + self.input_bytes / costs.checkpoint_bandwidth_Bps
            )
            compare = (
                costs.compare_latency_s + self.output_bytes / costs.compare_bandwidth_Bps
            )
            vote = costs.compare_latency_s + self.output_bytes / costs.vote_bandwidth_Bps
            cached = (
                checkpoint.tolist(),
                compare.tolist(),
                restore.tolist(),
                vote.tolist(),
            )
            self._cost_arrays[costs] = cached
        return cached

    def node_map(self, n_nodes: int) -> List[int]:
        """Node of every task on an ``n_nodes`` machine (reference placement rule)."""
        cached = self._node_maps.get(n_nodes)
        if cached is None:
            if n_nodes == 1:
                cached = [0] * self.n
            else:
                cached = [
                    (attr % n_nodes) if attr >= 0 else (i % n_nodes)
                    for i, attr in enumerate(self.node_attr)
                ]
            self._node_maps[n_nodes] = cached
        return cached

    def effective_durations(self, machine: MachineSpec) -> List[float]:
        """Roofline-bounded per-task durations: ``max(compute, mem / bandwidth)``."""
        return np.maximum(
            self.durations, self.mem_bytes / machine.memory_bandwidth_Bps
        ).tolist()



def simulate_graph_fast(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    cache: Optional[SimGraphCache] = None,
) -> SimulationResult:
    """Drop-in replacement for :func:`simulate_graph`, bit-identical results.

    Pass a :class:`SimGraphCache` to amortise the per-graph precomputation
    across fault rates and machine sizes (the experiment engine does).
    """
    config = config if config is not None else SimulationConfig()
    if cache is None:
        cache = SimGraphCache(graph)
    costs = config.costs
    n = cache.n
    n_nodes = machine.n_nodes

    checkpoint_s, compare_s, restore_s, vote_s = cache.cost_arrays(costs)
    contention = config.model_memory_contention
    if contention:
        duration_of = cache.effective_durations(machine)
    else:
        duration_of = cache.durations.tolist()
    mem_bytes = cache.mem_bytes.tolist()
    node_of = cache.node_map(n_nodes)
    base_successors = cache.successors

    if config.replicate_all:
        is_replicated = [True] * n
    elif config.replicated_ids is not None:
        replicated_ids = config.replicated_ids
        is_replicated = [tid in replicated_ids for tid in cache.task_ids]
    else:
        is_replicated = [False] * n

    draws = _DrawBuffer(np.random.default_rng(np.random.SeedSequence(config.seed)))
    p_crash = config.crash_probability
    p_sdc = config.sdc_probability
    decision_s = costs.decision_s
    replica_creation_s = costs.replica_creation_s

    free_cores = [machine.cores_per_node] * n_nodes
    free_spares = [machine.spare_cores_per_node] * n_nodes
    node_ready: List[List[int]] = [[] for _ in range(n_nodes)]
    node_mem = [0.0] * n_nodes

    pending = list(cache.in_degree)
    earliest = [0.0] * n
    start_at = [0.0] * n
    finish_at = [0.0] * n
    overhead_at = [0.0] * n
    recovery_at = [0.0] * n
    duration_at = [0.0] * n
    started = [False] * n

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0
    n_started = 0

    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(n):
        if pending[i] == 0:
            heap.append((0.0, seq, _READY, i))
            seq += 1

    # The event loop is written flat (task start inlined, locals only): it
    # executes a handful of times per task and closure/attribute lookups are
    # measurable at Table I task counts.  The arithmetic and event/push order
    # mirror the reference loop exactly.
    bernoulli = draws.bernoulli
    edge_bytes_of = cache._edge_bytes
    tasks_of = cache._tasks
    net_latency = machine.network_latency_s
    net_bandwidth = machine.network_bandwidth_Bps
    multi_node = n_nodes > 1
    while heap:
        now, _, kind, i = heappop(heap)
        nid = node_of[i]
        if kind == _READY:
            heappush(node_ready[nid], i)
        elif kind == _FREE:
            free_cores[nid] += 1
        elif kind == _SPARE_FREE:
            free_spares[nid] += 1
            continue
        else:  # _COMPLETE
            for s in base_successors[i]:
                delay = 0.0
                if multi_node and node_of[s] != nid:
                    comm_bytes = edge_bytes_of.get((i, s))
                    if comm_bytes is None:
                        comm_bytes = _edge_comm_bytes(tasks_of[i], tasks_of[s])
                        edge_bytes_of[(i, s)] = comm_bytes
                    delay = net_latency + comm_bytes / net_bandwidth
                arrival = now + delay
                if arrival > earliest[s]:
                    earliest[s] = arrival
                pending[s] -= 1
                if pending[s] == 0:
                    at = now if now > earliest[s] else earliest[s]
                    heappush(heap, (at, seq, _READY, s))
                    seq += 1

        # try_start(nid): drain the node's ready heap while cores are free.
        ready = node_ready[nid]
        while free_cores[nid] > 0 and ready:
            i = heappop(ready)
            nid_t = node_of[i]
            replicated = is_replicated[i]

            free_cores[nid_t] -= 1
            use_spare = False
            if replicated:
                replicated_count += 1
                if free_spares[nid_t] > 0:
                    free_spares[nid_t] -= 1
                    use_spare = True

            duration = duration_of[i]
            if contention:
                node_mem[nid_t] += mem_bytes[i]

            core_busy = decision_s + duration
            completion = core_busy
            overhead = decision_s
            recovery = 0.0

            if replicated:
                core_busy += replica_creation_s
                overhead += replica_creation_s
                replica_path = checkpoint_s[i] + duration + compare_s[i]
                overhead += checkpoint_s[i] + compare_s[i]
                if not use_spare:
                    core_busy += replica_path
                completion = max(core_busy, replica_creation_s + replica_path)

                crash0 = bernoulli(p_crash)
                crash1 = bernoulli(p_crash)
                sdc0 = (not crash0) and bernoulli(p_sdc)
                sdc1 = (not crash1) and bernoulli(p_sdc)
                crashes += int(crash0) + int(crash1)
                sdcs += int(sdc0) + int(sdc1)
                if crash0 and crash1:
                    recovery += restore_s[i] + duration
                elif (sdc0 != sdc1) and not (crash0 or crash1):
                    recovery += restore_s[i] + duration + vote_s[i]
                completion += recovery
            else:
                crash0 = bernoulli(p_crash)
                sdc0 = (not crash0) and bernoulli(p_sdc)
                crashes += int(crash0)
                sdcs += int(sdc0)
                if crash0:
                    recovery += duration
                core_busy += recovery
                completion = core_busy

            total_overhead += overhead
            total_recovery += recovery
            total_work += duration

            start_at[i] = now
            finish_at[i] = now + completion
            overhead_at[i] = overhead
            recovery_at[i] = recovery
            duration_at[i] = duration
            started[i] = True
            n_started += 1
            # Spare release precedes core release at equal timestamps, as in
            # the reference loop, so a task started by the freed core sees the
            # spare available.
            if use_spare:
                heappush(heap, (now + core_busy, seq, _SPARE_FREE, i))
                seq += 1
            heappush(heap, (now + core_busy, seq, _FREE, i))
            seq += 1
            heappush(heap, (now + completion, seq, _COMPLETE, i))
            seq += 1

    if n_started != n:
        raise RuntimeError(
            f"simulation finished with {n - n_started} unexecuted tasks; "
            "the graph probably contains a cycle"
        )

    records: Dict[int, SimulatedTaskRecord] = {}
    if config.collect_records:
        for i, tid in enumerate(cache.task_ids):
            records[tid] = SimulatedTaskRecord(
                task_id=tid,
                node=node_of[i],
                start_s=start_at[i],
                finish_s=finish_at[i],
                replicated=is_replicated[i],
                base_duration_s=duration_at[i],
                overhead_s=overhead_at[i],
                recovery_s=recovery_at[i],
            )

    makespan = max(finish_at) if n else 0.0
    if contention and n_nodes > 0:
        bandwidth_bound = max(node_mem) / machine.memory_bandwidth_Bps
        makespan = max(makespan, bandwidth_bound)
    return SimulationResult(
        makespan_s=makespan,
        machine=machine,
        config=config,
        records=records,
        total_work_s=total_work,
        total_overhead_s=total_overhead,
        total_recovery_s=total_recovery,
        crashes_injected=crashes,
        sdcs_injected=sdcs,
        replicated_tasks=replicated_count,
    )


def simulate(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    fast: bool = True,
    cache: Optional[SimGraphCache] = None,
) -> SimulationResult:
    """Dispatch to the fast path (default) or the scalar reference loop."""
    if fast:
        return simulate_graph_fast(graph, machine, config, cache=cache)
    return simulate_graph(graph, machine, config)
