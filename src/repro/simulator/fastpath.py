"""Vectorized fast path of the machine simulator, over compiled graphs.

:func:`repro.simulator.execution.simulate_graph` is the reference
implementation: a readable event loop that re-derives every per-task quantity
(costs, memory traffic, node placement) from the descriptors on each call.
The experiment drivers, however, replay the *same* graph many times — once per
fault rate and machine size — so this module splits the work:

* :class:`~repro.runtime.compiled.CompiledGraph` (produced once per graph by
  :func:`~repro.runtime.compiled.compile_graph`, usually loaded memory-mapped
  from the on-disk compiled-graph store) holds everything that depends only on
  the graph: durations, byte counts, CSR successor/predecessor indices and
  per-edge communication payloads;
* :class:`SimGraphCache` wraps a compiled graph and memoises the
  machine/cost-model-dependent *replay arrays* — the per-task core-occupancy,
  completion, overhead and recovery terms, folded into flat lists with one
  NumPy pass per (cost model, bandwidth) combination;
* :func:`simulate_compiled` replays those arrays through a flat ``heapq``
  event loop over primitive floats and ints (with a specialised loop for
  single-node machines, the Figure 4/5 shape), drawing fault Bernoullis from
  a chunk-buffered NumPy stream that consumes the *same* underlying uniform
  sequence as the reference path's per-call draws.

Every arithmetic expression mirrors the reference loop operation for
operation (the replay arrays are built with the same association order the
scalar code uses), and events are pushed in the same order with the same FIFO
tie-breaking, so the fast path is bit-identical to the reference — which the
equivalence test suite asserts.  Use ``fast=False`` (or the benchmark
harness's ``--reference`` flag) to fall back to the reference implementation.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import active_tracer, trace_span
from repro.runtime.compiled import CompiledGraph, compile_graph
from repro.runtime.graph import TaskGraph
from repro.simulator import backend as _backends
from repro.simulator.costs import ReplicationCostModel
from repro.simulator.execution import (
    SimulatedTaskRecord,
    SimulationConfig,
    SimulationResult,
    simulate_graph,
)
from repro.simulator.machine import MachineSpec

#: Event kinds of the flat loop (values never compared — the heap tuples are
#: ordered by (time, sequence number) alone, as in the reference EventQueue).
_READY, _FREE, _SPARE_FREE, _COMPLETE = 0, 1, 2, 3

#: Uniform draws are buffered in chunks of this size.  ``Generator.random(n)``
#: consumes the identical double sequence as ``n`` successive
#: ``Generator.random()`` calls, so buffering keeps the fault draws
#: bit-identical to the reference path while amortising the per-call overhead.
#: (Both paths intentionally keep this sequential per-``config.seed`` stream
#: rather than the functional injector's keyed per-execution streams — see
#: ``SimulationConfig.seed``; the replay order is deterministic here, and the
#: golden artifacts pin the resulting draw sequence.)
_DRAW_CHUNK = 4096

#: Environment knob selecting the streaming chunk size of the pure-Python
#: replay: graphs larger than this many tasks walk the event loop against
#: chunked replay-term slices instead of materialising all ten O(n) term
#: arrays (and their Python-list views) up front.  ``0`` disables streaming.
SIM_CHUNK_ENV = "REPRO_SIM_CHUNK_TASKS"

#: Default streaming chunk: small enough that a handful of resident chunks
#: stay in the tens of megabytes, large enough that the frontier of any
#: reasonable graph rarely straddles more than two or three chunks.
DEFAULT_SIM_CHUNK_TASKS = 65536


def sim_chunk_tasks() -> int:
    """The streaming chunk size (``$REPRO_SIM_CHUNK_TASKS``; ``<= 0`` disables)."""
    raw = os.environ.get(SIM_CHUNK_ENV, "").strip()
    if not raw:
        return DEFAULT_SIM_CHUNK_TASKS
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{SIM_CHUNK_ENV}={raw!r} is not an integer task count"
        ) from None


@dataclass
class _ReplayArrays:
    """Per-task cost terms of one (cost model, machine bandwidth) combination.

    Each list is indexed by dense task index and holds exactly the floats the
    reference loop would compute for that task, pre-folded with the reference
    association order so the event loop only selects and accumulates.
    """

    dur: List[float]  #: effective duration (roofline-bounded if contended)
    mem: List[float]  #: memory traffic charged to the node
    core_busy0: List[float]  #: unreplicated, fault-free core occupancy
    rep_core_busy: List[float]  #: replicated core occupancy (spare available)
    completion_spare: List[float]  #: replicated completion (spare available)
    core_busy_nospare: List[float]  #: replicated core occupancy (no spare)
    completion_nospare: List[float]  #: replicated completion (no spare)
    overhead_rep: List[float]  #: replicated fault-free overhead
    restore_dur: List[float]  #: crash+crash recovery (restore + re-execute)
    restore_dur_vote: List[float]  #: sdc-mismatch recovery (restore + re-execute + vote)


def _replay_terms(
    durations: np.ndarray,
    mem_bytes: np.ndarray,
    input_bytes: np.ndarray,
    output_bytes: np.ndarray,
    machine: MachineSpec,
    costs: ReplicationCostModel,
    contention: bool,
) -> Tuple[np.ndarray, ...]:
    """The ten per-task replay-term arrays of one (costs, bandwidth) key.

    Every expression reproduces the reference loop's scalar arithmetic with
    the same association order, element-wise — which is what keeps the replay
    bit-identical while moving ~15 float operations per task out of the event
    loop.  All operations are element-wise, so calling this on aligned array
    *slices* yields exactly the corresponding slice of the full-graph result —
    the invariant the streaming replay's chunked view relies on.

    The tuple order matches the ``_ReplayArrays`` fields and the kernel
    argument order: dur, mem, core_busy0, rep_core_busy, completion_spare,
    core_busy_nospare, completion_nospare, overhead_rep, restore_dur,
    restore_dur_vote.
    """
    checkpoint = costs.checkpoint_latency_s + input_bytes / costs.checkpoint_bandwidth_Bps
    restore = costs.restore_latency_s + input_bytes / costs.checkpoint_bandwidth_Bps
    compare = costs.compare_latency_s + output_bytes / costs.compare_bandwidth_Bps
    vote = costs.compare_latency_s + output_bytes / costs.vote_bandwidth_Bps
    if contention:
        dur = np.maximum(durations, mem_bytes / machine.memory_bandwidth_Bps)
    else:
        dur = durations
    decision_s = costs.decision_s
    creation_s = costs.replica_creation_s
    core_busy0 = decision_s + dur
    rep_core_busy = core_busy0 + creation_s
    replica_path = (checkpoint + dur) + compare
    replica_tail = creation_s + replica_path
    core_busy_nospare = rep_core_busy + replica_path
    return tuple(
        np.ascontiguousarray(a, dtype=np.float64)
        for a in (
            dur,
            mem_bytes,
            core_busy0,
            rep_core_busy,
            np.maximum(rep_core_busy, replica_tail),
            core_busy_nospare,
            np.maximum(core_busy_nospare, replica_tail),
            (decision_s + creation_s) + (checkpoint + compare),
            restore + dur,
            (restore + dur) + vote,
        )
    )


class SimGraphCache:
    """Replay-ready view of one graph: compiled arrays plus machine memos.

    Construct from a :class:`TaskGraph` (compiled on the fly) or, in worker
    processes, from a :class:`CompiledGraph` loaded memory-mapped off the
    compiled-graph store — no ``TaskGraph`` (and no Python object graph) is
    needed to simulate.
    """

    def __init__(
        self,
        graph: Optional[TaskGraph] = None,
        compiled: Optional[CompiledGraph] = None,
    ) -> None:
        if compiled is None:
            if graph is None:
                raise ValueError("SimGraphCache needs a TaskGraph or a CompiledGraph")
            compiled = compile_graph(graph)
        self.graph = graph
        self.compiled = compiled
        self.n = compiled.n
        self.durations = np.asarray(compiled.durations)
        self.mem_bytes = np.asarray(compiled.mem_bytes)
        self.input_bytes = np.asarray(compiled.input_bytes)
        self.output_bytes = np.asarray(compiled.output_bytes)
        # The Python-list views of the compiled arrays (what the scalar loops
        # index) are built lazily: the kernel backends run straight off the
        # ndarrays, so list materialisation is paid only when the pure-Python
        # loops (or the record assembly) actually need it.
        self._task_ids: Optional[List[int]] = None
        self._node_attr: Optional[List[int]] = None
        self._in_degree: Optional[List[int]] = None
        self._successors: Optional[List[List[int]]] = None
        self._edge_bytes: Optional[List[List[float]]] = None
        self._node_maps: Dict[int, List[int]] = {}
        self._node_maps_np: Dict[int, np.ndarray] = {}
        self._replay: Dict[Tuple[ReplicationCostModel, bool, float], _ReplayArrays] = {}
        self._replay_np: Dict[
            Tuple[ReplicationCostModel, bool, float], Tuple[np.ndarray, ...]
        ] = {}
        self._static_np: Optional[Tuple[np.ndarray, ...]] = None
        self._flags_np: Dict[Tuple[bool, Optional[frozenset]], np.ndarray] = {}

    @classmethod
    def from_compiled(cls, compiled: CompiledGraph) -> "SimGraphCache":
        """A cache over a compiled graph alone (e.g. mmap-loaded by a worker)."""
        return cls(compiled=compiled)

    # -- lazy list views (indexed by the pure-Python loops) ------------------

    @property
    def task_ids(self) -> List[int]:
        """Task ids in dense index order."""
        if self._task_ids is None:
            self._task_ids = self.compiled.task_ids.tolist()
        return self._task_ids

    @property
    def node_attr(self) -> List[int]:
        """Explicit node placements (-1 when the runtime is free to choose)."""
        if self._node_attr is None:
            self._node_attr = self.compiled.node_attr.tolist()
        return self._node_attr

    @property
    def in_degree(self) -> List[int]:
        """Predecessor counts in dense index order."""
        if self._in_degree is None:
            self._in_degree = self.compiled.in_degrees().tolist()
        return self._in_degree

    @property
    def successors(self) -> List[List[int]]:
        """Successors as dense indices, sorted like the reference loop iterates."""
        if self._successors is None:
            ptr = self.compiled.succ_indptr.tolist()
            idx = self.compiled.succ_indices.tolist()
            self._successors = [idx[ptr[i] : ptr[i + 1]] for i in range(self.n)]
        return self._successors

    @property
    def edge_bytes(self) -> List[List[float]]:
        """Per-edge communication payloads, aligned with :attr:`successors`."""
        if self._edge_bytes is None:
            ptr = self.compiled.succ_indptr.tolist()
            ebs = self.compiled.edge_bytes.tolist()
            self._edge_bytes = [ebs[ptr[i] : ptr[i + 1]] for i in range(self.n)]
        return self._edge_bytes

    # -- memoised derived quantities ----------------------------------------

    def node_map(self, n_nodes: int) -> List[int]:
        """Node of every task on an ``n_nodes`` machine (reference placement rule)."""
        cached = self._node_maps.get(n_nodes)
        if cached is None:
            cached = self.node_map_np(n_nodes).tolist()
            self._node_maps[n_nodes] = cached
        return cached

    def node_map_np(self, n_nodes: int) -> np.ndarray:
        """:meth:`node_map` as an int64 array (what the kernel backends index)."""
        cached = self._node_maps_np.get(n_nodes)
        if cached is None:
            if n_nodes == 1:
                cached = np.zeros(self.n, dtype=np.int64)
            else:
                attr = np.asarray(self.compiled.node_attr, dtype=np.int64)
                idx = np.arange(self.n, dtype=np.int64)
                # Same placement rule the reference applies per task:
                # (attr % n_nodes) if attr >= 0 else (i % n_nodes).
                cached = np.where(attr >= 0, attr % n_nodes, idx % n_nodes)
            cached = np.ascontiguousarray(cached, dtype=np.int64)
            self._node_maps_np[n_nodes] = cached
        return cached

    def replay_arrays(
        self, machine: MachineSpec, costs: ReplicationCostModel, contention: bool
    ) -> _ReplayArrays:
        """The per-task replay terms of one (costs, contention, bandwidth) key.

        Every expression below reproduces the reference loop's scalar
        arithmetic with the same association order, element-wise — which is
        what keeps the replay bit-identical while moving ~15 float operations
        per task out of the event loop.
        """
        key = (costs, bool(contention), machine.memory_bandwidth_Bps)
        cached = self._replay.get(key)
        if cached is None:
            nd = self.replay_arrays_np(machine, costs, contention)
            # The list views index the very same ndarrays the kernel backends
            # run on, so the two execution paths cannot diverge numerically.
            cached = _ReplayArrays(*(a.tolist() for a in nd))
            self._replay[key] = cached
        return cached

    def replay_arrays_np(
        self, machine: MachineSpec, costs: ReplicationCostModel, contention: bool
    ) -> Tuple[np.ndarray, ...]:
        """:meth:`replay_arrays` as contiguous float64 ndarrays (kernel order).

        The tuple order matches the ``_ReplayArrays`` fields and the kernel
        argument order: dur, mem, core_busy0, rep_core_busy, completion_spare,
        core_busy_nospare, completion_nospare, overhead_rep, restore_dur,
        restore_dur_vote.
        """
        key = (costs, bool(contention), machine.memory_bandwidth_Bps)
        cached = self._replay_np.get(key)
        if cached is None:
            cached = _replay_terms(
                self.durations,
                self.mem_bytes,
                self.input_bytes,
                self.output_bytes,
                machine,
                costs,
                contention,
            )
            self._replay_np[key] = cached
        return cached

    def static_np(self) -> Tuple[np.ndarray, ...]:
        """Graph-structure arrays the kernels index: CSR successors + degrees.

        Order matches the kernel argument order: succ_indptr, succ_indices,
        edge_bytes, in_degree.
        """
        cached = self._static_np
        if cached is None:
            c = self.compiled
            cached = (
                np.ascontiguousarray(c.succ_indptr, dtype=np.int64),
                np.ascontiguousarray(c.succ_indices, dtype=np.int64),
                np.ascontiguousarray(c.edge_bytes, dtype=np.float64),
                np.ascontiguousarray(c.in_degrees(), dtype=np.int64),
            )
            self._static_np = cached
        return cached

    def replicated_flags_np(self, config: SimulationConfig) -> np.ndarray:
        """Per-task replication flags as a uint8 array (kernel form).

        ``np.isin`` over int64 task ids decides membership exactly like the
        per-task ``tid in replicated_ids`` of :func:`_replicated_flags`.
        """
        key = (bool(config.replicate_all), config.replicated_ids)
        cached = self._flags_np.get(key)
        if cached is None:
            if config.replicate_all:
                cached = np.ones(self.n, dtype=np.uint8)
            elif config.replicated_ids is not None:
                ids = np.fromiter(config.replicated_ids, dtype=np.int64, count=len(config.replicated_ids))
                cached = np.ascontiguousarray(
                    np.isin(self.compiled.task_ids, ids).astype(np.uint8)
                )
            else:
                cached = np.zeros(self.n, dtype=np.uint8)
            self._flags_np[key] = cached
        return cached


def _replicated_flags(cache: SimGraphCache, config: SimulationConfig) -> List[bool]:
    """Per-task replication flags under ``config``, in dense index order."""
    if config.replicate_all:
        return [True] * cache.n
    if config.replicated_ids is not None:
        replicated_ids = config.replicated_ids
        return [tid in replicated_ids for tid in cache.task_ids]
    return [False] * cache.n


def simulate_compiled(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Replay a compiled graph on ``machine``; bit-identical to the reference.

    This is the entry point worker processes use: ``cache`` may wrap a
    memory-mapped :class:`~repro.runtime.compiled.CompiledGraph` with no
    ``TaskGraph`` behind it.  ``backend`` overrides the loop backend
    (``$REPRO_SIM_BACKEND``/auto otherwise — see
    :mod:`repro.simulator.backend`); every backend is bit-identical.
    """
    config = config if config is not None else SimulationConfig()
    chosen = _backends.resolve_backend(backend)
    with trace_span(
        active_tracer(), "sim.dispatch", backend=chosen.name, tasks=cache.n, lanes=1
    ):
        if chosen.name != "python" and cache.n > 0 and machine.n_nodes >= 1:
            return _replay_kernel_batch(cache, machine, config, [config.seed], chosen, configs=[config])[0]
        return _simulate_python(cache, machine, config)


def _simulate_python(
    cache: SimGraphCache, machine: MachineSpec, config: SimulationConfig
) -> SimulationResult:
    """The pure-Python scalar replay (the reference the kernels must match)."""
    chunk = sim_chunk_tasks()
    if 0 < chunk < cache.n and not config.collect_records and machine.n_nodes >= 1:
        return _replay_stream(cache, machine, config, chunk)
    arrays = cache.replay_arrays(machine, config.costs, config.model_memory_contention)
    is_replicated = _replicated_flags(cache, config)
    if machine.n_nodes == 1:
        return _replay_single_node(cache, machine, config, arrays, is_replicated)
    return _replay_multi_node(cache, machine, config, arrays, is_replicated)


def simulate_compiled_batch(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    seeds: Sequence[int] = (0,),
    backend: Optional[str] = None,
) -> List[SimulationResult]:
    """Replay one compiled graph for a whole batch of fault seeds.

    Seed ``seeds[j]`` becomes lane ``j`` over the shared replay arrays: the
    graph structure, per-task cost terms and replication flags are prepared
    once, each lane pre-draws its own uniform block from
    ``default_rng(SeedSequence(seed))`` — the same chunked generator sequence
    the scalar path consumes — and the selected backend replays all lanes in
    one kernel invocation.  Lane ``j`` is bit-identical to
    ``simulate_compiled(cache, machine, replace(config, seed=seeds[j]))``, so
    results do not depend on batch composition or seed order.
    """
    config = config if config is not None else SimulationConfig()
    seeds = list(seeds)
    if not seeds:
        return []
    chosen = _backends.resolve_backend(backend)
    with trace_span(
        active_tracer(),
        "sim.dispatch",
        backend=chosen.name,
        tasks=cache.n,
        lanes=len(seeds),
    ):
        if chosen.name == "python" or cache.n == 0 or machine.n_nodes < 1:
            return [
                _simulate_python(cache, machine, replace(config, seed=int(s))) for s in seeds
            ]
        return _replay_kernel_batch(cache, machine, config, seeds, chosen)


def _max_draws(n_replicated: int, n_plain: int, config: SimulationConfig) -> int:
    """Upper bound on uniform draws one lane can consume, chunk-rounded.

    Replicated tasks draw two crash Bernoullis and at most two SDC ones,
    plain tasks one of each; draws only happen for probabilities strictly
    inside (0, 1).  Rounding up to whole chunks mirrors the scalar buffers —
    only the consumed prefix affects results, so overdrawing is harmless.
    """
    per = 0
    if 0.0 < config.crash_probability < 1.0:
        per += 2 * n_replicated + n_plain
    if 0.0 < config.sdc_probability < 1.0:
        per += 2 * n_replicated + n_plain
    if per == 0:
        return 0
    return -(-per // _DRAW_CHUNK) * _DRAW_CHUNK


def _replay_kernel_batch(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    seeds: Sequence[int],
    backend: "_backends.KernelBackend",
    configs: Optional[List[SimulationConfig]] = None,
) -> List[SimulationResult]:
    """Run a seed batch through a compiled kernel backend and assemble results."""
    n = cache.n
    n_nodes = machine.n_nodes
    n_lanes = len(seeds)
    collect = bool(config.collect_records)
    contention = bool(config.model_memory_contention)

    replay = cache.replay_arrays_np(machine, config.costs, contention)
    static = cache.static_np()
    node_of = cache.node_map_np(n_nodes)
    flags = cache.replicated_flags_np(config)
    arrays = replay + static + (node_of, flags)

    n_replicated = int(flags.sum())
    draws = _max_draws(n_replicated, n - n_replicated, config)
    if draws:
        uniforms = np.empty((n_lanes, draws), dtype=np.float64)
        for j, seed in enumerate(seeds):
            np.random.default_rng(np.random.SeedSequence(int(seed))).random(out=uniforms[j])
    else:
        uniforms = np.zeros((1, 1), dtype=np.float64)

    out_scalars = np.zeros((n_lanes, 5), dtype=np.float64)
    out_counts = np.zeros((n_lanes, 5), dtype=np.int64)
    if collect:
        rec_shape = (n_lanes, n)
    else:
        rec_shape = (1, 1)
    start_at = np.zeros(rec_shape, dtype=np.float64)
    finish_at = np.zeros(rec_shape, dtype=np.float64)
    overhead_at = np.zeros(rec_shape, dtype=np.float64)
    recovery_at = np.zeros(rec_shape, dtype=np.float64)

    meta = (
        n,
        n_nodes,
        machine.cores_per_node,
        machine.spare_cores_per_node,
        machine.network_latency_s,
        machine.network_bandwidth_Bps,
        int(contention),
        int(collect),
        config.crash_probability,
        config.sdc_probability,
        config.costs.decision_s,
    )
    rc = backend.run_batch(
        n_lanes,
        meta,
        arrays,
        uniforms,
        draws,
        out_scalars,
        out_counts,
        (start_at, finish_at, overhead_at, recovery_at),
    )
    if rc != 0:
        raise RuntimeError(
            f"simulator backend {backend.name!r} failed: {_backends.kernel_error(rc)}"
        )

    if collect:
        node_of_list = cache.node_map(n_nodes)
        is_replicated = _replicated_flags(cache, config)
        dur_list = cache.replay_arrays(machine, config.costs, contention).dur
    else:
        node_of_list = []
        is_replicated = []
        dur_list = []

    results: List[SimulationResult] = []
    for j, seed in enumerate(seeds):
        if configs is not None:
            lane_config = configs[j]
        else:
            lane_config = replace(config, seed=int(seed))
        if collect:
            record_arrays: Optional[Tuple[List[float], ...]] = (
                start_at[j].tolist(),
                finish_at[j].tolist(),
                overhead_at[j].tolist(),
                recovery_at[j].tolist(),
                dur_list,
            )
        else:
            record_arrays = None
        scalars = out_scalars[j]
        counts = out_counts[j]
        results.append(
            _finish(
                cache,
                machine,
                lane_config,
                node_of_list,
                is_replicated,
                int(counts[3]),
                float(scalars[0]),
                float(scalars[4]),
                (
                    float(scalars[1]),
                    float(scalars[2]),
                    float(scalars[3]),
                    int(counts[0]),
                    int(counts[1]),
                    int(counts[2]),
                ),
                record_arrays,
            )
        )
    return results


def _finish(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    node_of: List[int],
    is_replicated: List[bool],
    n_started: int,
    makespan: float,
    max_node_mem: float,
    totals: Tuple[float, float, float, int, int, int],
    record_arrays: Optional[Tuple[List[float], ...]],
) -> SimulationResult:
    """Assemble the :class:`SimulationResult` shared by both replay loops."""
    n = cache.n
    if n_started != n:
        raise RuntimeError(
            f"simulation finished with {n - n_started} unexecuted tasks; "
            "the graph probably contains a cycle"
        )
    total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count = totals
    records: Dict[int, SimulatedTaskRecord] = {}
    if record_arrays is not None:
        start_at, finish_at, overhead_at, recovery_at, duration_at = record_arrays
        for i, tid in enumerate(cache.task_ids):
            records[tid] = SimulatedTaskRecord(
                task_id=tid,
                node=node_of[i],
                start_s=start_at[i],
                finish_s=finish_at[i],
                replicated=is_replicated[i],
                base_duration_s=duration_at[i],
                overhead_s=overhead_at[i],
                recovery_s=recovery_at[i],
            )
    if config.model_memory_contention and machine.n_nodes > 0:
        bandwidth_bound = max_node_mem / machine.memory_bandwidth_Bps
        makespan = max(makespan, bandwidth_bound)
    return SimulationResult(
        makespan_s=makespan,
        machine=machine,
        config=config,
        records=records,
        total_work_s=total_work,
        total_overhead_s=total_overhead,
        total_recovery_s=total_recovery,
        crashes_injected=crashes,
        sdcs_injected=sdcs,
        replicated_tasks=replicated_count,
    )


def _replay_single_node(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    arrays: _ReplayArrays,
    is_replicated: List[bool],
) -> SimulationResult:
    """Specialised replay for one-node machines (the Figure 4/5 shape).

    With a single node there is no placement, no cross-node communication
    delay and a single ready queue, so the loop reduces to heap traffic,
    fault draws and indexed accumulation.  The event/push order and every
    accumulation order mirror the reference loop exactly.
    """
    n = cache.n
    dur = arrays.dur
    mem = arrays.mem
    core_busy0 = arrays.core_busy0
    rep_core_busy = arrays.rep_core_busy
    completion_spare = arrays.completion_spare
    core_busy_nospare = arrays.core_busy_nospare
    completion_nospare = arrays.completion_nospare
    overhead_rep = arrays.overhead_rep
    restore_dur = arrays.restore_dur
    restore_dur_vote = arrays.restore_dur_vote
    successors = cache.successors
    decision_s = config.costs.decision_s
    contention = config.model_memory_contention
    collect = config.collect_records

    p_crash = config.crash_probability
    p_sdc = config.sdc_probability
    crash_mid = 0.0 < p_crash < 1.0
    crash_hi = p_crash >= 1.0
    sdc_mid = 0.0 < p_sdc < 1.0
    sdc_hi = p_sdc >= 1.0
    rand = np.random.default_rng(np.random.SeedSequence(config.seed)).random
    dbuf: List[float] = []
    dlen = 0
    dpos = 0

    free_cores = machine.cores_per_node
    free_spares = machine.spare_cores_per_node
    ready: List[int] = []
    node_mem = 0.0
    pending = list(cache.in_degree)

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0
    n_started = 0
    makespan = 0.0

    if collect:
        start_at = [0.0] * n
        finish_at = [0.0] * n
        overhead_at = [0.0] * n
        recovery_at = [0.0] * n
        record_arrays: Optional[Tuple[List[float], ...]] = (
            start_at, finish_at, overhead_at, recovery_at, dur,
        )
    else:
        record_arrays = None

    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(n):
        if pending[i] == 0:
            heap.append((0.0, seq, _READY, i))
            seq += 1

    while heap:
        now, _, kind, i = heappop(heap)
        if kind == _READY:
            heappush(ready, i)
        elif kind == _FREE:
            free_cores += 1
        elif kind == _SPARE_FREE:
            free_spares += 1
            continue
        else:  # _COMPLETE
            for s in successors[i]:
                pending[s] -= 1
                if pending[s] == 0:
                    heappush(heap, (now, seq, _READY, s))
                    seq += 1

        # try_start: drain the ready heap while cores are free (start inlined).
        while free_cores > 0 and ready:
            i = heappop(ready)
            free_cores -= 1
            if is_replicated[i]:
                replicated_count += 1
                if free_spares > 0:
                    free_spares -= 1
                    use_spare = True
                    core_busy = rep_core_busy[i]
                    completion = completion_spare[i]
                else:
                    use_spare = False
                    core_busy = core_busy_nospare[i]
                    completion = completion_nospare[i]
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash1 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash1 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                    if crash1:
                        sdc1 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc1 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                    sdc1 = (not crash1) and sdc_hi
                crashes += crash0 + crash1
                sdcs += sdc0 + sdc1
                if crash0 and crash1:
                    recovery = restore_dur[i]
                    completion += recovery
                    total_recovery += recovery
                elif (sdc0 != sdc1) and not (crash0 or crash1):
                    recovery = restore_dur_vote[i]
                    completion += recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                overhead = overhead_rep[i]
            else:
                use_spare = False
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                crashes += crash0
                sdcs += sdc0
                if crash0:
                    recovery = dur[i]
                    core_busy = core_busy0[i] + recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                    core_busy = core_busy0[i]
                completion = core_busy
                overhead = decision_s

            total_overhead += overhead
            total_work += dur[i]
            if contention:
                node_mem += mem[i]
            finish = now + completion
            if finish > makespan:
                makespan = finish
            if collect:
                start_at[i] = now
                finish_at[i] = finish
                overhead_at[i] = overhead
                recovery_at[i] = recovery
            n_started += 1
            # Spare release precedes core release at equal timestamps, as in
            # the reference loop, so a task started by the freed core sees the
            # spare available.
            if use_spare:
                heappush(heap, (now + core_busy, seq, _SPARE_FREE, i))
                seq += 1
            heappush(heap, (now + core_busy, seq, _FREE, i))
            seq += 1
            heappush(heap, (finish, seq, _COMPLETE, i))
            seq += 1

    return _finish(
        cache,
        machine,
        config,
        [0] * n if collect else [],
        is_replicated,
        n_started,
        makespan,
        node_mem,
        (total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count),
        record_arrays,
    )


def _replay_multi_node(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    arrays: _ReplayArrays,
    is_replicated: List[bool],
) -> SimulationResult:
    """General replay over multiple nodes (cross-node delays, per-node queues)."""
    n = cache.n
    n_nodes = machine.n_nodes
    dur = arrays.dur
    mem = arrays.mem
    core_busy0 = arrays.core_busy0
    rep_core_busy = arrays.rep_core_busy
    completion_spare = arrays.completion_spare
    core_busy_nospare = arrays.core_busy_nospare
    completion_nospare = arrays.completion_nospare
    overhead_rep = arrays.overhead_rep
    restore_dur = arrays.restore_dur
    restore_dur_vote = arrays.restore_dur_vote
    successors = cache.successors
    edge_bytes = cache.edge_bytes
    node_of = cache.node_map(n_nodes)
    decision_s = config.costs.decision_s
    contention = config.model_memory_contention
    collect = config.collect_records
    net_latency = machine.network_latency_s
    net_bandwidth = machine.network_bandwidth_Bps

    p_crash = config.crash_probability
    p_sdc = config.sdc_probability
    crash_mid = 0.0 < p_crash < 1.0
    crash_hi = p_crash >= 1.0
    sdc_mid = 0.0 < p_sdc < 1.0
    sdc_hi = p_sdc >= 1.0
    rand = np.random.default_rng(np.random.SeedSequence(config.seed)).random
    dbuf: List[float] = []
    dlen = 0
    dpos = 0

    free_cores = [machine.cores_per_node] * n_nodes
    free_spares = [machine.spare_cores_per_node] * n_nodes
    node_ready: List[List[int]] = [[] for _ in range(n_nodes)]
    node_mem = [0.0] * n_nodes
    pending = list(cache.in_degree)
    earliest = [0.0] * n

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0
    n_started = 0
    makespan = 0.0

    if collect:
        start_at = [0.0] * n
        finish_at = [0.0] * n
        overhead_at = [0.0] * n
        recovery_at = [0.0] * n
        record_arrays: Optional[Tuple[List[float], ...]] = (
            start_at, finish_at, overhead_at, recovery_at, dur,
        )
    else:
        record_arrays = None

    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(n):
        if pending[i] == 0:
            heap.append((0.0, seq, _READY, i))
            seq += 1

    while heap:
        now, _, kind, i = heappop(heap)
        nid = node_of[i]
        if kind == _READY:
            heappush(node_ready[nid], i)
        elif kind == _FREE:
            free_cores[nid] += 1
        elif kind == _SPARE_FREE:
            free_spares[nid] += 1
            continue
        else:  # _COMPLETE
            ebrow = edge_bytes[i]
            for k, s in enumerate(successors[i]):
                delay = 0.0
                if node_of[s] != nid:
                    delay = net_latency + ebrow[k] / net_bandwidth
                arrival = now + delay
                if arrival > earliest[s]:
                    earliest[s] = arrival
                pending[s] -= 1
                if pending[s] == 0:
                    at = now if now > earliest[s] else earliest[s]
                    heappush(heap, (at, seq, _READY, s))
                    seq += 1

        # try_start(nid): drain the node's ready heap while cores are free.
        ready = node_ready[nid]
        while free_cores[nid] > 0 and ready:
            i = heappop(ready)
            free_cores[nid] -= 1
            if is_replicated[i]:
                replicated_count += 1
                if free_spares[nid] > 0:
                    free_spares[nid] -= 1
                    use_spare = True
                    core_busy = rep_core_busy[i]
                    completion = completion_spare[i]
                else:
                    use_spare = False
                    core_busy = core_busy_nospare[i]
                    completion = completion_nospare[i]
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash1 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash1 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                    if crash1:
                        sdc1 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc1 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                    sdc1 = (not crash1) and sdc_hi
                crashes += crash0 + crash1
                sdcs += sdc0 + sdc1
                if crash0 and crash1:
                    recovery = restore_dur[i]
                    completion += recovery
                    total_recovery += recovery
                elif (sdc0 != sdc1) and not (crash0 or crash1):
                    recovery = restore_dur_vote[i]
                    completion += recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                overhead = overhead_rep[i]
            else:
                use_spare = False
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                crashes += crash0
                sdcs += sdc0
                if crash0:
                    recovery = dur[i]
                    core_busy = core_busy0[i] + recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                    core_busy = core_busy0[i]
                completion = core_busy
                overhead = decision_s

            total_overhead += overhead
            total_work += dur[i]
            if contention:
                node_mem[nid] += mem[i]
            finish = now + completion
            if finish > makespan:
                makespan = finish
            if collect:
                start_at[i] = now
                finish_at[i] = finish
                overhead_at[i] = overhead
                recovery_at[i] = recovery
            n_started += 1
            if use_spare:
                heappush(heap, (now + core_busy, seq, _SPARE_FREE, i))
                seq += 1
            heappush(heap, (now + core_busy, seq, _FREE, i))
            seq += 1
            heappush(heap, (finish, seq, _COMPLETE, i))
            seq += 1

    return _finish(
        cache,
        machine,
        config,
        node_of,
        is_replicated,
        n_started,
        makespan,
        max(node_mem) if node_mem else 0.0,
        (total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count),
        record_arrays,
    )


class _ChunkedReplay:
    """Bounded-memory view of the replay terms: per-chunk slices on demand.

    ``row(i)`` returns the ten replay terms of task ``i`` as Python floats,
    computing (and LRU-caching) one chunk-sized slice of :func:`_replay_terms`
    at a time directly off the compiled graph's (memory-mapped) arrays.  Since
    every term expression is element-wise, each chunk is bit-identical to the
    corresponding slice of the full-graph arrays — so the streaming loop reads
    exactly the floats the in-core loops would.
    """

    #: Resident chunk budget.  The event-loop frontier visits tasks roughly in
    #: topological (= dense-index) order, so a handful of chunks absorbs the
    #: straddle between the started window and its completing predecessors.
    _CAPACITY = 4

    def __init__(
        self,
        cache: SimGraphCache,
        machine: MachineSpec,
        config: SimulationConfig,
        chunk: int,
    ) -> None:
        self._compiled = cache.compiled
        self._machine = machine
        self._costs = config.costs
        self._contention = bool(config.model_memory_contention)
        self._chunk = int(chunk)
        self._n = cache.n
        self._chunks: "OrderedDict[int, Tuple[np.ndarray, ...]]" = OrderedDict()

    def row(self, i: int) -> Tuple[float, ...]:
        """The ten replay terms of task ``i`` (``_ReplayArrays`` field order)."""
        base, off = divmod(i, self._chunk)
        terms = self._chunks.get(base)
        if terms is None:
            lo = base * self._chunk
            hi = min(lo + self._chunk, self._n)
            c = self._compiled
            terms = _replay_terms(
                np.asarray(c.durations[lo:hi]),
                np.asarray(c.mem_bytes[lo:hi]),
                np.asarray(c.input_bytes[lo:hi]),
                np.asarray(c.output_bytes[lo:hi]),
                self._machine,
                self._costs,
                self._contention,
            )
            while len(self._chunks) >= self._CAPACITY:
                self._chunks.popitem(last=False)
            self._chunks[base] = terms
        else:
            self._chunks.move_to_end(base)
        return tuple(float(a[off]) for a in terms)


def _replay_stream(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    chunk: int,
) -> SimulationResult:
    """Out-of-core replay: the general event loop over chunked replay terms.

    Bit-identical to the in-core scalar loops (the general multi-node loop
    degenerates to the single-node one at ``n_nodes == 1`` — same heap tuples,
    same draw sequence, same accumulation order), but holds no O(n) Python
    state: per-task numeric state lives in flat NumPy arrays (pending counts,
    earliest-start times, node map, replication flags), successor rows are
    sliced per completion straight off the compiled graph's memory-mapped CSR,
    and the ten replay-term arrays are materialised one chunk at a time
    through :class:`_ChunkedReplay`.  Peak resident memory is therefore
    O(n) * a few numeric words + O(chunk), instead of O(n) Python floats
    times ten term lists.  Per-task records are not supported here — the
    dispatcher only selects this loop when ``collect_records`` is off.
    """
    n = cache.n
    n_nodes = machine.n_nodes
    compiled = cache.compiled
    terms = _ChunkedReplay(cache, machine, config, chunk)
    succ_ptr = compiled.succ_indptr
    succ_idx = compiled.succ_indices
    succ_ebs = compiled.edge_bytes
    node_of = cache.node_map_np(n_nodes)
    flags = cache.replicated_flags_np(config)
    decision_s = config.costs.decision_s
    contention = config.model_memory_contention
    net_latency = machine.network_latency_s
    net_bandwidth = machine.network_bandwidth_Bps

    p_crash = config.crash_probability
    p_sdc = config.sdc_probability
    crash_mid = 0.0 < p_crash < 1.0
    crash_hi = p_crash >= 1.0
    sdc_mid = 0.0 < p_sdc < 1.0
    sdc_hi = p_sdc >= 1.0
    rand = np.random.default_rng(np.random.SeedSequence(config.seed)).random
    dbuf: List[float] = []
    dlen = 0
    dpos = 0

    free_cores = [machine.cores_per_node] * n_nodes
    free_spares = [machine.spare_cores_per_node] * n_nodes
    node_ready: List[List[int]] = [[] for _ in range(n_nodes)]
    node_mem = [0.0] * n_nodes
    pending = compiled.in_degrees()
    earliest = np.zeros(n, dtype=np.float64)

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0
    n_started = 0
    makespan = 0.0

    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in np.flatnonzero(pending == 0).tolist():
        heap.append((0.0, seq, _READY, i))
        seq += 1

    with trace_span(active_tracer(), "sim.stream", tasks=n, chunk=chunk):
        while heap:
            now, _, kind, i = heappop(heap)
            nid = int(node_of[i])
            if kind == _READY:
                heappush(node_ready[nid], i)
            elif kind == _FREE:
                free_cores[nid] += 1
            elif kind == _SPARE_FREE:
                free_spares[nid] += 1
                continue
            else:  # _COMPLETE
                elo = int(succ_ptr[i])
                ehi = int(succ_ptr[i + 1])
                if ehi > elo:
                    srow = succ_idx[elo:ehi].tolist()
                    ebrow = succ_ebs[elo:ehi].tolist()
                    for k, s in enumerate(srow):
                        delay = 0.0
                        if int(node_of[s]) != nid:
                            delay = net_latency + ebrow[k] / net_bandwidth
                        arrival = now + delay
                        if arrival > earliest[s]:
                            earliest[s] = arrival
                        pending[s] -= 1
                        if pending[s] == 0:
                            e = float(earliest[s])
                            at = now if now > e else e
                            heappush(heap, (at, seq, _READY, s))
                            seq += 1

            # try_start(nid): drain the node's ready heap while cores are free.
            ready = node_ready[nid]
            while free_cores[nid] > 0 and ready:
                i = heappop(ready)
                free_cores[nid] -= 1
                (
                    dur_i,
                    mem_i,
                    core_busy0_i,
                    rep_core_busy_i,
                    completion_spare_i,
                    core_busy_nospare_i,
                    completion_nospare_i,
                    overhead_rep_i,
                    restore_dur_i,
                    restore_dur_vote_i,
                ) = terms.row(i)
                if flags[i]:
                    replicated_count += 1
                    if free_spares[nid] > 0:
                        free_spares[nid] -= 1
                        use_spare = True
                        core_busy = rep_core_busy_i
                        completion = completion_spare_i
                    else:
                        use_spare = False
                        core_busy = core_busy_nospare_i
                        completion = completion_nospare_i
                    if crash_mid:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        crash0 = dbuf[dpos] < p_crash
                        dpos += 1
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        crash1 = dbuf[dpos] < p_crash
                        dpos += 1
                    else:
                        crash0 = crash1 = crash_hi
                    if sdc_mid:
                        if crash0:
                            sdc0 = False
                        else:
                            if dpos >= dlen:
                                dbuf = rand(_DRAW_CHUNK).tolist()
                                dlen = _DRAW_CHUNK
                                dpos = 0
                            sdc0 = dbuf[dpos] < p_sdc
                            dpos += 1
                        if crash1:
                            sdc1 = False
                        else:
                            if dpos >= dlen:
                                dbuf = rand(_DRAW_CHUNK).tolist()
                                dlen = _DRAW_CHUNK
                                dpos = 0
                            sdc1 = dbuf[dpos] < p_sdc
                            dpos += 1
                    else:
                        sdc0 = (not crash0) and sdc_hi
                        sdc1 = (not crash1) and sdc_hi
                    crashes += crash0 + crash1
                    sdcs += sdc0 + sdc1
                    if crash0 and crash1:
                        recovery = restore_dur_i
                        completion += recovery
                        total_recovery += recovery
                    elif (sdc0 != sdc1) and not (crash0 or crash1):
                        recovery = restore_dur_vote_i
                        completion += recovery
                        total_recovery += recovery
                    else:
                        recovery = 0.0
                    overhead = overhead_rep_i
                else:
                    use_spare = False
                    if crash_mid:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        crash0 = dbuf[dpos] < p_crash
                        dpos += 1
                    else:
                        crash0 = crash_hi
                    if sdc_mid:
                        if crash0:
                            sdc0 = False
                        else:
                            if dpos >= dlen:
                                dbuf = rand(_DRAW_CHUNK).tolist()
                                dlen = _DRAW_CHUNK
                                dpos = 0
                            sdc0 = dbuf[dpos] < p_sdc
                            dpos += 1
                    else:
                        sdc0 = (not crash0) and sdc_hi
                    crashes += crash0
                    sdcs += sdc0
                    if crash0:
                        recovery = dur_i
                        core_busy = core_busy0_i + recovery
                        total_recovery += recovery
                    else:
                        recovery = 0.0
                        core_busy = core_busy0_i
                    completion = core_busy
                    overhead = decision_s

                total_overhead += overhead
                total_work += dur_i
                if contention:
                    node_mem[nid] += mem_i
                finish = now + completion
                if finish > makespan:
                    makespan = finish
                n_started += 1
                if use_spare:
                    heappush(heap, (now + core_busy, seq, _SPARE_FREE, i))
                    seq += 1
                heappush(heap, (now + core_busy, seq, _FREE, i))
                seq += 1
                heappush(heap, (finish, seq, _COMPLETE, i))
                seq += 1

    return _finish(
        cache,
        machine,
        config,
        [],
        [],
        n_started,
        makespan,
        max(node_mem) if node_mem else 0.0,
        (total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count),
        None,
    )


def simulate_graph_fast(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    cache: Optional[SimGraphCache] = None,
) -> SimulationResult:
    """Drop-in replacement for :func:`simulate_graph`, bit-identical results.

    Pass a :class:`SimGraphCache` to amortise the per-graph precomputation
    across fault rates and machine sizes (the experiment engine does).
    """
    if cache is None:
        cache = SimGraphCache(graph)
    return simulate_compiled(cache, machine, config)


def simulate(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    fast: bool = True,
    cache: Optional[SimGraphCache] = None,
) -> SimulationResult:
    """Dispatch to the fast path (default) or the scalar reference loop."""
    if fast:
        return simulate_graph_fast(graph, machine, config, cache=cache)
    return simulate_graph(graph, machine, config)
