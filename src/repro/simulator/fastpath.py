"""Vectorized fast path of the machine simulator, over compiled graphs.

:func:`repro.simulator.execution.simulate_graph` is the reference
implementation: a readable event loop that re-derives every per-task quantity
(costs, memory traffic, node placement) from the descriptors on each call.
The experiment drivers, however, replay the *same* graph many times — once per
fault rate and machine size — so this module splits the work:

* :class:`~repro.runtime.compiled.CompiledGraph` (produced once per graph by
  :func:`~repro.runtime.compiled.compile_graph`, usually loaded memory-mapped
  from the on-disk compiled-graph store) holds everything that depends only on
  the graph: durations, byte counts, CSR successor/predecessor indices and
  per-edge communication payloads;
* :class:`SimGraphCache` wraps a compiled graph and memoises the
  machine/cost-model-dependent *replay arrays* — the per-task core-occupancy,
  completion, overhead and recovery terms, folded into flat lists with one
  NumPy pass per (cost model, bandwidth) combination;
* :func:`simulate_compiled` replays those arrays through a flat ``heapq``
  event loop over primitive floats and ints (with a specialised loop for
  single-node machines, the Figure 4/5 shape), drawing fault Bernoullis from
  a chunk-buffered NumPy stream that consumes the *same* underlying uniform
  sequence as the reference path's per-call draws.

Every arithmetic expression mirrors the reference loop operation for
operation (the replay arrays are built with the same association order the
scalar code uses), and events are pushed in the same order with the same FIFO
tie-breaking, so the fast path is bit-identical to the reference — which the
equivalence test suite asserts.  Use ``fast=False`` (or the benchmark
harness's ``--reference`` flag) to fall back to the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.compiled import CompiledGraph, compile_graph
from repro.runtime.graph import TaskGraph
from repro.simulator.costs import ReplicationCostModel
from repro.simulator.execution import (
    SimulatedTaskRecord,
    SimulationConfig,
    SimulationResult,
    simulate_graph,
)
from repro.simulator.machine import MachineSpec

#: Event kinds of the flat loop (values never compared — the heap tuples are
#: ordered by (time, sequence number) alone, as in the reference EventQueue).
_READY, _FREE, _SPARE_FREE, _COMPLETE = 0, 1, 2, 3

#: Uniform draws are buffered in chunks of this size.  ``Generator.random(n)``
#: consumes the identical double sequence as ``n`` successive
#: ``Generator.random()`` calls, so buffering keeps the fault draws
#: bit-identical to the reference path while amortising the per-call overhead.
#: (Both paths intentionally keep this sequential per-``config.seed`` stream
#: rather than the functional injector's keyed per-execution streams — see
#: ``SimulationConfig.seed``; the replay order is deterministic here, and the
#: golden artifacts pin the resulting draw sequence.)
_DRAW_CHUNK = 4096


@dataclass
class _ReplayArrays:
    """Per-task cost terms of one (cost model, machine bandwidth) combination.

    Each list is indexed by dense task index and holds exactly the floats the
    reference loop would compute for that task, pre-folded with the reference
    association order so the event loop only selects and accumulates.
    """

    dur: List[float]  #: effective duration (roofline-bounded if contended)
    mem: List[float]  #: memory traffic charged to the node
    core_busy0: List[float]  #: unreplicated, fault-free core occupancy
    rep_core_busy: List[float]  #: replicated core occupancy (spare available)
    completion_spare: List[float]  #: replicated completion (spare available)
    core_busy_nospare: List[float]  #: replicated core occupancy (no spare)
    completion_nospare: List[float]  #: replicated completion (no spare)
    overhead_rep: List[float]  #: replicated fault-free overhead
    restore_dur: List[float]  #: crash+crash recovery (restore + re-execute)
    restore_dur_vote: List[float]  #: sdc-mismatch recovery (restore + re-execute + vote)


class SimGraphCache:
    """Replay-ready view of one graph: compiled arrays plus machine memos.

    Construct from a :class:`TaskGraph` (compiled on the fly) or, in worker
    processes, from a :class:`CompiledGraph` loaded memory-mapped off the
    compiled-graph store — no ``TaskGraph`` (and no Python object graph) is
    needed to simulate.
    """

    def __init__(
        self,
        graph: Optional[TaskGraph] = None,
        compiled: Optional[CompiledGraph] = None,
    ) -> None:
        if compiled is None:
            if graph is None:
                raise ValueError("SimGraphCache needs a TaskGraph or a CompiledGraph")
            compiled = compile_graph(graph)
        self.graph = graph
        self.compiled = compiled
        n = self.n = compiled.n
        self.task_ids: List[int] = compiled.task_ids.tolist()
        self.durations = np.asarray(compiled.durations)
        self.mem_bytes = np.asarray(compiled.mem_bytes)
        self.input_bytes = np.asarray(compiled.input_bytes)
        self.output_bytes = np.asarray(compiled.output_bytes)
        #: Explicit node placements (-1 when the runtime is free to choose).
        self.node_attr: List[int] = compiled.node_attr.tolist()
        self.in_degree: List[int] = compiled.in_degrees().tolist()
        ptr = compiled.succ_indptr.tolist()
        idx = compiled.succ_indices.tolist()
        ebs = compiled.edge_bytes.tolist()
        #: Successors as dense indices, sorted like the reference loop iterates.
        self.successors: List[List[int]] = [
            idx[ptr[i] : ptr[i + 1]] for i in range(n)
        ]
        #: Per-edge communication payloads, aligned with :attr:`successors`.
        self.edge_bytes: List[List[float]] = [
            ebs[ptr[i] : ptr[i + 1]] for i in range(n)
        ]
        self._node_maps: Dict[int, List[int]] = {}
        self._replay: Dict[Tuple[ReplicationCostModel, bool, float], _ReplayArrays] = {}

    @classmethod
    def from_compiled(cls, compiled: CompiledGraph) -> "SimGraphCache":
        """A cache over a compiled graph alone (e.g. mmap-loaded by a worker)."""
        return cls(compiled=compiled)

    # -- memoised derived quantities ----------------------------------------

    def node_map(self, n_nodes: int) -> List[int]:
        """Node of every task on an ``n_nodes`` machine (reference placement rule)."""
        cached = self._node_maps.get(n_nodes)
        if cached is None:
            if n_nodes == 1:
                cached = [0] * self.n
            else:
                cached = [
                    (attr % n_nodes) if attr >= 0 else (i % n_nodes)
                    for i, attr in enumerate(self.node_attr)
                ]
            self._node_maps[n_nodes] = cached
        return cached

    def replay_arrays(
        self, machine: MachineSpec, costs: ReplicationCostModel, contention: bool
    ) -> _ReplayArrays:
        """The per-task replay terms of one (costs, contention, bandwidth) key.

        Every expression below reproduces the reference loop's scalar
        arithmetic with the same association order, element-wise — which is
        what keeps the replay bit-identical while moving ~15 float operations
        per task out of the event loop.
        """
        key = (costs, bool(contention), machine.memory_bandwidth_Bps)
        cached = self._replay.get(key)
        if cached is None:
            checkpoint = (
                costs.checkpoint_latency_s + self.input_bytes / costs.checkpoint_bandwidth_Bps
            )
            restore = (
                costs.restore_latency_s + self.input_bytes / costs.checkpoint_bandwidth_Bps
            )
            compare = (
                costs.compare_latency_s + self.output_bytes / costs.compare_bandwidth_Bps
            )
            vote = costs.compare_latency_s + self.output_bytes / costs.vote_bandwidth_Bps
            if contention:
                dur = np.maximum(self.durations, self.mem_bytes / machine.memory_bandwidth_Bps)
            else:
                dur = self.durations
            decision_s = costs.decision_s
            creation_s = costs.replica_creation_s
            core_busy0 = decision_s + dur
            rep_core_busy = core_busy0 + creation_s
            replica_path = (checkpoint + dur) + compare
            replica_tail = creation_s + replica_path
            core_busy_nospare = rep_core_busy + replica_path
            cached = _ReplayArrays(
                dur=dur.tolist(),
                mem=self.mem_bytes.tolist(),
                core_busy0=core_busy0.tolist(),
                rep_core_busy=rep_core_busy.tolist(),
                completion_spare=np.maximum(rep_core_busy, replica_tail).tolist(),
                core_busy_nospare=core_busy_nospare.tolist(),
                completion_nospare=np.maximum(core_busy_nospare, replica_tail).tolist(),
                overhead_rep=((decision_s + creation_s) + (checkpoint + compare)).tolist(),
                restore_dur=(restore + dur).tolist(),
                restore_dur_vote=((restore + dur) + vote).tolist(),
            )
            self._replay[key] = cached
        return cached


def _replicated_flags(cache: SimGraphCache, config: SimulationConfig) -> List[bool]:
    """Per-task replication flags under ``config``, in dense index order."""
    if config.replicate_all:
        return [True] * cache.n
    if config.replicated_ids is not None:
        replicated_ids = config.replicated_ids
        return [tid in replicated_ids for tid in cache.task_ids]
    return [False] * cache.n


def simulate_compiled(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Replay a compiled graph on ``machine``; bit-identical to the reference.

    This is the entry point worker processes use: ``cache`` may wrap a
    memory-mapped :class:`~repro.runtime.compiled.CompiledGraph` with no
    ``TaskGraph`` behind it.
    """
    config = config if config is not None else SimulationConfig()
    arrays = cache.replay_arrays(machine, config.costs, config.model_memory_contention)
    is_replicated = _replicated_flags(cache, config)
    if machine.n_nodes == 1:
        return _replay_single_node(cache, machine, config, arrays, is_replicated)
    return _replay_multi_node(cache, machine, config, arrays, is_replicated)


def _finish(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    node_of: List[int],
    is_replicated: List[bool],
    n_started: int,
    makespan: float,
    max_node_mem: float,
    totals: Tuple[float, float, float, int, int, int],
    record_arrays: Optional[Tuple[List[float], ...]],
) -> SimulationResult:
    """Assemble the :class:`SimulationResult` shared by both replay loops."""
    n = cache.n
    if n_started != n:
        raise RuntimeError(
            f"simulation finished with {n - n_started} unexecuted tasks; "
            "the graph probably contains a cycle"
        )
    total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count = totals
    records: Dict[int, SimulatedTaskRecord] = {}
    if record_arrays is not None:
        start_at, finish_at, overhead_at, recovery_at, duration_at = record_arrays
        for i, tid in enumerate(cache.task_ids):
            records[tid] = SimulatedTaskRecord(
                task_id=tid,
                node=node_of[i],
                start_s=start_at[i],
                finish_s=finish_at[i],
                replicated=is_replicated[i],
                base_duration_s=duration_at[i],
                overhead_s=overhead_at[i],
                recovery_s=recovery_at[i],
            )
    if config.model_memory_contention and machine.n_nodes > 0:
        bandwidth_bound = max_node_mem / machine.memory_bandwidth_Bps
        makespan = max(makespan, bandwidth_bound)
    return SimulationResult(
        makespan_s=makespan,
        machine=machine,
        config=config,
        records=records,
        total_work_s=total_work,
        total_overhead_s=total_overhead,
        total_recovery_s=total_recovery,
        crashes_injected=crashes,
        sdcs_injected=sdcs,
        replicated_tasks=replicated_count,
    )


def _replay_single_node(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    arrays: _ReplayArrays,
    is_replicated: List[bool],
) -> SimulationResult:
    """Specialised replay for one-node machines (the Figure 4/5 shape).

    With a single node there is no placement, no cross-node communication
    delay and a single ready queue, so the loop reduces to heap traffic,
    fault draws and indexed accumulation.  The event/push order and every
    accumulation order mirror the reference loop exactly.
    """
    n = cache.n
    dur = arrays.dur
    mem = arrays.mem
    core_busy0 = arrays.core_busy0
    rep_core_busy = arrays.rep_core_busy
    completion_spare = arrays.completion_spare
    core_busy_nospare = arrays.core_busy_nospare
    completion_nospare = arrays.completion_nospare
    overhead_rep = arrays.overhead_rep
    restore_dur = arrays.restore_dur
    restore_dur_vote = arrays.restore_dur_vote
    successors = cache.successors
    decision_s = config.costs.decision_s
    contention = config.model_memory_contention
    collect = config.collect_records

    p_crash = config.crash_probability
    p_sdc = config.sdc_probability
    crash_mid = 0.0 < p_crash < 1.0
    crash_hi = p_crash >= 1.0
    sdc_mid = 0.0 < p_sdc < 1.0
    sdc_hi = p_sdc >= 1.0
    rand = np.random.default_rng(np.random.SeedSequence(config.seed)).random
    dbuf: List[float] = []
    dlen = 0
    dpos = 0

    free_cores = machine.cores_per_node
    free_spares = machine.spare_cores_per_node
    ready: List[int] = []
    node_mem = 0.0
    pending = list(cache.in_degree)

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0
    n_started = 0
    makespan = 0.0

    if collect:
        start_at = [0.0] * n
        finish_at = [0.0] * n
        overhead_at = [0.0] * n
        recovery_at = [0.0] * n
        record_arrays: Optional[Tuple[List[float], ...]] = (
            start_at, finish_at, overhead_at, recovery_at, dur,
        )
    else:
        record_arrays = None

    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(n):
        if pending[i] == 0:
            heap.append((0.0, seq, _READY, i))
            seq += 1

    while heap:
        now, _, kind, i = heappop(heap)
        if kind == _READY:
            heappush(ready, i)
        elif kind == _FREE:
            free_cores += 1
        elif kind == _SPARE_FREE:
            free_spares += 1
            continue
        else:  # _COMPLETE
            for s in successors[i]:
                pending[s] -= 1
                if pending[s] == 0:
                    heappush(heap, (now, seq, _READY, s))
                    seq += 1

        # try_start: drain the ready heap while cores are free (start inlined).
        while free_cores > 0 and ready:
            i = heappop(ready)
            free_cores -= 1
            if is_replicated[i]:
                replicated_count += 1
                if free_spares > 0:
                    free_spares -= 1
                    use_spare = True
                    core_busy = rep_core_busy[i]
                    completion = completion_spare[i]
                else:
                    use_spare = False
                    core_busy = core_busy_nospare[i]
                    completion = completion_nospare[i]
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash1 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash1 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                    if crash1:
                        sdc1 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc1 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                    sdc1 = (not crash1) and sdc_hi
                crashes += crash0 + crash1
                sdcs += sdc0 + sdc1
                if crash0 and crash1:
                    recovery = restore_dur[i]
                    completion += recovery
                    total_recovery += recovery
                elif (sdc0 != sdc1) and not (crash0 or crash1):
                    recovery = restore_dur_vote[i]
                    completion += recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                overhead = overhead_rep[i]
            else:
                use_spare = False
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                crashes += crash0
                sdcs += sdc0
                if crash0:
                    recovery = dur[i]
                    core_busy = core_busy0[i] + recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                    core_busy = core_busy0[i]
                completion = core_busy
                overhead = decision_s

            total_overhead += overhead
            total_work += dur[i]
            if contention:
                node_mem += mem[i]
            finish = now + completion
            if finish > makespan:
                makespan = finish
            if collect:
                start_at[i] = now
                finish_at[i] = finish
                overhead_at[i] = overhead
                recovery_at[i] = recovery
            n_started += 1
            # Spare release precedes core release at equal timestamps, as in
            # the reference loop, so a task started by the freed core sees the
            # spare available.
            if use_spare:
                heappush(heap, (now + core_busy, seq, _SPARE_FREE, i))
                seq += 1
            heappush(heap, (now + core_busy, seq, _FREE, i))
            seq += 1
            heappush(heap, (finish, seq, _COMPLETE, i))
            seq += 1

    return _finish(
        cache,
        machine,
        config,
        [0] * n if collect else [],
        is_replicated,
        n_started,
        makespan,
        node_mem,
        (total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count),
        record_arrays,
    )


def _replay_multi_node(
    cache: SimGraphCache,
    machine: MachineSpec,
    config: SimulationConfig,
    arrays: _ReplayArrays,
    is_replicated: List[bool],
) -> SimulationResult:
    """General replay over multiple nodes (cross-node delays, per-node queues)."""
    n = cache.n
    n_nodes = machine.n_nodes
    dur = arrays.dur
    mem = arrays.mem
    core_busy0 = arrays.core_busy0
    rep_core_busy = arrays.rep_core_busy
    completion_spare = arrays.completion_spare
    core_busy_nospare = arrays.core_busy_nospare
    completion_nospare = arrays.completion_nospare
    overhead_rep = arrays.overhead_rep
    restore_dur = arrays.restore_dur
    restore_dur_vote = arrays.restore_dur_vote
    successors = cache.successors
    edge_bytes = cache.edge_bytes
    node_of = cache.node_map(n_nodes)
    decision_s = config.costs.decision_s
    contention = config.model_memory_contention
    collect = config.collect_records
    net_latency = machine.network_latency_s
    net_bandwidth = machine.network_bandwidth_Bps

    p_crash = config.crash_probability
    p_sdc = config.sdc_probability
    crash_mid = 0.0 < p_crash < 1.0
    crash_hi = p_crash >= 1.0
    sdc_mid = 0.0 < p_sdc < 1.0
    sdc_hi = p_sdc >= 1.0
    rand = np.random.default_rng(np.random.SeedSequence(config.seed)).random
    dbuf: List[float] = []
    dlen = 0
    dpos = 0

    free_cores = [machine.cores_per_node] * n_nodes
    free_spares = [machine.spare_cores_per_node] * n_nodes
    node_ready: List[List[int]] = [[] for _ in range(n_nodes)]
    node_mem = [0.0] * n_nodes
    pending = list(cache.in_degree)
    earliest = [0.0] * n

    crashes = 0
    sdcs = 0
    total_overhead = 0.0
    total_recovery = 0.0
    total_work = 0.0
    replicated_count = 0
    n_started = 0
    makespan = 0.0

    if collect:
        start_at = [0.0] * n
        finish_at = [0.0] * n
        overhead_at = [0.0] * n
        recovery_at = [0.0] * n
        record_arrays: Optional[Tuple[List[float], ...]] = (
            start_at, finish_at, overhead_at, recovery_at, dur,
        )
    else:
        record_arrays = None

    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(n):
        if pending[i] == 0:
            heap.append((0.0, seq, _READY, i))
            seq += 1

    while heap:
        now, _, kind, i = heappop(heap)
        nid = node_of[i]
        if kind == _READY:
            heappush(node_ready[nid], i)
        elif kind == _FREE:
            free_cores[nid] += 1
        elif kind == _SPARE_FREE:
            free_spares[nid] += 1
            continue
        else:  # _COMPLETE
            ebrow = edge_bytes[i]
            for k, s in enumerate(successors[i]):
                delay = 0.0
                if node_of[s] != nid:
                    delay = net_latency + ebrow[k] / net_bandwidth
                arrival = now + delay
                if arrival > earliest[s]:
                    earliest[s] = arrival
                pending[s] -= 1
                if pending[s] == 0:
                    at = now if now > earliest[s] else earliest[s]
                    heappush(heap, (at, seq, _READY, s))
                    seq += 1

        # try_start(nid): drain the node's ready heap while cores are free.
        ready = node_ready[nid]
        while free_cores[nid] > 0 and ready:
            i = heappop(ready)
            free_cores[nid] -= 1
            if is_replicated[i]:
                replicated_count += 1
                if free_spares[nid] > 0:
                    free_spares[nid] -= 1
                    use_spare = True
                    core_busy = rep_core_busy[i]
                    completion = completion_spare[i]
                else:
                    use_spare = False
                    core_busy = core_busy_nospare[i]
                    completion = completion_nospare[i]
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash1 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash1 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                    if crash1:
                        sdc1 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc1 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                    sdc1 = (not crash1) and sdc_hi
                crashes += crash0 + crash1
                sdcs += sdc0 + sdc1
                if crash0 and crash1:
                    recovery = restore_dur[i]
                    completion += recovery
                    total_recovery += recovery
                elif (sdc0 != sdc1) and not (crash0 or crash1):
                    recovery = restore_dur_vote[i]
                    completion += recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                overhead = overhead_rep[i]
            else:
                use_spare = False
                if crash_mid:
                    if dpos >= dlen:
                        dbuf = rand(_DRAW_CHUNK).tolist()
                        dlen = _DRAW_CHUNK
                        dpos = 0
                    crash0 = dbuf[dpos] < p_crash
                    dpos += 1
                else:
                    crash0 = crash_hi
                if sdc_mid:
                    if crash0:
                        sdc0 = False
                    else:
                        if dpos >= dlen:
                            dbuf = rand(_DRAW_CHUNK).tolist()
                            dlen = _DRAW_CHUNK
                            dpos = 0
                        sdc0 = dbuf[dpos] < p_sdc
                        dpos += 1
                else:
                    sdc0 = (not crash0) and sdc_hi
                crashes += crash0
                sdcs += sdc0
                if crash0:
                    recovery = dur[i]
                    core_busy = core_busy0[i] + recovery
                    total_recovery += recovery
                else:
                    recovery = 0.0
                    core_busy = core_busy0[i]
                completion = core_busy
                overhead = decision_s

            total_overhead += overhead
            total_work += dur[i]
            if contention:
                node_mem[nid] += mem[i]
            finish = now + completion
            if finish > makespan:
                makespan = finish
            if collect:
                start_at[i] = now
                finish_at[i] = finish
                overhead_at[i] = overhead
                recovery_at[i] = recovery
            n_started += 1
            if use_spare:
                heappush(heap, (now + core_busy, seq, _SPARE_FREE, i))
                seq += 1
            heappush(heap, (now + core_busy, seq, _FREE, i))
            seq += 1
            heappush(heap, (finish, seq, _COMPLETE, i))
            seq += 1

    return _finish(
        cache,
        machine,
        config,
        node_of,
        is_replicated,
        n_started,
        makespan,
        max(node_mem) if node_mem else 0.0,
        (total_work, total_overhead, total_recovery, crashes, sdcs, replicated_count),
        record_arrays,
    )


def simulate_graph_fast(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    cache: Optional[SimGraphCache] = None,
) -> SimulationResult:
    """Drop-in replacement for :func:`simulate_graph`, bit-identical results.

    Pass a :class:`SimGraphCache` to amortise the per-graph precomputation
    across fault rates and machine sizes (the experiment engine does).
    """
    if cache is None:
        cache = SimGraphCache(graph)
    return simulate_compiled(cache, machine, config)


def simulate(
    graph: TaskGraph,
    machine: MachineSpec,
    config: Optional[SimulationConfig] = None,
    fast: bool = True,
    cache: Optional[SimGraphCache] = None,
) -> SimulationResult:
    """Dispatch to the fast path (default) or the scalar reference loop."""
    if fast:
        return simulate_graph_fast(graph, machine, config, cache=cache)
    return simulate_graph(graph, machine, config)
