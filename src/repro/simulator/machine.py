"""Machine models.

The default parameters approximate a Marenostrum III compute node (two 8-core
Sandy Bridge sockets, ~50 GB/s of memory bandwidth, FDR-10 InfiniBand between
nodes).  Absolute accuracy is not the goal — the reproduction compares shapes,
not wall-clock seconds — but the ratios (compute throughput vs. memory
bandwidth vs. network bandwidth) drive which benchmarks scale and which do
not, so they are kept realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive, check_positive_int


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous cluster of multi-core nodes.

    Attributes
    ----------
    n_nodes:
        Number of nodes.
    cores_per_node:
        Worker cores per node available to original tasks.
    spare_cores_per_node:
        Cores reserved for replicas ("task replicas are executed on spare
        cores").  The paper's complete-replication experiments imply a full
        second set of cores; selective replication needs fewer.
    memory_bandwidth_Bps:
        Sustained per-node memory bandwidth shared by all cores of the node.
    core_flops:
        Sustained per-core floating-point throughput used to convert benchmark
        flop counts into durations.
    network_latency_s / network_bandwidth_Bps:
        Inter-node link characteristics for the distributed benchmarks.
    """

    n_nodes: int = 1
    cores_per_node: int = 16
    spare_cores_per_node: int = 16
    memory_bandwidth_Bps: float = 50e9
    core_flops: float = 10e9
    network_latency_s: float = 1.5e-6
    network_bandwidth_Bps: float = 4e9

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")
        check_positive_int(self.cores_per_node, "cores_per_node")
        check_non_negative(self.spare_cores_per_node, "spare_cores_per_node")
        check_positive(self.memory_bandwidth_Bps, "memory_bandwidth_Bps")
        check_positive(self.core_flops, "core_flops")
        check_non_negative(self.network_latency_s, "network_latency_s")
        check_positive(self.network_bandwidth_Bps, "network_bandwidth_Bps")

    @property
    def total_cores(self) -> int:
        """Total worker cores across the cluster (excluding spares)."""
        return self.n_nodes * self.cores_per_node

    @property
    def total_spare_cores(self) -> int:
        """Total spare cores across the cluster."""
        return self.n_nodes * self.spare_cores_per_node

    def with_cores(self, cores_per_node: int, spare_cores_per_node: int | None = None) -> "MachineSpec":
        """A copy with a different core count (spares default to matching)."""
        from dataclasses import replace

        if spare_cores_per_node is None:
            spare_cores_per_node = cores_per_node
        return replace(
            self, cores_per_node=cores_per_node, spare_cores_per_node=spare_cores_per_node
        )

    def with_nodes(self, n_nodes: int) -> "MachineSpec":
        """A copy with a different node count."""
        from dataclasses import replace

        return replace(self, n_nodes=n_nodes)


def shared_memory_node(cores: int = 16, spare_cores: int | None = None) -> MachineSpec:
    """One Marenostrum-like node, as used by the shared-memory experiments."""
    if spare_cores is None:
        spare_cores = cores
    return MachineSpec(n_nodes=1, cores_per_node=cores, spare_cores_per_node=spare_cores)


def marenostrum_cluster(n_nodes: int = 64, cores_per_node: int = 16) -> MachineSpec:
    """The distributed configuration of the paper: up to 64 nodes x 16 cores."""
    return MachineSpec(
        n_nodes=n_nodes,
        cores_per_node=cores_per_node,
        spare_cores_per_node=cores_per_node,
    )
