"""Discrete-event machine simulator.

The paper's overhead and scalability numbers (Figures 4-6) come from runs on
Marenostrum III (16 cores/node, up to 64 nodes).  This package provides the
substitute: a discrete-event simulator that replays a task graph against a
machine model with

* per-node cores and *spare cores* for replicas (the paper executes replicas on
  spare cores),
* a shared per-node memory bandwidth (so memory-bound benchmarks such as
  Stream stop scaling, as they do in the paper),
* a replication cost model (input checkpointing, output comparison, recovery
  re-executions),
* an inter-node network for the distributed benchmarks.

Two interchangeable executions of the same model exist:
:func:`~repro.simulator.execution.simulate_graph` is the scalar reference
loop, and :func:`~repro.simulator.fastpath.simulate_graph_fast` is the
vectorized fast path (precomputed per-graph arrays, chunked fault draws) that
produces bit-identical results; :func:`~repro.simulator.fastpath.simulate`
dispatches between them.

The fast path's event loop itself has interchangeable *backends* (pure
Python, an optional numba JIT, a self-compiled C kernel — see
:mod:`repro.simulator.backend`), all bit-identical, selected via
``$REPRO_SIM_BACKEND``; and
:func:`~repro.simulator.fastpath.simulate_compiled_batch` replays a whole
batch of fault seeds over shared replay arrays in one kernel invocation.
"""

from repro.simulator.machine import MachineSpec, shared_memory_node, marenostrum_cluster
from repro.simulator.costs import ReplicationCostModel
from repro.simulator.engine import EventQueue
from repro.simulator.execution import (
    SimulatedTaskRecord,
    SimulationConfig,
    SimulationResult,
    simulate_graph,
)
from repro.simulator.fastpath import (
    SimGraphCache,
    simulate,
    simulate_compiled,
    simulate_compiled_batch,
    simulate_graph_fast,
)

__all__ = [
    "EventQueue",
    "MachineSpec",
    "ReplicationCostModel",
    "SimGraphCache",
    "SimulatedTaskRecord",
    "SimulationConfig",
    "SimulationResult",
    "marenostrum_cluster",
    "shared_memory_node",
    "simulate",
    "simulate_compiled",
    "simulate_compiled_batch",
    "simulate_graph",
    "simulate_graph_fast",
]
