"""Replication cost model.

The fault-free overhead of the paper's design comes from three places: taking
the input checkpoint, creating/scheduling the replica descriptor, and the
end-of-task output comparison.  The App_FIT decision itself is "a single
condition and about 50 multiplication and addition instructions" — effectively
free — but it is modelled anyway so the ablation benchmarks can show it is
negligible, as the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.task import TaskDescriptor
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ReplicationCostModel:
    """Per-task costs of the replication machinery (all in seconds / bytes)."""

    #: Bandwidth of copying task inputs into the safe checkpoint store.
    checkpoint_bandwidth_Bps: float = 20e9
    #: Fixed cost of taking one checkpoint (allocation, bookkeeping).
    checkpoint_latency_s: float = 1e-6
    #: Bandwidth of the end-of-task output comparison (bitwise compare streams
    #: both buffers, hence roughly half the copy bandwidth).
    compare_bandwidth_Bps: float = 25e9
    #: Fixed cost of one comparison.
    compare_latency_s: float = 5e-7
    #: Cost of duplicating and scheduling one task descriptor.
    replica_creation_s: float = 1e-6
    #: Cost of evaluating the App_FIT condition for one task.
    decision_s: float = 5e-8
    #: Fixed cost of restoring a checkpoint (on top of the copy itself).
    restore_latency_s: float = 1e-6
    #: Cost of the three-way majority vote, per byte of output.
    vote_bandwidth_Bps: float = 15e9

    def __post_init__(self) -> None:
        check_positive(self.checkpoint_bandwidth_Bps, "checkpoint_bandwidth_Bps")
        check_non_negative(self.checkpoint_latency_s, "checkpoint_latency_s")
        check_positive(self.compare_bandwidth_Bps, "compare_bandwidth_Bps")
        check_non_negative(self.compare_latency_s, "compare_latency_s")
        check_non_negative(self.replica_creation_s, "replica_creation_s")
        check_non_negative(self.decision_s, "decision_s")
        check_non_negative(self.restore_latency_s, "restore_latency_s")
        check_positive(self.vote_bandwidth_Bps, "vote_bandwidth_Bps")

    # -- per-task cost queries ---------------------------------------------------

    def checkpoint_time(self, task: TaskDescriptor) -> float:
        """Seconds to checkpoint the task's inputs."""
        return self.checkpoint_latency_s + task.input_bytes / self.checkpoint_bandwidth_Bps

    def restore_time(self, task: TaskDescriptor) -> float:
        """Seconds to restore the task's inputs from the checkpoint."""
        return self.restore_latency_s + task.input_bytes / self.checkpoint_bandwidth_Bps

    def compare_time(self, task: TaskDescriptor) -> float:
        """Seconds for the end-of-task comparison of original vs replica outputs."""
        return self.compare_latency_s + task.output_bytes / self.compare_bandwidth_Bps

    def vote_time(self, task: TaskDescriptor) -> float:
        """Seconds for the three-way majority vote after a re-execution."""
        return self.compare_latency_s + task.output_bytes / self.vote_bandwidth_Bps

    def replication_setup_time(self, task: TaskDescriptor) -> float:
        """Checkpoint + replica-descriptor creation, charged before execution."""
        return self.checkpoint_time(task) + self.replica_creation_s

    def protected_overhead_estimate(self, task: TaskDescriptor) -> float:
        """Fault-free per-task overhead when the task is replicated."""
        return self.replication_setup_time(task) + self.compare_time(task) + self.decision_s

    def unprotected_overhead_estimate(self, task: TaskDescriptor) -> float:
        """Per-task overhead when the task is *not* replicated (just the decision)."""
        return self.decision_s
