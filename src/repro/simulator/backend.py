"""Simulator loop backends: pure Python, optional numba JIT, self-built C kernel.

The compiled-graph replay loop in :mod:`repro.simulator.fastpath` is pure
Python and stays the *reference* — every other backend must be bit-identical
to it, which the equivalence suite asserts.  This module provides the faster
executions of the same loop:

``python``
    The fastpath's own scalar loops.  Always available; the fallback.
``cext``
    ``_simkernel.c`` compiled on first use with the system C compiler
    (``-O2 -ffp-contract=off``, no Python headers needed) and driven through
    :mod:`ctypes`.  The shared object is cached under
    ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/kernels``) keyed by the
    source hash, so later runs only ``dlopen`` it.
``numba``
    The nopython twin in :mod:`repro.simulator._kernel_py`, JIT-compiled when
    numba is installed.  numba stays an optional dependency (``pip install
    repro-appfit[numba]``); when it is absent this backend reports
    unavailable and selection falls through.
``pykernel``
    The numba twin executed as plain Python.  Far slower than the fastpath —
    it exists so the twin's semantics are pinned by tests even on machines
    without numba.  Never chosen automatically.

Selection: ``REPRO_SIM_BACKEND`` picks one of ``auto|python|numba|cext``
(``pykernel`` is accepted for debugging).  ``auto`` — the default — prefers
``cext`` and then ``numba``: importing numba costs over a second of startup,
which would dwarf the loop savings in short CLI runs, while the cached C
kernel loads in microseconds.  Forcing an unavailable backend raises with the
recorded reason.
"""

from __future__ import annotations

import ctypes
import hashlib
import importlib.util
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Environment variable naming the backend to use.
BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Environment variable overriding the compiled-kernel cache directory.
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

#: Environment variable overriding the C compiler (default: cc/gcc/clang).
CC_ENV = "REPRO_CC"

_KERNEL_SOURCE = os.path.join(os.path.dirname(__file__), "_simkernel.c")

#: Return codes of the kernels (matching ``_simkernel.c``).
_ERRORS = {
    1: "kernel workspace allocation failed",
    2: "event heap overflow (kernel bug)",
    3: "pre-drawn uniform block exhausted (draw-bound bug)",
}


class BackendUnavailable(RuntimeError):
    """Raised when a requested backend cannot run on this machine."""


#: Positional metadata passed to every kernel ahead of the arrays:
#: (n, n_nodes, cores_per_node, spares_per_node, net_latency, net_bandwidth,
#:  contention, collect, p_crash, p_sdc, decision_s).
Meta = Tuple[int, int, int, int, float, float, int, int, float, float, float]


class KernelBackend:
    """A compiled execution of the replay loop.

    ``run_batch`` replays ``n_lanes`` seed lanes: ``uniforms`` holds one
    pre-drawn row per lane, outputs are written at lane offsets.  Returns the
    kernel status code (0 = OK).
    """

    name: str = "python"

    def run_batch(
        self,
        n_lanes: int,
        meta: Meta,
        arrays: Tuple[np.ndarray, ...],
        uniforms: np.ndarray,
        n_uniforms: int,
        out_scalars: np.ndarray,
        out_counts: np.ndarray,
        record_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> int:
        raise NotImplementedError


class CExtBackend(KernelBackend):
    """ctypes driver over the self-compiled ``_simkernel.c`` shared object."""

    name = "cext"

    def __init__(self) -> None:
        self._lib = _load_kernel_lib()
        i64 = ctypes.c_longlong
        f64 = ctypes.c_double
        i32 = ctypes.c_int
        ptr = ctypes.c_void_p
        fn = self._lib.simulate_kernel_batch
        fn.restype = i32
        fn.argtypes = (
            [i64, i64, i64, i64, i64, f64, f64, i32, i32, f64, f64, f64]
            + [ptr] * 10  # replay arrays
            + [ptr, ptr, ptr, ptr, ptr, ptr]  # csr + degrees + placement + flags
            + [ptr, i64]  # uniforms
            + [ptr, ptr]  # out scalars/counts
            + [ptr, ptr, ptr, ptr]  # record arrays
        )
        self._fn = fn

    def run_batch(self, n_lanes, meta, arrays, uniforms, n_uniforms, out_scalars, out_counts, record_arrays):
        (n, n_nodes, cores, spares, net_lat, net_bw, contention, collect, p_crash, p_sdc, decision_s) = meta
        def p(a: np.ndarray):
            return a.ctypes.data_as(ctypes.c_void_p)
        return self._fn(
            n_lanes, n, n_nodes, cores, spares, net_lat, net_bw,
            contention, collect, p_crash, p_sdc, decision_s,
            *[p(a) for a in arrays],
            p(uniforms), n_uniforms,
            p(out_scalars), p(out_counts),
            *[p(a) for a in record_arrays],
        )


class _PyKernelBackend(KernelBackend):
    """The numba twin, lane-looped — plain Python (``pykernel``) by default."""

    name = "pykernel"

    def __init__(self) -> None:
        from repro.simulator._kernel_py import kernel

        self._kernel = kernel

    def run_batch(self, n_lanes, meta, arrays, uniforms, n_uniforms, out_scalars, out_counts, record_arrays):
        (n, n_nodes, cores, spares, net_lat, net_bw, contention, collect, p_crash, p_sdc, decision_s) = meta
        start_at, finish_at, overhead_at, recovery_at = record_arrays
        for lane in range(n_lanes):
            rec = lane if collect else 0
            rc = self._kernel(
                n, n_nodes, cores, spares, net_lat, net_bw,
                contention, collect, p_crash, p_sdc, decision_s,
                *arrays,
                uniforms[lane], n_uniforms,
                out_scalars[lane], out_counts[lane],
                start_at[rec], finish_at[rec], overhead_at[rec], recovery_at[rec],
            )
            if rc != 0:
                return rc
        return 0


class NumbaBackend(_PyKernelBackend):
    """The numba-JITed twin (optional dependency)."""

    name = "numba"

    def __init__(self) -> None:
        if importlib.util.find_spec("numba") is None:
            raise BackendUnavailable("numba is not installed (pip install repro-appfit[numba])")
        import numba

        from repro.simulator._kernel_py import kernel

        # cache=True persists the machine code next to _kernel_py.py so the
        # JIT cost is paid once per interpreter/ABI, not once per process.
        self._kernel = numba.njit(cache=True, fastmath=False)(kernel)


class PythonBackend(KernelBackend):
    """Marker backend: the fastpath's scalar loops handle execution."""

    name = "python"

    def run_batch(self, *args, **kwargs):  # pragma: no cover - never called
        raise RuntimeError("the python backend has no kernel; fastpath runs the scalar loops")


# -- C kernel build ---------------------------------------------------------


def kernel_cache_dir() -> str:
    """Directory holding compiled kernel shared objects."""
    override = os.environ.get(KERNEL_CACHE_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "kernels")


def _find_cc() -> Optional[str]:
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override) or (override if os.path.exists(override) else None)
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def kernel_lib_path() -> str:
    """Path of the compiled kernel for the current source (not necessarily built)."""
    with open(_KERNEL_SOURCE, "rb") as fh:
        digest = hashlib.sha256(fh.read()).hexdigest()[:16]
    return os.path.join(kernel_cache_dir(), f"simkernel-{digest}.so")


def build_kernel_lib(verbose: bool = False) -> str:
    """Compile ``_simkernel.c`` into the kernel cache; returns the .so path.

    Idempotent: if the shared object for the current source hash exists it is
    reused.  ``-ffp-contract=off`` forbids multiply-add contraction so the
    compiler cannot alter float results (the loop has no multiplies, but the
    flag makes the bit-identity guarantee explicit); ``-march`` is left at the
    default for the same reason.
    """
    target = kernel_lib_path()
    if os.path.exists(target):
        return target
    cc = _find_cc()
    if cc is None:
        raise BackendUnavailable("no C compiler found (set REPRO_CC or install gcc/clang)")
    os.makedirs(os.path.dirname(target), exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=os.path.dirname(target))
    os.close(fd)
    cmd = [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off", "-o", tmp, _KERNEL_SOURCE]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise BackendUnavailable(
                f"kernel compilation failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
            )
        os.replace(tmp, target)  # atomic: concurrent builders race benignly
    finally:
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass
    if verbose:  # pragma: no cover - debugging aid
        print(f"built {target} with {cc}")
    return target


def _load_kernel_lib() -> ctypes.CDLL:
    try:
        return ctypes.CDLL(build_kernel_lib())
    except OSError as exc:  # corrupt cache entry: rebuild once
        path = kernel_lib_path()
        try:
            os.remove(path)
        except OSError:
            pass
        try:
            return ctypes.CDLL(build_kernel_lib())
        except OSError:
            raise BackendUnavailable(f"cannot load compiled kernel {path}: {exc}")


# -- selection --------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "python": PythonBackend,
    "cext": CExtBackend,
    "numba": NumbaBackend,
    "pykernel": _PyKernelBackend,
}

#: Backends tried by ``auto``, in order.  cext first: a cached .so loads in
#: microseconds while importing numba costs >1s of startup per process.
_AUTO_ORDER = ("cext", "numba")

_instances: Dict[str, KernelBackend] = {}
_failures: Dict[str, str] = {}


def _get_backend(name: str) -> KernelBackend:
    inst = _instances.get(name)
    if inst is not None:
        return inst
    if name in _failures:
        raise BackendUnavailable(_failures[name])
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown simulator backend {name!r} (expected auto|{'|'.join(_FACTORIES)})")
    try:
        inst = factory()
    except BackendUnavailable as exc:
        _failures[name] = str(exc)
        raise
    _instances[name] = inst
    return inst


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """The backend to use: explicit ``name``, else ``$REPRO_SIM_BACKEND``, else auto.

    ``auto`` falls back to the pure-Python loops when no compiled backend is
    available; a *named* backend that is unavailable raises
    :class:`BackendUnavailable` with the reason.
    """
    name = name or os.environ.get(BACKEND_ENV) or "auto"
    name = name.strip().lower()
    if name == "auto":
        for cand in _AUTO_ORDER:
            try:
                return _get_backend(cand)
            except BackendUnavailable:
                continue
        return _get_backend("python")
    return _get_backend(name)


def backend_status() -> Dict[str, str]:
    """Availability of every backend, for diagnostics (``repro targets``-style)."""
    status: Dict[str, str] = {}
    for name in _FACTORIES:
        try:
            _get_backend(name)
            status[name] = "available"
        except BackendUnavailable as exc:
            status[name] = f"unavailable: {exc}"
    return status


def reset_backends() -> None:
    """Forget memoised backends/failures (tests that change the environment)."""
    _instances.clear()
    _failures.clear()


def kernel_error(rc: int) -> str:
    """Human-readable message of a nonzero kernel status code."""
    return _ERRORS.get(rc, f"unknown kernel error {rc}")
