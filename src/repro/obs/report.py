"""Trace analysis: per-site percentiles, slowest cells, Chrome trace export.

The read side of :mod:`repro.obs.trace`, behind ``repro trace``:

* :func:`summarize_trace` — per-site latency percentiles (nearest-rank over
  the recorded span durations) plus the slowest compute cells, rendered as
  the ``repro trace summarize`` tables;
* :func:`export_chrome_trace` — the span log as a Chrome trace-event JSON
  document (the ``traceEvents`` array format), loadable in Perfetto or
  ``chrome://tracing``: one process row per worker identity, complete
  (``"ph": "X"``) events for spans, instant (``"ph": "i"``) events for retry
  marks and — merged from the chaos journal — injected faults.

Both operate on the parsed record list from :func:`read_trace`, so tests can
synthesise traces without touching the filesystem.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import trace_path

#: Span sites whose ``key`` identifies a result-store cell (the slowest-cells
#: table ranks these).
CELL_SITE = "cell.compute"


def read_trace(root: str) -> List[Dict[str, Any]]:
    """Every parseable record of a cache root's trace log, in file order.

    A torn tail line (a worker killed mid-append) is skipped, the same
    tolerance the chaos journal reader applies.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(trace_path(root), "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if isinstance(doc, dict):
                    records.append(doc)
    except OSError:
        pass
    return records


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 100])."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    rank = max(1, min(len(sorted_values), math.ceil(q / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def summarize_trace(records: List[Dict[str, Any]], top: int = 10) -> Dict[str, Any]:
    """Aggregate one trace: per-site stats plus the slowest compute cells."""
    durations: Dict[str, List[float]] = {}
    marks: Dict[str, int] = {}
    cells: List[Dict[str, Any]] = []
    for rec in records:
        if rec.get("kind") == "mark":
            marks[rec.get("site", "?")] = marks.get(rec.get("site", "?"), 0) + 1
            continue
        if rec.get("kind") != "span":
            continue
        site = rec.get("site", "?")
        dur = float(rec.get("dur_s", 0.0))
        durations.setdefault(site, []).append(dur)
        if site == CELL_SITE:
            cells.append(rec)
    sites: Dict[str, Dict[str, Any]] = {}
    for site, values in durations.items():
        values = sorted(values)
        sites[site] = {
            "count": len(values),
            "total_s": sum(values),
            "p50_s": percentile(values, 50),
            "p90_s": percentile(values, 90),
            "p99_s": percentile(values, 99),
            "max_s": values[-1],
        }
    cells.sort(key=lambda r: float(r.get("dur_s", 0.0)), reverse=True)
    slowest = [
        {
            "key": str(rec.get("key", "?"))[:12],
            "dur_s": float(rec.get("dur_s", 0.0)),
            "worker": rec.get("worker", f"pid-{rec.get('pid', '?')}"),
            "kind": rec.get("cell_kind", "?"),
            "benchmark": rec.get("benchmark", "?"),
            "attempt": rec.get("attempt", 0),
        }
        for rec in cells[: max(0, top)]
    ]
    return {"sites": sites, "marks": marks, "slowest_cells": slowest}


def render_summary(summary: Dict[str, Any]) -> str:
    """The ``repro trace summarize`` text: a site table plus slowest cells."""
    lines: List[str] = []
    sites = summary["sites"]
    if not sites:
        return "trace: no span records\n"
    header = (
        f"{'site':<22} {'count':>7} {'total_s':>9} {'p50_ms':>9} "
        f"{'p90_ms':>9} {'p99_ms':>9} {'max_ms':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for site in sorted(sites):
        s = sites[site]
        lines.append(
            f"{site:<22} {s['count']:>7} {s['total_s']:>9.3f} "
            f"{s['p50_s'] * 1e3:>9.2f} {s['p90_s'] * 1e3:>9.2f} "
            f"{s['p99_s'] * 1e3:>9.2f} {s['max_s'] * 1e3:>9.2f}"
        )
    if summary["marks"]:
        rendered = ", ".join(
            f"{site} x{n}" for site, n in sorted(summary["marks"].items())
        )
        lines.append(f"\nmarks: {rendered}")
    if summary["slowest_cells"]:
        lines.append("\nslowest cells (site cell.compute):")
        sub = f"{'key':<14} {'benchmark':<12} {'kind':<24} {'dur_ms':>9}  worker"
        lines.append(sub)
        lines.append("-" * len(sub))
        for cell in summary["slowest_cells"]:
            lines.append(
                f"{cell['key']:<14} {str(cell['benchmark']):<12} "
                f"{str(cell['kind']):<24} {cell['dur_s'] * 1e3:>9.2f}  {cell['worker']}"
            )
    return "\n".join(lines) + "\n"


def _row_of(rec: Dict[str, Any]) -> str:
    """The worker row a record belongs to (worker identity, else its pid)."""
    worker = rec.get("worker")
    if worker:
        return str(worker)
    return f"pid-{rec.get('pid', '?')}"


def export_chrome_trace(
    records: List[Dict[str, Any]],
    chaos_events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Convert trace records to a Chrome trace-event document.

    Layout: each worker identity becomes one *process* row (named via
    ``"ph": "M"`` ``process_name`` metadata), threads within it keep their
    (compacted) thread ids.  Spans become complete events (``"ph": "X"``,
    microsecond ``ts``/``dur``); retry marks and chaos injections become
    instant events (``"ph": "i"``) so they show as notches on the timeline.
    The document loads in Perfetto and ``chrome://tracing`` as-is.
    """
    rows: Dict[str, int] = {}
    tids: Dict[Tuple[str, Any], int] = {}
    events: List[Dict[str, Any]] = []

    def _pid(row: str) -> int:
        pid = rows.get(row)
        if pid is None:
            pid = len(rows) + 1
            rows[row] = pid
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": row},
                }
            )
        return pid

    def _tid(row: str, raw: Any) -> int:
        key = (row, raw)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == row]) + 1
            tids[key] = tid
        return tid

    for rec in records:
        row = _row_of(rec)
        pid = _pid(row)
        tid = _tid(row, rec.get("tid"))
        args = {
            k: v
            for k, v in rec.items()
            if k not in ("kind", "site", "t", "dur_s", "pid", "tid", "id", "parent")
        }
        ts = float(rec.get("t", 0.0)) * 1e6
        if rec.get("kind") == "span":
            events.append(
                {
                    "name": rec.get("site", "?"),
                    "cat": "span",
                    "ph": "X",
                    "ts": ts,
                    "dur": float(rec.get("dur_s", 0.0)) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif rec.get("kind") == "mark":
            events.append(
                {
                    "name": rec.get("site", "?"),
                    "cat": "mark",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    for injected in chaos_events or ():
        pid = _pid("chaos")
        events.append(
            {
                "name": f"chaos:{injected.get('site', '?')}",
                "cat": "chaos",
                "ph": "i",
                "s": "g",
                "ts": float(injected.get("t", 0.0)) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": {
                    "key": injected.get("key"),
                    "n": injected.get("n"),
                    "worker_pid": injected.get("pid"),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_trace_file(root: str, out_path: str) -> int:
    """Write a cache root's trace as a Chrome trace file; returns event count.

    Chaos injections journalled under the same root are merged in as instant
    events on a dedicated ``chaos`` row.
    """
    from repro.serve.chaos import read_injected_log

    doc = export_chrome_trace(read_trace(root), read_injected_log(root))
    directory = os.path.dirname(os.path.abspath(out_path))
    os.makedirs(directory, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    return len(doc["traceEvents"])
