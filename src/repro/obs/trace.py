"""Structured span tracing: JSONL records of where each run spends its time.

A *span* is one timed region at a named **site** — ``cell.compute``,
``cell.claim``, ``graph.load``, ``http.request`` — optionally tied to a
result-store ``key`` and carrying free-form attributes (worker identity,
attempt ordinal, backend name).  Span records are appended, one atomic JSON
line each, to ``<cache root>/obs/trace.jsonl``; a *mark* is the zero-duration
variant (retry markers, chaos annotations).

Activation is purely environmental, exactly like the chaos engine
(:mod:`repro.serve.chaos`): ``REPRO_TRACE=off|light|full`` selects the mode,
so pool workers and ``repro serve --worker`` processes inherit the parent's
configuration with no extra plumbing.  ``light`` records only the coarse
cell-lifecycle sites (one or two lines per computed cell — the <2% overhead
budget on the fig5 smoke); ``full`` records every site.  A misspelled mode
fails loudly (``ValueError``), never silently traces nothing.

Tracing is **observation-only** by construction: the tracer writes to the
``obs/`` namespace of the cache root and nothing else — it never touches
payloads, spec hashing, or artifact composition, which is why ``full`` runs
produce byte-identical goldens, store records, and serve artifacts (pinned by
``tests/test_obs.py`` and ``tools/check_obs_smoke.py``).

Span records look like::

    {"kind": "span", "site": "cell.compute", "key": "ab12...", "id": "4f2.1.7",
     "parent": "4f2.1.6", "t": 1723000000.123, "dur_s": 0.0141,
     "pid": 1266, "tid": 5, "worker": "host-1266-ab12", "attempt": 0}

``t`` is a wall-clock start timestamp (cross-process alignable); ``dur_s`` is
measured on the monotonic clock.  ``parent`` is the id of the innermost open
span on the same thread when the span began, so claim → compute → put chains
reconstruct without any global state.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.compiled import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

#: Environment variable selecting the trace mode (unset/empty = off).
TRACE_ENV = "REPRO_TRACE"

#: The accepted ``REPRO_TRACE`` values.
TRACE_MODES = ("off", "light", "full")

#: Where trace records live, under the cache root.
OBS_SUBDIR = "obs"
TRACE_LOG_NAME = "trace.jsonl"

#: Environment variable capping the live trace journal size (bytes).  When an
#: append would push ``trace.jsonl`` past the cap, the journal is atomically
#: renamed to a ``trace-<ns>-<pid>.jsonl`` segment and a fresh journal starts.
#: ``repro cache gc`` sweeps rotated segments; ``<= 0`` disables rotation.
TRACE_MAX_BYTES_ENV = "REPRO_TRACE_MAX_BYTES"

#: Default journal cap: large enough that a full nightly sweep fits in one
#: segment, small enough that a forgotten ``REPRO_TRACE=full`` service loop
#: cannot fill a disk before gc runs.
DEFAULT_TRACE_MAX_BYTES = 64 * 1024 * 1024

#: Rotated segments are ``trace-<ns>-<pid>.jsonl`` (the prefix the obs
#: maintenance sweep matches; the live journal never matches it).
ROTATED_TRACE_PREFIX = "trace-"


def trace_max_bytes() -> int:
    """The journal rotation cap (``$REPRO_TRACE_MAX_BYTES``; ``<= 0`` = off)."""
    raw = os.environ.get(TRACE_MAX_BYTES_ENV, "").strip()
    if not raw:
        return DEFAULT_TRACE_MAX_BYTES
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{TRACE_MAX_BYTES_ENV}={raw!r} is not an integer byte count"
        ) from None

#: Sites recorded in ``light`` mode — the coarse cell lifecycle only.  Every
#: other site (claim/put bookkeeping, graph loads, simulator dispatch, HTTP)
#: requires ``full``.  Unknown sites default to ``full`` so a new span site is
#: never accidentally promoted into the light overhead budget.
LIGHT_SITES = frozenset({"engine.map", "cell", "cell.compute", "cell.retry"})


def parse_trace_mode(text: str) -> str:
    """Validate one ``REPRO_TRACE`` value; a typo must fail loudly."""
    mode = text.strip().lower()
    if mode == "":
        return "off"
    if mode not in TRACE_MODES:
        raise ValueError(
            f"unknown {TRACE_ENV} mode {text!r}; known: {', '.join(TRACE_MODES)}"
        )
    return mode


def trace_mode() -> str:
    """The process's trace mode, resolved from ``REPRO_TRACE``."""
    return parse_trace_mode(os.environ.get(TRACE_ENV, ""))


def trace_path(root: str) -> str:
    """The trace log of a cache root (``<root>/obs/trace.jsonl``)."""
    return os.path.join(os.path.abspath(root), OBS_SUBDIR, TRACE_LOG_NAME)


# ---------------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------------

#: Process-wide span ordinal source (combined with pid + a per-thread ordinal
#: into ids that are unique across workers without any coordination).
_SPAN_COUNTER = itertools.count(1)


class Span:
    """One open timed region; records itself (one JSONL line) on exit.

    Returned by :meth:`Tracer.span` as a context manager.  Attributes added
    via :meth:`set` land in the record; :meth:`cancel` discards the span
    entirely (used for non-events such as a lost lease-claim race, which
    would otherwise flood the log once per poll).
    """

    __slots__ = ("tracer", "site", "key", "attrs", "id", "parent", "t", "_t0", "_cancelled")

    def __init__(self, tracer: "Tracer", site: str, key: Optional[str], attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.site = site
        self.key = key
        self.attrs = attrs
        self.id = f"{os.getpid():x}.{next(_SPAN_COUNTER):x}"
        self.parent: Optional[str] = None
        self.t = 0.0
        self._t0 = 0.0
        self._cancelled = False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the record (e.g. the resolved backend name)."""
        self.attrs.update(attrs)

    def cancel(self) -> None:
        """Discard this span: nothing is written when the block exits."""
        self._cancelled = True

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent = stack[-1].id if stack else None
        stack.append(self)
        self.t = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_s = time.perf_counter() - self._t0
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self._cancelled:
            return
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.tracer._write_span(self, dur_s)


class _NullSpan:
    """The do-nothing span used when tracing is off or the site is filtered.

    Call sites hold a single code path (``with trace_span(...) as span:``)
    whether or not anything records; the null span accepts the same calls and
    ignores them.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        """Ignore attributes (nothing will be recorded)."""

    def cancel(self) -> None:
        """Nothing to discard."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The shared null span (stateless, so one instance serves every call site).
NULL_SPAN = _NullSpan()


class Tracer:
    """Appends span/mark records for one (mode, cache root) pair.

    One tracer per process per root, shared by every thread (see
    :func:`active_tracer`); the span parent stack is thread-local, so spans
    on different worker threads nest independently.  Writes are single
    ``write()`` calls of one line each in append mode — the same atomic
    discipline as the chaos journal and the job event journals — so
    concurrent workers never interleave bytes.
    """

    def __init__(self, mode: str, root: str) -> None:
        self.mode = mode
        self.root = os.path.abspath(root)
        self.path = trace_path(self.root)
        self._local = threading.local()
        self._dir_ready = False

    def _stack(self) -> List[Span]:
        """This thread's open-span stack (parent resolution)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def enabled_for(self, site: str) -> bool:
        """Whether this mode records a site (light filters to the cell core)."""
        return self.mode == "full" or site in LIGHT_SITES

    def span(self, site: str, key: Optional[str] = None, **attrs: Any):
        """Open one span; returns a context manager (null when filtered)."""
        if not self.enabled_for(site):
            return NULL_SPAN
        return Span(self, site, key, {k: v for k, v in attrs.items() if v is not None})

    def mark(self, site: str, key: Optional[str] = None, **attrs: Any) -> None:
        """Record one instant event (retry/chaos markers in the export)."""
        if not self.enabled_for(site):
            return
        # Attributes first, reserved fields second: an attr named like a
        # record field ("kind", "t", ...) can never corrupt the envelope.
        doc: Dict[str, Any] = {k: v for k, v in attrs.items() if v is not None}
        doc.update(
            {
                "kind": "mark",
                "site": site,
                "t": time.time(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
        )
        if key is not None:
            doc["key"] = key
        self._append(doc)

    def _write_span(self, span: Span, dur_s: float) -> None:
        """Serialise one finished span (called from ``Span.__exit__``)."""
        # Attributes first, reserved fields second (see :meth:`mark`).
        doc: Dict[str, Any] = dict(span.attrs)
        doc.update(
            {
                "kind": "span",
                "site": span.site,
                "id": span.id,
                "t": span.t,
                "dur_s": round(dur_s, 9),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
        )
        if span.key is not None:
            doc["key"] = span.key
        if span.parent is not None:
            doc["parent"] = span.parent
        self._append(doc)
        # Feed the per-site latency histogram so /metrics sees span timings
        # without a second timing call at every site.
        try:
            from repro.obs.metrics import observe_span

            observe_span(span.site, dur_s)
        except ImportError:  # pragma: no cover - metrics layer absent
            pass

    def _append(self, doc: Dict[str, Any]) -> None:
        """One atomic single-line append; I/O failures never break the run."""
        line = json.dumps(doc, sort_keys=True) + "\n"
        try:
            if not self._dir_ready:
                os.makedirs(os.path.dirname(self.path), exist_ok=True)
                self._dir_ready = True
            self._maybe_rotate(len(line))
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
        except OSError:  # pragma: no cover - tracing is observability only
            pass

    def _maybe_rotate(self, incoming: int) -> None:
        """Rotate the journal when one more line would exceed the size cap.

        The live file is renamed (atomic on POSIX) to a uniquely named
        segment; a concurrent appender either lands its line just before the
        rename — the segment keeps it — or re-opens the fresh journal on its
        next append.  A lost rotation race surfaces as ``FileNotFoundError``
        from ``os.replace`` and is swallowed by :meth:`_append`'s handler:
        the other process already moved the file.
        """
        cap = trace_max_bytes()
        if cap <= 0:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return  # no journal yet — nothing to rotate
        if size <= 0 or size + incoming <= cap:
            return
        rotated = os.path.join(
            os.path.dirname(self.path),
            f"{ROTATED_TRACE_PREFIX}{time.time_ns():d}-{os.getpid()}.jsonl",
        )
        os.replace(self.path, rotated)


def trace_span(
    tracer: Optional[Tracer], site: str, key: Optional[str] = None, **attrs: Any
):
    """``tracer.span(...)`` tolerant of ``tracer is None`` (tracing off).

    The standard call shape at instrumentation sites::

        with trace_span(self._tracer, "cell.compute", key, attempt=n) as span:
            ...
            span.set(outcome="computed")
    """
    if tracer is None:
        return NULL_SPAN
    return tracer.span(site, key, **attrs)


# ---------------------------------------------------------------------------------
# process-wide activation (one tracer per (mode, cache root))
# ---------------------------------------------------------------------------------

_DEFAULT_ROOT: Dict[str, Optional[str]] = {"root": None}

_tracers: Dict[Tuple[str, str], Tracer] = {}
_tracers_lock = threading.Lock()


def configure_trace_root(root: Optional[str]) -> None:
    """Pin the default cache root tracer lookups resolve against.

    The CLI calls this with ``--cache-dir`` (and the pool-worker initialiser
    with the parent's resolved root) so span sites with no store in hand —
    simulator backend dispatch, compiled-graph loads — log to the same
    ``obs/trace.jsonl`` the cell lifecycle does.  ``None`` falls back to
    ``REPRO_CACHE_DIR`` / the default cache dir.
    """
    _DEFAULT_ROOT["root"] = root


def active_tracer(root: Optional[str] = None) -> Optional[Tracer]:
    """The process's tracer for a cache root, or ``None`` (tracing off).

    Mirrors :func:`repro.serve.chaos.active_chaos`: activation is purely
    environmental (``REPRO_TRACE``), tracers are cached per (mode, root),
    and every thread in the process shares one instance.
    """
    mode = trace_mode()
    if mode == "off":
        return None
    if root is None:
        root = _DEFAULT_ROOT["root"] or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    cache_key = (mode, os.path.abspath(root))
    with _tracers_lock:
        tracer = _tracers.get(cache_key)
        if tracer is None:
            tracer = Tracer(mode, root)
            _tracers[cache_key] = tracer
        return tracer
