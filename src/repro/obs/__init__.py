"""Observability: structured tracing, a metrics registry, and trace tooling.

The first layer that sees the whole system at once.  Three pieces, all
zero-dependency (stdlib only), all strictly *observation-only* — with every
knob enabled, goldens, store keys, and serve artifacts stay byte-identical:

* :mod:`repro.obs.trace` — an explicit span API (``span(site, key, ...)``)
  producing JSONL span records under ``<cache>/obs/trace.jsonl``, enabled by
  ``REPRO_TRACE=off|light|full`` and threaded through the experiment engines'
  cell lifecycles (claim → compute → put → retry), compiled-graph store
  loads, simulator backend dispatch, and serve HTTP request handling.
* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges,
  and fixed-bucket histograms, exported as Prometheus text by the serve
  frontend's ``GET /metrics`` and merged cross-worker from per-worker
  snapshot files (``REPRO_METRICS=off`` disables the exposition).
* :mod:`repro.obs.report` — the ``repro trace summarize|export`` machinery:
  per-site latency percentiles, a slowest-cells table, and a Chrome
  trace-event (Perfetto-loadable) export with worker rows and retry/chaos
  markers.

The span taxonomy, site names, and merge semantics are documented in the
Observability section of ``docs/architecture.md``.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "Tracer": "repro.obs.trace",
    "active_tracer": "repro.obs.trace",
    "trace_span": "repro.obs.trace",
    "trace_mode": "repro.obs.trace",
    "read_trace": "repro.obs.report",
    "summarize_trace": "repro.obs.report",
    "export_chrome_trace": "repro.obs.report",
    "MetricsRegistry": "repro.obs.metrics",
    "registry": "repro.obs.metrics",
    "render_prometheus": "repro.obs.metrics",
    "obs_stats": "repro.obs.maintenance",
    "obs_gc": "repro.obs.maintenance",
    "obs_clear": "repro.obs.maintenance",
}

__getattr__, __dir__ = lazy_exports(
    __name__, _EXPORTS, submodules=("maintenance", "metrics", "report", "trace")
)

__all__ = sorted(_EXPORTS)
