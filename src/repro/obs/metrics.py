"""A process-local metrics registry with Prometheus text exposition.

Counters, gauges, and fixed-bucket histograms — the three instrument shapes a
sweep deployment needs — kept in plain dicts guarded by one lock, so an
increment is a hash lookup plus an add (cheap enough to leave on always;
``REPRO_METRICS=off`` disables only the *exposition*: the ``GET /metrics``
endpoint and the per-worker snapshot files, never the in-process counting).

The registry absorbs the counters that previously lived as scattered
attributes (engine cache hits, lease reclaims, drain retries, quarantines,
chaos injections, supervisor restarts) and adds per-site latency histograms
fed by the tracing layer (:func:`observe_span`).

Cross-worker merge: a worker process periodically publishes its registry as
``<root>/obs/metrics/<owner>.json`` (atomic replace, alongside its liveness
file); the serve frontend renders ``GET /metrics`` from its *own* live
registry plus every snapshot whose pid differs from its own (embedded worker
threads share the frontend's registry, so same-pid snapshots would double
count).  Merge semantics: counters and histogram buckets **sum**, gauges take
the **max** — documented in the Observability section of
``docs/architecture.md``.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Environment variable gating the /metrics exposition and snapshot files.
METRICS_ENV = "REPRO_METRICS"

#: Where worker snapshots live, under the cache root.
METRICS_SUBDIR = os.path.join("obs", "metrics")

#: The Prometheus text exposition content type (``GET /metrics``).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds) — spans from sub-millisecond store reads
#: to multi-second cold cells.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Help strings, declared once so call sites never repeat (or contradict) them.
HELP: Dict[str, str] = {
    "repro_cells_computed_total": "Cells computed (store misses executed).",
    "repro_cells_cached_total": "Cells served from the results store.",
    "repro_cell_retries_total": "Cell attempts that failed and were retried.",
    "repro_cells_quarantined_total": "Cells poisoned after exhausting the attempt budget.",
    "repro_cells_duplicated_total": "Cells recomputed after a lease was lost mid-compute.",
    "repro_lease_reclaims_total": "Expired leases reclaimed from dead or paused workers.",
    "repro_chaos_injections_total": "Faults injected by the chaos engine, by site.",
    "repro_worker_restarts_total": "Supervised worker threads restarted after a crash.",
    "repro_http_requests_total": "HTTP requests served, by method.",
    "repro_span_duration_seconds": "Span durations from the tracing layer, by site.",
    "repro_cell_compute_seconds": "Wall time of individual cell computations.",
    "repro_uptime_seconds": "Seconds since this process's server started.",
}


def metrics_enabled() -> bool:
    """Whether the /metrics exposition and snapshot files are on (default yes)."""
    return os.environ.get(METRICS_ENV, "").strip().lower() not in (
        "0", "off", "false", "no",
    )


class Counter:
    """A monotonically increasing count (scrapes may only ever see it grow)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative; counters never go down)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        with self._lock:
            self.value += n


class Gauge:
    """A value that can go up and down (queue depth, uptime)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """A fixed-bucket histogram (cumulative ``le`` buckets, Prometheus-style).

    ``observe(v)`` increments every bucket whose upper bound admits ``v``
    *at render time*, not at observe time: internally each bucket counts only
    its own interval and the renderer accumulates, which keeps ``observe``
    O(log n) (a bisect) instead of O(buckets).
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram buckets must be strictly increasing: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        i = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts (the ``le`` semantics), +Inf last."""
        with self._lock:
            out: List[int] = []
            acc = 0
            for c in self.counts:
                acc += c
                out.append(acc)
            return out


#: label tuple -> instrument, per metric family.
_Series = Dict[Tuple[Tuple[str, str], ...], Any]


class MetricsRegistry:
    """All metric families of one process, renderable as Prometheus text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> (type, series dict); type is "counter" | "gauge" | "histogram".
        self._families: Dict[str, Tuple[str, _Series]] = {}

    def _instrument(
        self,
        kind: str,
        name: str,
        labels: Optional[Dict[str, str]],
        factory,
    ) -> Any:
        """The (created-once) instrument of a (name, labels) series."""
        label_key = tuple(sorted((labels or {}).items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}, not {kind}"
                )
            series = family[1]
            instrument = series.get(label_key)
            if instrument is None:
                instrument = factory()
                series[label_key] = instrument
            return instrument

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        """The counter of a (name, labels) series (created on first use)."""
        return self._instrument("counter", name, labels, Counter)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        """The gauge of a (name, labels) series."""
        return self._instrument("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram of a (name, labels) series."""
        return self._instrument("histogram", name, labels, lambda: Histogram(buckets))

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serialisable copy of every family (the merge currency)."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = {
                name: (kind, dict(series))
                for name, (kind, series) in self._families.items()
            }
        for name, (kind, series) in families.items():
            rows = []
            for label_key, inst in sorted(series.items()):
                row: Dict[str, Any] = {"labels": dict(label_key)}
                if kind == "histogram":
                    row["buckets"] = list(inst.buckets)
                    row["counts"] = list(inst.counts)
                    row["sum"] = inst.sum
                    row["count"] = inst.count
                else:
                    row["value"] = inst.value
                rows.append(row)
            out[name] = {"type": kind, "series": rows}
        return out


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold worker snapshots into one: counters/histograms sum, gauges max."""
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        for name, family in snap.items():
            kind = family.get("type")
            target = merged.setdefault(name, {"type": kind, "series": []})
            if target["type"] != kind:
                continue  # a renamed metric across versions; keep the first shape
            index = {
                tuple(sorted(row["labels"].items())): row for row in target["series"]
            }
            for row in family.get("series", ()):
                label_key = tuple(sorted(row.get("labels", {}).items()))
                have = index.get(label_key)
                if have is None:
                    copied = json.loads(json.dumps(row))
                    target["series"].append(copied)
                    index[label_key] = copied
                elif kind == "histogram":
                    if have.get("buckets") == row.get("buckets"):
                        have["counts"] = [
                            a + b for a, b in zip(have["counts"], row["counts"])
                        ]
                        have["sum"] += row.get("sum", 0.0)
                        have["count"] += row.get("count", 0)
                elif kind == "gauge":
                    have["value"] = max(have.get("value", 0.0), row.get("value", 0.0))
                else:
                    have["value"] = have.get("value", 0.0) + row.get("value", 0.0)
    return merged


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without a trailing .0)."""
    if value != value or value in (math.inf, -math.inf):  # pragma: no cover
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    """Render one label set as ``{k="v",...}`` (empty string when none)."""
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(
            k, str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        for k, v in items
    )
    return "{" + rendered + "}"


def render_prometheus(merged: Dict[str, Any]) -> str:
    """Render one merged snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(merged):
        family = merged[name]
        kind = family["type"]
        help_text = HELP.get(name, name.replace("_", " "))
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for row in family["series"]:
            labels = row.get("labels", {})
            if kind == "histogram":
                acc = 0
                for bound, count in zip(row["buckets"], row["counts"]):
                    acc += count
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, ('le', _format_value(bound)))} {acc}"
                    )
                acc += row["counts"][len(row["buckets"])]
                lines.append(f"{name}_bucket{_format_labels(labels, ('le', '+Inf'))} {acc}")
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(row['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} {row['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} {_format_value(row['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------------
# the process singleton + convenience recorders
# ---------------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()
_registry_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide registry (one per process, shared by every thread)."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the process registry with a fresh one (tests only)."""
    global _REGISTRY
    with _registry_lock:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def inc(name: str, n: float = 1.0, **labels: str) -> None:
    """Increment one counter series on the process registry."""
    registry().counter(name, labels or None).inc(n)


def observe(name: str, value: float, **labels: str) -> None:
    """Record one histogram observation on the process registry."""
    registry().histogram(name, labels or None).observe(value)


def observe_span(site: str, dur_s: float) -> None:
    """Feed one finished span into the per-site latency histogram."""
    observe("repro_span_duration_seconds", dur_s, site=site)


# ---------------------------------------------------------------------------------
# cross-worker snapshot files
# ---------------------------------------------------------------------------------


def snapshot_path(root: str, owner: str) -> str:
    """The snapshot file of one worker under a cache root."""
    return os.path.join(os.path.abspath(root), METRICS_SUBDIR, f"{owner}.json")


def write_snapshot(root: str, owner: str) -> None:
    """Atomically publish this process's registry for cross-worker merging.

    Best-effort and gated on ``REPRO_METRICS``: a worker that cannot write
    its snapshot still computes cells; only the merged scrape goes blind to
    it (exactly like a liveness file).
    """
    if not metrics_enabled():
        return
    path = snapshot_path(root, owner)
    doc = {
        "owner": owner,
        "pid": os.getpid(),
        "written_at": time.time(),
        "metrics": registry().snapshot(),
    }
    tmp = path + f".tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - snapshots are observability only
        pass


def read_snapshots(root: str, skip_pid: Optional[int] = None) -> List[Dict[str, Any]]:
    """Every worker snapshot under a cache root (minus ``skip_pid``'s own).

    The frontend passes its own pid: embedded worker threads share the
    frontend's live registry, so their snapshot would double count.
    """
    directory = os.path.join(os.path.abspath(root), METRICS_SUBDIR)
    snaps: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return snaps
    for name in names:
        if not name.endswith(".json") or ".tmp." in name:
            continue
        try:
            with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        if skip_pid is not None and doc.get("pid") == skip_pid:
            continue
        metrics = doc.get("metrics")
        if isinstance(metrics, dict):
            snaps.append(metrics)
    return snaps


def render_merged(root: str, include_local: bool = True) -> str:
    """The Prometheus text of a cache root: local registry + worker snapshots."""
    snaps: List[Dict[str, Any]] = []
    if include_local:
        snaps.append(registry().snapshot())
    snaps.extend(read_snapshots(root, skip_pid=os.getpid() if include_local else None))
    return render_prometheus(merge_snapshots(snaps))
