"""Maintenance of the ``obs/`` namespace: sizes, garbage collection, clear.

The tracing journal and the per-worker metrics snapshots are append-only
observability artifacts under ``<cache root>/obs/``.  Rotation (see
:data:`repro.obs.trace.TRACE_MAX_BYTES_ENV`) caps the *live* journal, but the
rotated segments and the snapshots of long-dead workers still accumulate —
this module gives ``repro cache stats|gc|clear`` the same authority over
``obs/`` that the result and compiled-graph stores already have over theirs.

Policy:

* ``stats`` — counts and byte totals of the live journal, rotated segments,
  and metrics snapshots (surfaced by ``repro cache stats``).
* ``gc`` — removes *all* rotated trace segments (they exist precisely because
  the journal exceeded its budget; the live journal is never touched) and
  metrics snapshots older than the max age (a stale snapshot's worker is
  gone — keeping it would double-count its final counters forever).
* ``clear`` — removes the live journal, every rotated segment, and every
  metrics snapshot.

Everything here is observation-only bookkeeping: removing any of these files
never affects results, store keys, or artifacts.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.obs.metrics import METRICS_SUBDIR
from repro.obs.trace import OBS_SUBDIR, ROTATED_TRACE_PREFIX, TRACE_LOG_NAME


def obs_dir(root: str) -> str:
    """The ``obs/`` namespace of a cache root."""
    return os.path.join(os.path.abspath(root), OBS_SUBDIR)


def rotated_trace_segments(root: str) -> List[str]:
    """Paths of rotated trace segments, oldest first (names embed the epoch)."""
    base = obs_dir(root)
    try:
        names = os.listdir(base)
    except OSError:
        return []
    return sorted(
        os.path.join(base, name)
        for name in names
        if name.startswith(ROTATED_TRACE_PREFIX) and name.endswith(".jsonl")
    )


def metrics_snapshots(root: str) -> List[str]:
    """Paths of per-worker metrics snapshot files, sorted by name."""
    base = os.path.join(os.path.abspath(root), METRICS_SUBDIR)
    try:
        names = os.listdir(base)
    except OSError:
        return []
    return sorted(
        os.path.join(base, name) for name in names if name.endswith(".json")
    )


def _size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _remove(path: str) -> bool:
    try:
        os.remove(path)
        return True
    except OSError:
        return False


def obs_stats(root: str) -> Dict[str, int]:
    """Counts and byte totals of everything living under ``obs/``."""
    trace_file = os.path.join(obs_dir(root), TRACE_LOG_NAME)
    segments = rotated_trace_segments(root)
    snapshots = metrics_snapshots(root)
    return {
        "trace_bytes": _size(trace_file),
        "rotated_segments": len(segments),
        "rotated_bytes": sum(_size(p) for p in segments),
        "metrics_snapshots": len(snapshots),
        "metrics_bytes": sum(_size(p) for p in snapshots),
    }


def obs_gc(root: str, max_age_s: Optional[float] = None) -> Dict[str, int]:
    """Sweep rotated trace segments and stale metrics snapshots.

    Every rotated segment is removed; a metrics snapshot is removed when its
    mtime is older than ``max_age_s`` seconds (``None`` keeps all snapshots —
    age is the only signal that a snapshot's worker is gone, so without a
    threshold none can be called stale).  Returns removal counts plus the
    count of paths that could not be removed (``skipped``).
    """
    removed_segments = 0
    removed_snapshots = 0
    skipped = 0
    for path in rotated_trace_segments(root):
        if _remove(path):
            removed_segments += 1
        else:
            skipped += 1
    if max_age_s is not None:
        import time

        cutoff = time.time() - float(max_age_s)
        for path in metrics_snapshots(root):
            try:
                stale = os.path.getmtime(path) < cutoff
            except OSError:
                continue  # vanished underneath us — already gone
            if not stale:
                continue
            if _remove(path):
                removed_snapshots += 1
            else:
                skipped += 1
    return {
        "rotated_segments": removed_segments,
        "metrics_snapshots": removed_snapshots,
        "skipped": skipped,
    }


def obs_clear(root: str) -> Dict[str, int]:
    """Remove the live journal, all rotated segments, and all snapshots."""
    removed = {"trace": 0, "rotated_segments": 0, "metrics_snapshots": 0}
    trace_file = os.path.join(obs_dir(root), TRACE_LOG_NAME)
    if os.path.exists(trace_file) and _remove(trace_file):
        removed["trace"] = 1
    for path in rotated_trace_segments(root):
        if _remove(path):
            removed["rotated_segments"] += 1
    for path in metrics_snapshots(root):
        if _remove(path):
            removed["metrics_snapshots"] += 1
    return removed
