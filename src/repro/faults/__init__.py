"""Failure model substrate: error classes, FIT rates, fault injection.

The paper's failure model (Section II-A) distinguishes:

* **DCE** — detected and corrected by hardware (invisible to software, modelled
  only as a count);
* **DUE** — detected but uncorrected errors, which crash the affected task;
* **SDC** — silent data corruptions, which let the task finish with wrong
  results.

Per-task failure rates are estimated from the Roadrunner TriBlade FIT
measurements of Michalak et al. scaled proportionally to task argument sizes
(:mod:`repro.faults.rates`); the injector (:mod:`repro.faults.injector`) draws
faults against those rates, or against fixed per-task rates for the
recovery/scalability experiments of Section V-A2.
"""

from repro._lazy import lazy_exports

#: Public name -> defining module, resolved lazily on first access (see
#: :mod:`repro._lazy`): the analysis drivers use the rates/model half and
#: never pay for the injector or corruption helpers.
_EXPORTS = {
    "ErrorClass": "repro.faults.errors",
    "FaultEvent": "repro.faults.errors",
    "TaskCrashError": "repro.faults.errors",
    "SilentDataCorruption": "repro.faults.errors",
    "DEFAULT_CRASH_FIT_PER_32GIB": "repro.faults.rates",
    "DEFAULT_SDC_FIT_PER_32GIB": "repro.faults.rates",
    "ROADRUNNER_REFERENCE_BYTES": "repro.faults.rates",
    "FitRateSpec": "repro.faults.rates",
    "exascale_scenario": "repro.faults.rates",
    "FailureModel": "repro.faults.model",
    "TaskFailureRates": "repro.faults.model",
    "FAULT_SEED_ENV": "repro.faults.injector",
    "FaultInjector": "repro.faults.injector",
    "FaultPlan": "repro.faults.injector",
    "InjectionConfig": "repro.faults.injector",
    "default_root_seed": "repro.faults.injector",
    "corrupt_array": "repro.faults.corruption",
    "flip_random_bit": "repro.faults.corruption",
}

__getattr__, __dir__ = lazy_exports(
    __name__,
    _EXPORTS,
    submodules=("corruption", "errors", "injector", "model", "rates"),
)

__all__ = [
    "DEFAULT_CRASH_FIT_PER_32GIB",
    "DEFAULT_SDC_FIT_PER_32GIB",
    "ErrorClass",
    "FAULT_SEED_ENV",
    "FailureModel",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FitRateSpec",
    "InjectionConfig",
    "ROADRUNNER_REFERENCE_BYTES",
    "SilentDataCorruption",
    "TaskCrashError",
    "TaskFailureRates",
    "corrupt_array",
    "default_root_seed",
    "exascale_scenario",
    "flip_random_bit",
]
