"""Failure model substrate: error classes, FIT rates, fault injection.

The paper's failure model (Section II-A) distinguishes:

* **DCE** — detected and corrected by hardware (invisible to software, modelled
  only as a count);
* **DUE** — detected but uncorrected errors, which crash the affected task;
* **SDC** — silent data corruptions, which let the task finish with wrong
  results.

Per-task failure rates are estimated from the Roadrunner TriBlade FIT
measurements of Michalak et al. scaled proportionally to task argument sizes
(:mod:`repro.faults.rates`); the injector (:mod:`repro.faults.injector`) draws
faults against those rates, or against fixed per-task rates for the
recovery/scalability experiments of Section V-A2.
"""

from repro.faults.errors import (
    ErrorClass,
    FaultEvent,
    TaskCrashError,
    SilentDataCorruption,
)
from repro.faults.rates import (
    DEFAULT_CRASH_FIT_PER_32GIB,
    DEFAULT_SDC_FIT_PER_32GIB,
    ROADRUNNER_REFERENCE_BYTES,
    FitRateSpec,
    exascale_scenario,
)
from repro.faults.model import FailureModel, TaskFailureRates
from repro.faults.injector import (
    FAULT_SEED_ENV,
    FaultInjector,
    FaultPlan,
    InjectionConfig,
    default_root_seed,
)
from repro.faults.corruption import corrupt_array, flip_random_bit

__all__ = [
    "DEFAULT_CRASH_FIT_PER_32GIB",
    "DEFAULT_SDC_FIT_PER_32GIB",
    "ErrorClass",
    "FAULT_SEED_ENV",
    "FailureModel",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FitRateSpec",
    "InjectionConfig",
    "ROADRUNNER_REFERENCE_BYTES",
    "SilentDataCorruption",
    "TaskCrashError",
    "TaskFailureRates",
    "corrupt_array",
    "default_root_seed",
    "exascale_scenario",
    "flip_random_bit",
]
