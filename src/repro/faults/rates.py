"""FIT rate specifications (paper Section IV-A).

The paper takes the DUE (crash) and SDC FIT rates measured for a Roadrunner
TriBlade node by Michalak et al. (accelerated neutron-beam testing) and scales
them *proportionally to data size*: a structure of ``s`` bytes on a node whose
``S`` bytes of memory exhibit ``F`` FIT is assigned ``F * s / S`` FIT.  The
worked example in the paper is:

    crash FIT 2.22e3 for 32 GB  →  2.22 for 32 MB  →  2.22e-3 for 32 KB

The crash constant (2.22e3 per 32 GB) therefore comes straight from the paper.
The paper does not print the SDC constant it used, so
:data:`DEFAULT_SDC_FIT_PER_32GIB` is a documented assumption (same order of
magnitude, lower than the crash rate, as reported for Roadrunner's field data);
every API accepts a custom :class:`FitRateSpec` so experiments can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_non_negative, check_positive

#: Reference memory size the node-level FIT rates correspond to.  The paper's
#: worked example scales 2.22e3 FIT for "32 GBs" down to 2.22 for 32 MB and
#: 2.22e-3 for 32 KB, i.e. it uses decimal prefixes — so the reference is
#: 32e9 bytes, not 32 GiB.
ROADRUNNER_REFERENCE_BYTES: float = 32.0e9

#: Crash (DUE) FIT for the reference 32 GiB, as quoted in the paper.
DEFAULT_CRASH_FIT_PER_32GIB: float = 2.22e3

#: SDC FIT for the reference 32 GiB.  Not printed in the paper; documented
#: assumption (see module docstring).
DEFAULT_SDC_FIT_PER_32GIB: float = 4.44e2


@dataclass(frozen=True)
class FitRateSpec:
    """Per-byte FIT rates for crashes and SDCs, with an error-rate multiplier.

    Attributes
    ----------
    crash_fit_per_ref:
        Crash (DUE) FIT attributed to ``reference_bytes`` of data.
    sdc_fit_per_ref:
        SDC FIT attributed to ``reference_bytes`` of data.
    reference_bytes:
        The memory size the two rates are quoted for.
    multiplier:
        Error-rate scaling factor; ``10.0`` models the paper's pessimistic
        exascale scenario ("error rates in a single node will increase about
        one order of magnitude"), ``5.0`` the moderate one.
    """

    crash_fit_per_ref: float = DEFAULT_CRASH_FIT_PER_32GIB
    sdc_fit_per_ref: float = DEFAULT_SDC_FIT_PER_32GIB
    reference_bytes: float = ROADRUNNER_REFERENCE_BYTES
    multiplier: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.crash_fit_per_ref, "crash_fit_per_ref")
        check_non_negative(self.sdc_fit_per_ref, "sdc_fit_per_ref")
        check_positive(self.reference_bytes, "reference_bytes")
        check_positive(self.multiplier, "multiplier")

    # -- derived per-byte rates ----------------------------------------------

    @property
    def crash_fit_per_byte(self) -> float:
        """Crash FIT per byte of application data (multiplier applied)."""
        return self.multiplier * self.crash_fit_per_ref / self.reference_bytes

    @property
    def sdc_fit_per_byte(self) -> float:
        """SDC FIT per byte of application data (multiplier applied)."""
        return self.multiplier * self.sdc_fit_per_ref / self.reference_bytes

    @property
    def total_fit_per_byte(self) -> float:
        """Combined (crash + SDC) FIT per byte."""
        return self.crash_fit_per_byte + self.sdc_fit_per_byte

    # -- scaling helpers ------------------------------------------------------

    def crash_fit_for_bytes(self, n_bytes: float) -> float:
        """Crash FIT attributed to ``n_bytes`` of data."""
        return self.crash_fit_per_byte * check_non_negative(n_bytes, "n_bytes")

    def sdc_fit_for_bytes(self, n_bytes: float) -> float:
        """SDC FIT attributed to ``n_bytes`` of data."""
        return self.sdc_fit_per_byte * check_non_negative(n_bytes, "n_bytes")

    def total_fit_for_bytes(self, n_bytes: float) -> float:
        """Combined FIT attributed to ``n_bytes`` of data."""
        return self.crash_fit_for_bytes(n_bytes) + self.sdc_fit_for_bytes(n_bytes)

    def scaled(self, multiplier: float) -> "FitRateSpec":
        """A copy with the error-rate multiplier replaced."""
        return replace(self, multiplier=check_positive(multiplier, "multiplier"))

    def at_todays_rates(self) -> "FitRateSpec":
        """A copy with multiplier 1 (today's error rates)."""
        return self.scaled(1.0)


def exascale_scenario(multiplier: float = 10.0, base: FitRateSpec | None = None) -> FitRateSpec:
    """The paper's exascale scenario: today's rates scaled by ``multiplier``.

    ``multiplier=10`` is the pessimistic one-order-of-magnitude increase, and
    ``multiplier=5`` the moderate scenario of Figure 3.
    """
    spec = base if base is not None else FitRateSpec()
    return spec.scaled(multiplier)
