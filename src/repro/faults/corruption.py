"""Data corruption primitives for SDC injection in functional mode.

When the injector decides that an execution suffers a silent data corruption,
the replication engine corrupts the task's *output* data after the body runs —
this mirrors an SDC manifesting in the task's results, which is exactly what
the output comparison of the replication design must catch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.rng import RngStream


def flip_random_bit(array: np.ndarray, rng: RngStream) -> int:
    """Flip one random bit of ``array`` in place and return the flat byte index.

    Works for any dtype by viewing the buffer as raw bytes.  Raises for empty
    or non-writeable arrays.
    """
    if array.size == 0:
        raise ValueError("cannot corrupt an empty array")
    if not array.flags.writeable:
        raise ValueError("cannot corrupt a read-only array")
    flat = array.reshape(-1).view(np.uint8)
    byte_index = rng.integers(0, flat.size)
    bit = rng.integers(0, 8)
    flat[byte_index] ^= np.uint8(1 << bit)
    return int(byte_index)


def corrupt_array(
    array: np.ndarray,
    rng: RngStream,
    n_bits: int = 1,
    magnitude: Optional[float] = None,
) -> np.ndarray:
    """Corrupt ``array`` in place: flip ``n_bits`` random bits, or add a bias.

    ``magnitude`` selects an additive corruption on a random element instead of
    bit flips (useful when a bit flip would produce NaN/inf and the test wants
    a bounded perturbation).  Returns the same array for chaining.
    """
    if magnitude is not None:
        if array.size == 0:
            raise ValueError("cannot corrupt an empty array")
        flat = array.reshape(-1)
        idx = rng.integers(0, flat.size)
        if np.issubdtype(flat.dtype, np.floating) or np.issubdtype(flat.dtype, np.complexfloating):
            flat[idx] = flat[idx] + magnitude
        else:
            flat[idx] = flat[idx] + int(magnitude)
        return array
    for _ in range(max(1, n_bits)):
        flip_random_bit(array, rng)
    return array
