"""Error classes and fault event records (paper Section II-A)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class ErrorClass(enum.Enum):
    """The three-way error classification used by the paper."""

    #: Detected and Corrected Error — absorbed by hardware, no software impact.
    DCE = "dce"
    #: Detected but Uncorrected Error — crashes the affected task/process.
    DUE = "due"
    #: Silent Data Corruption — undetected wrong results.
    SDC = "sdc"


class TaskCrashError(RuntimeError):
    """Raised when an injected DUE crashes a task execution."""

    def __init__(self, task_id: int, message: str = "") -> None:
        super().__init__(message or f"task {task_id} crashed (DUE)")
        self.task_id = task_id


class SilentDataCorruption(Exception):
    """Raised only in testing contexts to signal an *unmasked* SDC escaped.

    During normal operation an SDC never raises — that is what makes it silent;
    the injector corrupts output data instead.  The exception type exists so
    verification utilities can flag escapes explicitly.
    """

    def __init__(self, task_id: int, message: str = "") -> None:
        super().__init__(message or f"silent data corruption escaped from task {task_id}")
        self.task_id = task_id


@dataclass
class FaultEvent:
    """A single injected fault."""

    error_class: ErrorClass
    task_id: int
    #: Which execution of the task was hit (0 = original, 1 = replica,
    #: 2 = re-execution after SDC detection, ...).
    execution_index: int = 0
    #: Simulated time or wall-clock time of the injection, when known.
    timestamp: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_crash(self) -> bool:
        """Whether the fault is a DUE (task crash)."""
        return self.error_class is ErrorClass.DUE

    @property
    def is_sdc(self) -> bool:
        """Whether the fault is a silent data corruption."""
        return self.error_class is ErrorClass.SDC
