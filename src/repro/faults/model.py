"""Per-task and per-application failure-rate estimation (paper Section IV-A).

A task's crash rate λF(T) and SDC rate λSDC(T) are the sums over its arguments
of the argument-size-scaled node rates.  The application's ("benchmark's") FIT
is estimated the same way from the benchmark input size.  The
:class:`FailureModel` also converts FIT rates and task durations into
per-execution failure probabilities for the fault injector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.faults.rates import FitRateSpec
from repro.runtime.graph import TaskGraph
from repro.runtime.task import TaskDescriptor
from repro.util.units import fit_to_failures_per_second
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class TaskFailureRates:
    """Estimated failure rates of one task, in FIT."""

    task_id: int
    crash_fit: float
    sdc_fit: float

    @property
    def total_fit(self) -> float:
        """λF(T) + λSDC(T), the quantity Equation 1 uses."""
        return self.crash_fit + self.sdc_fit


class FailureModel:
    """Maps tasks and applications to failure rates under a :class:`FitRateSpec`."""

    def __init__(self, rate_spec: Optional[FitRateSpec] = None) -> None:
        self.rate_spec = rate_spec if rate_spec is not None else FitRateSpec()

    # -- per-task estimation --------------------------------------------------

    def task_rates(self, task: TaskDescriptor) -> TaskFailureRates:
        """λF(T) and λSDC(T) from the task's total argument size.

        Per the paper, "a task's overall failure rates are the sum of all its
        arguments' failure rates" — which, under proportional scaling, equals
        the rate for the summed argument size.
        """
        n_bytes = task.argument_bytes
        return TaskFailureRates(
            task_id=task.task_id,
            crash_fit=self.rate_spec.crash_fit_for_bytes(n_bytes),
            sdc_fit=self.rate_spec.sdc_fit_for_bytes(n_bytes),
        )

    def task_total_fit(self, task: TaskDescriptor) -> float:
        """Convenience: λF(T) + λSDC(T)."""
        return self.task_rates(task).total_fit

    def graph_rates(self, graph: TaskGraph) -> Dict[int, TaskFailureRates]:
        """Rates for every task of a graph, keyed by task id."""
        return {t.task_id: self.task_rates(t) for t in graph.tasks()}

    def graph_total_fit(self, graph: TaskGraph) -> float:
        """Sum of all task FITs — the unprotected application FIT the runtime
        bookkeeping would accumulate with no replication."""
        return sum(self.task_total_fit(t) for t in graph.tasks())

    # -- vectorized fast path (batch estimation over task arrays) -------------

    def task_fit_arrays(
        self, tasks: Sequence[TaskDescriptor]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(crash_fit, sdc_fit)`` arrays for ``tasks``, in input order.

        Element ``i`` equals ``task_rates(tasks[i])`` exactly: the per-byte
        rates are the same scalars and the per-element arithmetic matches the
        scalar path operation for operation, so the batch is bit-identical to
        the per-task loop — the scalar API stays the reference implementation.
        """
        n_bytes = np.fromiter(
            (t.argument_bytes for t in tasks), dtype=np.float64, count=len(tasks)
        )
        return (
            n_bytes * self.rate_spec.crash_fit_per_byte,
            n_bytes * self.rate_spec.sdc_fit_per_byte,
        )

    def task_total_fit_array(self, tasks: Sequence[TaskDescriptor]) -> np.ndarray:
        """``λF(T) + λSDC(T)`` for every task, vectorized (see :meth:`task_fit_arrays`)."""
        crash, sdc = self.task_fit_arrays(tasks)
        return crash + sdc

    def fit_array_for_bytes(self, n_bytes: np.ndarray) -> np.ndarray:
        """Total FIT per task from an argument-byte array (compiled-graph path).

        ``n_bytes[i]`` is a task's total argument size; the result equals
        :meth:`task_total_fit_array` element for element — the same per-byte
        scalars and the same operation order, just without materialising the
        descriptors (compiled graphs store the byte array directly).
        """
        n_bytes = np.asarray(n_bytes, dtype=np.float64)
        return n_bytes * self.rate_spec.crash_fit_per_byte + n_bytes * self.rate_spec.sdc_fit_per_byte

    def graph_fit_array(self, graph: TaskGraph) -> np.ndarray:
        """Total FIT of every task of ``graph`` in submission order, vectorized."""
        return self.task_total_fit_array(graph.tasks())

    # -- application-level estimation ----------------------------------------

    def application_fit(self, input_bytes: float) -> float:
        """Benchmark FIT estimated from the benchmark input size (crash + SDC)."""
        return self.rate_spec.total_fit_for_bytes(
            check_non_negative(input_bytes, "input_bytes")
        )

    def application_crash_fit(self, input_bytes: float) -> float:
        """Benchmark crash FIT estimated from the benchmark input size."""
        return self.rate_spec.crash_fit_for_bytes(input_bytes)

    def application_sdc_fit(self, input_bytes: float) -> float:
        """Benchmark SDC FIT estimated from the benchmark input size."""
        return self.rate_spec.sdc_fit_for_bytes(input_bytes)

    # -- probabilities for injection -----------------------------------------

    def crash_probability(self, task: TaskDescriptor, duration_s: Optional[float] = None) -> float:
        """Probability a DUE hits one execution of ``task``.

        Uses the exponential model ``p = 1 - exp(-rate * t)`` with the rate in
        failures/second derived from the task's crash FIT and ``t`` the task's
        duration (``duration_s`` overrides the descriptor's estimate).
        """
        return self._probability(self.task_rates(task).crash_fit, task, duration_s)

    def sdc_probability(self, task: TaskDescriptor, duration_s: Optional[float] = None) -> float:
        """Probability an SDC hits one execution of ``task``."""
        return self._probability(self.task_rates(task).sdc_fit, task, duration_s)

    @staticmethod
    def _probability(fit: float, task: TaskDescriptor, duration_s: Optional[float]) -> float:
        """Poisson fault probability of one task from its FIT and duration."""
        import math

        t = task.duration_s if duration_s is None else duration_s
        if t <= 0 or fit <= 0:
            return 0.0
        rate_per_s = fit_to_failures_per_second(fit)
        return 1.0 - math.exp(-rate_per_s * t)

    def with_spec(self, rate_spec: FitRateSpec) -> "FailureModel":
        """A copy of the model under a different rate specification."""
        return FailureModel(rate_spec)
