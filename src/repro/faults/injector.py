"""Fault injection.

The injector decides, for each *execution* of a task (original, replica,
re-execution), whether it suffers a crash (DUE), a silent data corruption
(SDC), both, or neither.  Three sources of fault decisions are supported:

* **FIT-derived probabilities** — the exponential model over the task's
  estimated rates and duration (realistic, tiny probabilities; used with an
  acceleration factor in tests),
* **fixed per-task probabilities** — the paper's Section V-A2 experiments use
  "per task fixed fault rates" for the recovery/scalability study,
* **forced plans** — deterministic fault schedules for unit tests of the
  recovery protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.errors import ErrorClass, FaultEvent
from repro.faults.model import FailureModel
from repro.runtime.task import TaskDescriptor
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative, check_probability


@dataclass
class InjectionConfig:
    """How fault probabilities are derived.

    Exactly one of the two probability sources applies to each error class:
    when ``fixed_crash_probability``/``fixed_sdc_probability`` is not ``None``
    it overrides the FIT-derived probability for that class.

    ``acceleration`` multiplies FIT-derived probabilities (not the fixed ones)
    so functional tests can observe faults without running for billions of
    hours; it has no effect on the bookkeeping the heuristic performs.
    """

    fixed_crash_probability: Optional[float] = None
    fixed_sdc_probability: Optional[float] = None
    acceleration: float = 1.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.fixed_crash_probability is not None:
            check_probability(self.fixed_crash_probability, "fixed_crash_probability")
        if self.fixed_sdc_probability is not None:
            check_probability(self.fixed_sdc_probability, "fixed_sdc_probability")
        check_non_negative(self.acceleration, "acceleration")


@dataclass
class FaultPlan:
    """A deterministic fault schedule for tests.

    ``faults`` maps ``(task_id, execution_index)`` to the error class injected
    into that execution.  Executions not listed are fault-free.
    """

    faults: Dict[Tuple[int, int], ErrorClass] = field(default_factory=dict)

    def add(self, task_id: int, execution_index: int, error_class: ErrorClass) -> "FaultPlan":
        """Schedule an error for a specific execution of a task."""
        self.faults[(task_id, execution_index)] = error_class
        return self

    def lookup(self, task_id: int, execution_index: int) -> Optional[ErrorClass]:
        """The scheduled error class for an execution, if any."""
        return self.faults.get((task_id, execution_index))


class FaultInjector:
    """Draws fault events for task executions."""

    def __init__(
        self,
        model: Optional[FailureModel] = None,
        config: Optional[InjectionConfig] = None,
        rng: Optional[RngStream] = None,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.model = model if model is not None else FailureModel()
        self.config = config if config is not None else InjectionConfig()
        self.rng = rng if rng is not None else RngStream(0)
        self.plan = plan
        self.injected: List[FaultEvent] = []

    # -- probability computation ---------------------------------------------

    def crash_probability(self, task: TaskDescriptor) -> float:
        """Per-execution crash probability for ``task`` under the config."""
        if not self.config.enabled:
            return 0.0
        if self.config.fixed_crash_probability is not None:
            return self.config.fixed_crash_probability
        p = self.model.crash_probability(task) * self.config.acceleration
        return min(1.0, p)

    def sdc_probability(self, task: TaskDescriptor) -> float:
        """Per-execution SDC probability for ``task`` under the config."""
        if not self.config.enabled:
            return 0.0
        if self.config.fixed_sdc_probability is not None:
            return self.config.fixed_sdc_probability
        p = self.model.sdc_probability(task) * self.config.acceleration
        return min(1.0, p)

    # -- drawing --------------------------------------------------------------

    def draw(self, task: TaskDescriptor, execution_index: int = 0, timestamp: float = 0.0) -> List[FaultEvent]:
        """Decide the faults hitting one execution of ``task``.

        Returns a list with zero, one or two events (a crash and an SDC are not
        mutually exclusive, although a crash usually pre-empts the SDC's
        effect — that policy belongs to the replication engine, not here).
        """
        events: List[FaultEvent] = []
        if not self.config.enabled:
            return events

        if self.plan is not None:
            scheduled = self.plan.lookup(task.task_id, execution_index)
            if scheduled is not None:
                events.append(
                    FaultEvent(
                        error_class=scheduled,
                        task_id=task.task_id,
                        execution_index=execution_index,
                        timestamp=timestamp,
                        details={"source": "plan"},
                    )
                )
            self.injected.extend(events)
            return events

        if self.rng.bernoulli(self.crash_probability(task)):
            events.append(
                FaultEvent(
                    error_class=ErrorClass.DUE,
                    task_id=task.task_id,
                    execution_index=execution_index,
                    timestamp=timestamp,
                    details={"source": "probability"},
                )
            )
        if self.rng.bernoulli(self.sdc_probability(task)):
            events.append(
                FaultEvent(
                    error_class=ErrorClass.SDC,
                    task_id=task.task_id,
                    execution_index=execution_index,
                    timestamp=timestamp,
                    details={"source": "probability"},
                )
            )
        self.injected.extend(events)
        return events

    # -- bookkeeping -----------------------------------------------------------

    def injected_counts(self) -> Dict[str, int]:
        """Histogram of injected error classes."""
        hist: Dict[str, int] = {}
        for e in self.injected:
            hist[e.error_class.value] = hist.get(e.error_class.value, 0) + 1
        return hist

    def reset(self) -> None:
        """Forget all injected events."""
        self.injected.clear()
