"""Fault injection.

The injector decides, for each *execution* of a task (original, replica,
re-execution), whether it suffers a crash (DUE), a silent data corruption
(SDC), both, or neither.  Three sources of fault decisions are supported:

* **FIT-derived probabilities** — the exponential model over the task's
  estimated rates and duration (realistic, tiny probabilities; used with an
  acceleration factor in tests),
* **fixed per-task probabilities** — the paper's Section V-A2 experiments use
  "per task fixed fault rates" for the recovery/scalability study,
* **forced plans** — deterministic fault schedules for unit tests of the
  recovery protocol.

Draws are *keyed*, not streamed: every execution owns a counter-based RNG
stream addressed by ``(root_seed, task_id, execution_index)`` (see
:func:`repro.util.rng.fault_stream`), so the injected-fault multiset of a run
is a pure function of the root seed and the task graph — independent of how
many worker threads consume the draws and of the order they reach them.  The
same keying hands the replication engine a per-execution *corruption* stream
(a separate lane of the key) so the corrupted bit pattern of an escaped SDC is
equally scheduling-independent.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.errors import ErrorClass, FaultEvent
from repro.faults.model import FailureModel
from repro.runtime.task import TaskDescriptor
from repro.util.rng import FAULT_LANE_CORRUPTION, RngStream, fault_stream
from repro.util.validation import check_non_negative, check_probability

#: Environment variable that sets the default fault-stream root seed when a
#: :class:`FaultInjector` is constructed without an explicit seed or stream.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"


def default_root_seed() -> int:
    """The fault-stream root seed from ``REPRO_FAULT_SEED`` (default ``0``)."""
    raw = os.environ.get(FAULT_SEED_ENV, "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{FAULT_SEED_ENV} must be an integer, got {raw!r}"
        ) from exc


@dataclass
class InjectionConfig:
    """How fault probabilities are derived.

    Exactly one of the two probability sources applies to each error class:
    when ``fixed_crash_probability``/``fixed_sdc_probability`` is not ``None``
    it overrides the FIT-derived probability for that class.

    ``acceleration`` multiplies FIT-derived probabilities (not the fixed ones)
    so functional tests can observe faults without running for billions of
    hours; it has no effect on the bookkeeping the heuristic performs.
    """

    fixed_crash_probability: Optional[float] = None
    fixed_sdc_probability: Optional[float] = None
    acceleration: float = 1.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.fixed_crash_probability is not None:
            check_probability(self.fixed_crash_probability, "fixed_crash_probability")
        if self.fixed_sdc_probability is not None:
            check_probability(self.fixed_sdc_probability, "fixed_sdc_probability")
        check_non_negative(self.acceleration, "acceleration")


@dataclass
class FaultPlan:
    """A deterministic fault schedule for tests.

    ``faults`` maps ``(task_id, execution_index)`` to the error class injected
    into that execution.  Executions not listed are fault-free.
    """

    faults: Dict[Tuple[int, int], ErrorClass] = field(default_factory=dict)

    def add(self, task_id: int, execution_index: int, error_class: ErrorClass) -> "FaultPlan":
        """Schedule an error for a specific execution of a task."""
        self.faults[(task_id, execution_index)] = error_class
        return self

    def lookup(self, task_id: int, execution_index: int) -> Optional[ErrorClass]:
        """The scheduled error class for an execution, if any."""
        return self.faults.get((task_id, execution_index))


class FaultInjector:
    """Draws fault events for task executions from keyed per-execution streams.

    ``root_seed`` selects the whole family of per-execution streams.  For
    backwards compatibility a sequential ``rng`` stream may be passed instead;
    only its seed material is used (:meth:`~repro.util.rng.RngStream.derived_seed`,
    the plain integer seed for directly-constructed streams) — the stream
    itself is never consumed, so two injectors built from equal seeds agree
    draw for draw regardless of what else either one has already drawn, and
    injectors built from distinct forked child streams stay independent.
    """

    def __init__(
        self,
        model: Optional[FailureModel] = None,
        config: Optional[InjectionConfig] = None,
        rng: Optional[RngStream] = None,
        plan: Optional[FaultPlan] = None,
        root_seed: Optional[int] = None,
    ) -> None:
        self.model = model if model is not None else FailureModel()
        self.config = config if config is not None else InjectionConfig()
        if root_seed is None:
            if rng is not None:
                root_seed = rng.derived_seed()
            else:
                root_seed = default_root_seed()
        self.root_seed = int(root_seed)
        self.plan = plan
        self.injected: List[FaultEvent] = []
        #: Guards :attr:`injected` — worker threads draw concurrently.
        self._lock = threading.Lock()

    # -- probability computation ---------------------------------------------

    def crash_probability(self, task: TaskDescriptor) -> float:
        """Per-execution crash probability for ``task`` under the config."""
        if not self.config.enabled:
            return 0.0
        if self.config.fixed_crash_probability is not None:
            return self.config.fixed_crash_probability
        p = self.model.crash_probability(task) * self.config.acceleration
        return min(1.0, p)

    def sdc_probability(self, task: TaskDescriptor) -> float:
        """Per-execution SDC probability for ``task`` under the config."""
        if not self.config.enabled:
            return 0.0
        if self.config.fixed_sdc_probability is not None:
            return self.config.fixed_sdc_probability
        p = self.model.sdc_probability(task) * self.config.acceleration
        return min(1.0, p)

    # -- keyed streams ---------------------------------------------------------

    def execution_stream(self, task_id: int, execution_index: int) -> RngStream:
        """The keyed fault-draw stream of one execution (pure function of key)."""
        return fault_stream(self.root_seed, task_id, execution_index)

    def corruption_stream(self, task_id: int, execution_index: int) -> RngStream:
        """The keyed corruption-content stream of one execution.

        A separate lane of the same key space as :meth:`execution_stream`, so
        *where* an SDC's bits land is as scheduling-independent as *whether*
        the SDC is injected.
        """
        return fault_stream(
            self.root_seed, task_id, execution_index, lane=FAULT_LANE_CORRUPTION
        )

    # -- drawing --------------------------------------------------------------

    def draw(self, task: TaskDescriptor, execution_index: int = 0, timestamp: float = 0.0) -> List[FaultEvent]:
        """Decide the faults hitting one execution of ``task``.

        Returns a list with zero, one or two events (a crash and an SDC are not
        mutually exclusive, although a crash usually pre-empts the SDC's
        effect — that policy belongs to the replication engine, not here).
        The result is a pure function of ``(root_seed, task_id,
        execution_index)``: calling :meth:`draw` twice with the same key
        returns equal events, whatever happened in between.
        """
        events: List[FaultEvent] = []
        if not self.config.enabled:
            return events

        if self.plan is not None:
            scheduled = self.plan.lookup(task.task_id, execution_index)
            if scheduled is not None:
                events.append(
                    FaultEvent(
                        error_class=scheduled,
                        task_id=task.task_id,
                        execution_index=execution_index,
                        timestamp=timestamp,
                        details={"source": "plan"},
                    )
                )
            with self._lock:
                self.injected.extend(events)
            return events

        stream = self.execution_stream(task.task_id, execution_index)
        if stream.bernoulli(self.crash_probability(task)):
            events.append(
                FaultEvent(
                    error_class=ErrorClass.DUE,
                    task_id=task.task_id,
                    execution_index=execution_index,
                    timestamp=timestamp,
                    details={"source": "probability"},
                )
            )
        if stream.bernoulli(self.sdc_probability(task)):
            events.append(
                FaultEvent(
                    error_class=ErrorClass.SDC,
                    task_id=task.task_id,
                    execution_index=execution_index,
                    timestamp=timestamp,
                    details={"source": "probability"},
                )
            )
        with self._lock:
            self.injected.extend(events)
        return events

    # -- bookkeeping -----------------------------------------------------------

    def injected_events(self) -> List[FaultEvent]:
        """A consistent snapshot of all injected events."""
        with self._lock:
            return list(self.injected)

    def injected_multiset(self) -> List[Tuple[int, int, str]]:
        """The injected faults as a sorted ``(task_id, execution, class)`` multiset.

        This is the quantity the worker-count determinism tests compare: it is
        invariant under the arrival order of concurrent draws.
        """
        with self._lock:
            keys = [
                (e.task_id, e.execution_index, e.error_class.value)
                for e in self.injected
            ]
        return sorted(keys)

    def injected_counts(self) -> Dict[str, int]:
        """Histogram of injected error classes."""
        hist: Dict[str, int] = {}
        with self._lock:
            events = list(self.injected)
        for e in events:
            hist[e.error_class.value] = hist.get(e.error_class.value, 0) + 1
        return hist

    def reset(self) -> None:
        """Forget all injected events."""
        with self._lock:
            self.injected.clear()
