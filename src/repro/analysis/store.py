"""Content-addressed results store: cell-level caching for experiment grids.

Every paper figure/table is a grid of independent
:class:`~repro.analysis.runner.ExperimentSpec` cells, and a cell's payload is
a pure function of its spec (see the determinism notes in
:mod:`repro.analysis.runner`).  That makes cell results *content-addressable*:
this module keys each record by the SHA-256 of a canonical JSON encoding of
the spec — kind, benchmark, scale, seed, fast/reference flag, and every
kind-specific parameter — plus the code version, and persists the payload as
one small JSON file under the cache root.

Consequences the rest of the system builds on:

* **Cache hits skip computation** — re-running any figure/table with a warm
  cache does zero cell computations (the :class:`~repro.analysis.runner.
  ExperimentEngine` consults the store before dispatching cells, unless
  ``force=True``).
* **Resume mid-grid** — an interrupted sweep leaves its finished cells behind;
  the next invocation recomputes only the missing ones.
* **Bit-reproducibility** — payloads are plain JSON values (dicts/lists of
  numbers, strings, bools), and Python's JSON round-trip is exact for floats,
  so a cached result is bit-identical to a fresh one for the same spec.
* **Safe invalidation** — records embed the code version used to produce
  them; a version bump makes old keys unreachable, and ``repro cache gc``
  reclaims them.  Corrupted records (truncated writes, bad JSON) are treated
  as misses and quarantined (deleted) on first read.

The cache root defaults to ``.repro_cache/`` in the current directory and can
be overridden with the ``REPRO_CACHE_DIR`` environment variable or the CLI's
``--cache-dir`` flag (see the Configuration section of the README).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.analysis.runner import ExperimentSpec

# Shared with the compiled-graph store: one cache root, one version scheme.
from repro.runtime.compiled import (  # noqa: F401  (re-exported public API)
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    code_version,
)

#: Bump when the record layout changes (distinct from the code version, which
#: tracks the *semantics* of cell functions).
RECORD_FORMAT: int = 1

#: Lease records (sweep-service cell claims, :mod:`repro.serve.leases`) live
#: *next to* their result record but in their own suffix namespace, so the
#: record machinery — ``records()``, ``ls``, quarantine — never mistakes a
#: live lease (or a half-written one) for a corrupted result and deletes it.
#: Only ``stats``/``gc``/``clear`` know about them, and only to count them
#: separately (and to reap the expired ones).
LEASE_SUFFIX: str = ".lease"

#: Environment override for the lease time-to-live (seconds).
LEASE_TTL_ENV: str = "REPRO_LEASE_TTL_S"

#: Default lease TTL: long enough that any real cell renews many times before
#: expiry, short enough that a crashed worker's cells are reclaimed quickly.
DEFAULT_LEASE_TTL_S: float = 30.0

#: Attempt markers (``<key>.attempt.<n>``) are the crash-persistent retry
#: ledger of a cell: each computation attempt first claims the lowest free
#: ordinal with an O_EXCL create, so attempt indices are globally unique
#: across workers, processes, and restarts — which is also what keys the
#: chaos engine's per-attempt fault draws (a kill injected at attempt ``n``
#: never re-fires, because the restarted worker claims ``n+1``).
ATTEMPT_INFIX: str = ".attempt."

#: A poison tombstone (``<key>.poison``) marks a cell that exhausted its
#: attempt budget; write-once, carries the exception chain of every failed
#: attempt.  Workers refuse poisoned cells and jobs over them fail fast.
POISON_SUFFIX: str = ".poison"

#: Environment override for the per-cell attempt budget.
CELL_ATTEMPTS_ENV: str = "REPRO_CELL_ATTEMPTS"

#: Default attempt budget: a cell may fail this many distinct attempts
#: (across all workers) before it is quarantined.
DEFAULT_CELL_ATTEMPTS: int = 3


def lease_ttl_seconds() -> float:
    """The lease TTL: ``REPRO_LEASE_TTL_S`` or the 30-second default."""
    env = os.environ.get(LEASE_TTL_ENV)
    if env:
        try:
            ttl = float(env)
            if ttl > 0:
                return ttl
        except ValueError:
            pass
    return DEFAULT_LEASE_TTL_S


def cell_attempt_budget() -> int:
    """Per-cell attempt budget: ``REPRO_CELL_ATTEMPTS`` or the default of 3."""
    env = os.environ.get(CELL_ATTEMPTS_ENV)
    if env:
        try:
            budget = int(env)
            if budget > 0:
                return budget
        except ValueError:
            pass
    return DEFAULT_CELL_ATTEMPTS


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to canonical JSON-encodable data, deterministically.

    Handles the value types that appear in spec parameters: plain scalars,
    tuples/lists, dicts, and (frozen) dataclasses such as
    :class:`~repro.faults.rates.FitRateSpec`, which are tagged with their
    class name so different spec types can never collide.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"spec parameter of unsupported type {type(obj).__name__}: {obj!r}")


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """The canonical JSON-encodable form of a spec (what gets hashed)."""
    return {
        "kind": spec.kind,
        "benchmark": spec.benchmark,
        "scale": spec.scale,
        "seed": spec.seed,
        "fast": spec.fast,
        "params": _canonical(dict(spec.params)),
    }


def spec_key(spec: ExperimentSpec, version: Optional[str] = None) -> str:
    """Content hash of a spec: SHA-256 hex over canonical JSON + code version.

    Stable across processes, platforms, and Python hash randomisation — the
    encoding is explicit canonical JSON with sorted keys, never ``repr`` or
    ``hash``.  Two specs share a key iff they are the same experiment run by
    the same code, which is exactly when their payloads are interchangeable.
    """
    payload = {
        "format": RECORD_FORMAT,
        "code_version": version if version is not None else code_version(),
        "spec": spec_to_dict(spec),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoreRecord:
    """One persisted cell: its key, spec snapshot, payload, and provenance."""

    key: str
    spec: Dict[str, Any]
    payload: Any
    code_version: str
    created_at: float
    elapsed_s: Optional[float] = None

    def to_json(self) -> Dict[str, Any]:
        """The JSON document written to disk."""
        return {
            "format": RECORD_FORMAT,
            "key": self.key,
            "spec": self.spec,
            "payload": self.payload,
            "code_version": self.code_version,
            "created_at": self.created_at,
            "elapsed_s": self.elapsed_s,
        }


class ResultStore:
    """A directory of content-addressed cell records.

    Records live two levels deep (``<root>/<key[:2]>/<key>.json``) so even
    very large sweeps keep directory listings manageable.  Writes go through
    a temp file + ``os.replace`` so interrupted runs never leave a partially
    written record behind — at worst the temp file is orphaned and ``gc``
    collects it.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = os.path.abspath(root)

    # -- paths ----------------------------------------------------------------

    def path_for(self, key: str) -> str:
        """The record file of a key."""
        return os.path.join(self.root, key[:2], key + ".json")

    def lease_path_for(self, key: str) -> str:
        """The lease file of a key (``<root>/<key[:2]>/<key>.lease``).

        Same shard directory as the result record so a worker's claim and its
        eventual result live side by side, but a distinct suffix so nothing in
        the record machinery ever parses — or quarantines — a lease.
        """
        return os.path.join(self.root, key[:2], key + LEASE_SUFFIX)

    def attempt_path_for(self, key: str, n: int) -> str:
        """The marker file of a cell's ``n``-th computation attempt."""
        return os.path.join(self.root, key[:2], f"{key}{ATTEMPT_INFIX}{n}")

    def poison_path_for(self, key: str) -> str:
        """The quarantine tombstone of a cell that exhausted its attempts."""
        return os.path.join(self.root, key[:2], key + POISON_SUFFIX)

    def key(self, spec: ExperimentSpec) -> str:
        """The content hash of a spec (see :func:`spec_key`)."""
        return spec_key(spec)

    # -- read -----------------------------------------------------------------

    def get(self, spec: ExperimentSpec) -> Optional[StoreRecord]:
        """The record of a spec, or ``None`` on miss.

        A record that cannot be parsed, or whose key field disagrees with its
        file name (a torn or tampered write), is quarantined: deleted and
        reported as a miss, so the cell is simply recomputed.
        """
        key = self.key(spec)
        record = self._load(self.path_for(key))
        if record is None or record.key != key:
            if record is not None:
                self._quarantine(self.path_for(key))
            return None
        return record

    def contains(self, spec: ExperimentSpec) -> bool:
        """Whether a valid record exists for a spec."""
        return self.get(spec) is not None

    def _load(self, path: str) -> Optional[StoreRecord]:
        """Parse one record file; malformed content is quarantined.

        Only *content* problems (bad JSON, missing fields) delete the file; a
        transient I/O error (fd exhaustion, a momentary lock) is reported as a
        miss but leaves the record on disk for the next read.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except ValueError:  # bad JSON — the record itself is broken
            self._quarantine(path)
            return None
        except OSError:  # transient read failure — the record may be fine
            return None
        try:
            return StoreRecord(
                key=doc["key"],
                spec=doc["spec"],
                payload=doc["payload"],
                code_version=doc["code_version"],
                created_at=doc["created_at"],
                elapsed_s=doc.get("elapsed_s"),
            )
        except (KeyError, TypeError):  # parseable JSON, wrong shape
            self._quarantine(path)
            return None

    @staticmethod
    def _quarantine(path: str) -> None:
        """Best-effort removal of a record file that must not be served again."""
        try:
            os.remove(path)
        except OSError:
            pass

    # -- write ----------------------------------------------------------------

    def _chaos(self):
        """The active chaos engine for this root, or ``None`` (the norm).

        Imported lazily — :mod:`repro.serve.chaos` sits a layer above the
        store, and only chaos runs pay for the import at all.
        """
        try:
            from repro.serve.chaos import active_chaos
        except ImportError:  # pragma: no cover - serve layer absent
            return None
        return active_chaos(self.root)

    def put(
        self, spec: ExperimentSpec, payload: Any, elapsed_s: Optional[float] = None
    ) -> StoreRecord:
        """Persist one computed cell and return its record.

        Publication is a temp-file write plus ``os.replace``, so a reader can
        never observe a half-written *record* — which is also why injected
        store-write chaos fails *before* the rename (a torn temp file plus an
        EIO, the shape of a crash mid-write), never after: the published
        namespace stays atomic even under fault injection, and the caller's
        bounded retry simply rewrites the temp.
        """
        key = self.key(spec)
        record = StoreRecord(
            key=key,
            spec=spec_to_dict(spec),
            payload=payload,
            code_version=code_version(),
            created_at=time.time(),
            elapsed_s=elapsed_s,
        )
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}"
        chaos = self._chaos()
        if chaos is not None and chaos.store_put_fails(key):
            from repro.serve.chaos import ChaosInjectedIOError

            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(record.to_json())[:64])
            raise ChaosInjectedIOError(f"injected EIO writing record {key[:12]}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record.to_json(), fh)
        if chaos is not None:
            chaos.rename_delay(key)
        os.replace(tmp, path)
        return record

    # -- attempt registry & poison quarantine ----------------------------------

    def claim_attempt(self, key: str, owner: str, budget: Optional[int] = None) -> Optional[int]:
        """Claim the next attempt ordinal for a cell, or ``None`` if exhausted.

        O_EXCL creation of ``<key>.attempt.<n>`` makes each ordinal single-
        winner across every worker process, and the markers persist across
        crashes — a worker killed mid-attempt leaves its marker behind, so the
        attempt still counts against the budget (a crash-looping cell cannot
        retry forever).
        """
        if budget is None:
            budget = cell_attempt_budget()
        path0 = self.attempt_path_for(key, 0)
        os.makedirs(os.path.dirname(path0), exist_ok=True)
        doc = {"key": key, "owner": owner, "started_at": time.time()}
        for n in range(budget):
            try:
                fd = os.open(
                    self.attempt_path_for(key, n),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                continue
            except OSError:
                return None
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({**doc, "attempt": n}, fh)
            return n
        return None

    def record_attempt_failure(self, key: str, n: int, error: str) -> None:
        """Attach the failure reason to an attempt marker (atomic rewrite)."""
        path = self.attempt_path_for(key, n)
        doc: Dict[str, Any] = {"key": key, "attempt": n}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc.update(json.load(fh))
        except (OSError, ValueError):
            pass
        doc["error"] = error
        doc["failed_at"] = time.time()
        tmp = path + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except OSError:  # best effort: the marker's existence is what counts
            self._quarantine(tmp)

    def attempts(self, key: str) -> List[Dict[str, Any]]:
        """Every attempt marker of a cell, in attempt order."""
        out: List[Dict[str, Any]] = []
        shard_dir = os.path.join(self.root, key[:2])
        prefix = key + ATTEMPT_INFIX
        try:
            names = os.listdir(shard_dir)
        except OSError:
            return out
        for name in names:
            if not name.startswith(prefix):
                continue
            try:
                n = int(name[len(prefix):])
            except ValueError:
                continue
            doc: Dict[str, Any] = {"key": key, "attempt": n}
            try:
                with open(os.path.join(shard_dir, name), "r", encoding="utf-8") as fh:
                    doc.update(json.load(fh))
            except (OSError, ValueError):
                pass
            out.append(doc)
        out.sort(key=lambda d: d["attempt"])
        return out

    def clear_attempts(self, key: str) -> None:
        """Drop a cell's attempt markers (after its record is published).

        Safe even with concurrent claimants: every worker re-checks the store
        under its lease before computing, so a cleared ledger is only ever
        followed by cache hits, never by a fresh attempt.
        """
        for doc in self.attempts(key):
            self._quarantine(self.attempt_path_for(key, doc["attempt"]))

    def write_poison(self, key: str, doc: Dict[str, Any]) -> bool:
        """Publish a cell's quarantine tombstone (write-once, single winner)."""
        path = self.poison_path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except (FileExistsError, OSError):
            return False
        payload = {"key": key, "code_version": code_version(), "created_at": time.time()}
        payload.update(doc)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return True

    def read_poison(self, key: str) -> Optional[Dict[str, Any]]:
        """A cell's quarantine tombstone, or ``None`` if it is not poisoned."""
        try:
            with open(self.poison_path_for(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- maintenance -----------------------------------------------------------

    def records(self) -> Iterator[StoreRecord]:
        """Iterate every valid record in the store (corrupt ones are skipped)."""
        for path in self._record_paths():
            record = self._load(path)
            if record is not None:
                yield record

    def _record_paths(self) -> List[str]:
        """Every record file currently on disk, in stable (sharded) order."""
        paths: List[str] = []
        if not os.path.isdir(self.root):
            return paths
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def _lease_paths(self) -> List[str]:
        """Every lease file currently on disk, in stable (sharded) order."""
        return self._suffix_paths(lambda name: name.endswith(LEASE_SUFFIX))

    def _suffix_paths(self, match) -> List[str]:
        """Shard-ordered paths of every file whose name satisfies ``match``."""
        paths: List[str] = []
        if not os.path.isdir(self.root):
            return paths
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if match(name):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def _worker_liveness_paths(self) -> List[str]:
        """Worker liveness files (``<root>/serve/workers/*.json``)."""
        workers_dir = os.path.join(self.root, "serve", "workers")
        try:
            names = sorted(os.listdir(workers_dir))
        except OSError:
            return []
        return [
            os.path.join(workers_dir, name)
            for name in names
            if name.endswith(".json")
        ]

    def _lease_expired(self, path: str, now: Optional[float] = None) -> Optional[bool]:
        """Whether the lease at ``path`` has expired; ``None`` if it vanished.

        A lease that cannot be parsed (a half-written acquire caught
        mid-flight) is **not** corruption: it is treated as live until its
        file mtime plus the configured TTL has passed, then as expired.  This
        is what keeps ``gc`` from ever deleting a claim a worker is about to
        finish writing.
        """
        if now is None:
            now = time.time()
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            deadline = float(doc["deadline"])
        except (FileNotFoundError,):
            return None
        except (OSError, ValueError, TypeError, KeyError):
            try:
                return os.path.getmtime(path) + lease_ttl_seconds() < now
            except OSError:
                return None
        return deadline < now

    def ls(self) -> List[Dict[str, Any]]:
        """One summary dict per record (for ``repro cache ls``)."""
        rows: List[Dict[str, Any]] = []
        for record in self.records():
            spec = record.spec
            rows.append(
                {
                    "key": record.key[:12],
                    "kind": spec.get("kind", "?"),
                    "benchmark": spec.get("benchmark", "?"),
                    "scale": spec.get("scale", "?"),
                    "seed": spec.get("seed", "?"),
                    "fast": spec.get("fast", "?"),
                    "code_version": record.code_version,
                    "created_at": record.created_at,
                    "elapsed_s": record.elapsed_s,
                }
            )
        return rows

    def stats(self) -> Dict[str, Any]:
        """Aggregate store statistics (record count, bytes, versions, leases).

        Leases are counted in their own buckets (live vs expired), never as
        records — a sweep-service drain in flight shows up here as a handful
        of live leases, not as store corruption.
        """
        paths = self._record_paths()
        n_bytes = 0
        versions: Dict[str, int] = {}
        n_records = 0
        for path in paths:
            try:
                n_bytes += os.path.getsize(path)
            except OSError:
                continue
            record = self._load(path)
            if record is None:
                continue
            n_records += 1
            versions[record.code_version] = versions.get(record.code_version, 0) + 1
        leases_live = 0
        leases_expired = 0
        now = time.time()
        for path in self._lease_paths():
            expired = self._lease_expired(path, now)
            if expired is None:
                continue
            if expired:
                leases_expired += 1
            else:
                leases_live += 1
        attempts = len(
            self._suffix_paths(lambda n: ATTEMPT_INFIX in n and ".tmp." not in n)
        )
        poisoned = len(self._suffix_paths(lambda n: n.endswith(POISON_SUFFIX)))
        return {
            "root": self.root,
            "records": n_records,
            "bytes": n_bytes,
            "code_versions": versions,
            "leases_live": leases_live,
            "leases_expired": leases_expired,
            "attempts": attempts,
            "poisoned": poisoned,
        }

    def gc(self, stale_worker_age_s: Optional[float] = None) -> Dict[str, int]:
        """Drop stale records: wrong code version, corrupt files, orphan temps.

        Returns counts of what was removed.  Records written by the *current*
        code version are untouched, so ``gc`` after an upgrade reclaims
        exactly the unreachable generation.  Lease files are handled in their
        own namespace: expired ones (including reclaim tombstones left by a
        crashed reclaimer) are reaped and counted as ``lease_expired``, live
        ones are counted as ``lease_live`` and **never** touched — a lease is
        a claim, not a record, so it can never be "corrupt".

        The retry/quarantine ledger is swept too: attempt markers whose cell
        already has a published record are spent history (``attempts``), and
        poison tombstones from an older code version no longer poison
        anything (``poison_stale``) — a version bump un-quarantines a cell,
        since new code may well succeed where the old code failed.

        Worker liveness files older than ``stale_worker_age_s`` (default
        three lease TTLs) are removed and counted as ``workers_stale`` — a
        SIGKILLed worker never deletes its own liveness file, and without
        this sweep ``/health`` would count the corpse as a worker forever.
        """
        current = code_version()
        removed_stale = 0
        removed_corrupt = 0
        removed_tmp = 0
        lease_live = 0
        lease_expired = 0
        removed_attempts = 0
        poison_stale = 0
        workers_stale = 0
        empty = {
            "stale": 0, "corrupt": 0, "tmp": 0, "lease_live": 0,
            "lease_expired": 0, "attempts": 0, "poison_stale": 0,
            "workers_stale": 0,
        }
        if not os.path.isdir(self.root):
            return empty
        now = time.time()
        if stale_worker_age_s is None:
            stale_worker_age_s = 3.0 * lease_ttl_seconds()
        for path in self._worker_liveness_paths():
            try:
                if os.path.getmtime(path) + stale_worker_age_s < now:
                    os.remove(path)
                    workers_stale += 1
            except OSError:
                continue
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                path = os.path.join(shard_dir, name)
                if ".reclaim." in name:
                    # A reclaim tombstone survives only if the reclaiming
                    # worker crashed between rename and unlink; always stale.
                    self._quarantine(path)
                    lease_expired += 1
                    continue
                if name.endswith(LEASE_SUFFIX):
                    expired = self._lease_expired(path, now)
                    if expired:
                        self._quarantine(path)
                        lease_expired += 1
                    elif expired is not None:
                        lease_live += 1
                    continue
                if ".tmp." in name:
                    self._quarantine(path)
                    removed_tmp += 1
                    continue
                if ATTEMPT_INFIX in name:
                    key = name.split(ATTEMPT_INFIX, 1)[0]
                    if os.path.exists(os.path.join(shard_dir, key + ".json")):
                        self._quarantine(path)
                        removed_attempts += 1
                    continue
                if name.endswith(POISON_SUFFIX):
                    try:
                        with open(path, "r", encoding="utf-8") as fh:
                            doc = json.load(fh)
                        fresh = doc.get("code_version") == current
                    except (OSError, ValueError):
                        fresh = False
                    if not fresh:
                        self._quarantine(path)
                        poison_stale += 1
                    continue
                if not name.endswith(".json"):
                    continue
                record = self._load(path)
                if record is None:
                    # _load only deletes on *content* corruption; a transient
                    # read error leaves the file behind and is not a removal.
                    if not os.path.exists(path):
                        removed_corrupt += 1
                    continue
                if record.code_version != current:
                    self._quarantine(path)
                    removed_stale += 1
            if not os.listdir(shard_dir):
                try:
                    os.rmdir(shard_dir)
                except OSError:
                    pass
        return {
            "stale": removed_stale,
            "corrupt": removed_corrupt,
            "tmp": removed_tmp,
            "lease_live": lease_live,
            "lease_expired": lease_expired,
            "attempts": removed_attempts,
            "poison_stale": poison_stale,
            "workers_stale": workers_stale,
        }

    def clear(self) -> int:
        """Delete every record (the root directory itself is kept).

        Returns the number of *records* removed; lease files are removed too
        (a cleared store has nothing left to claim) but not counted.
        """
        removed = 0
        for path in self._record_paths():
            self._quarantine(path)
            removed += 1
        for path in self._lease_paths():
            self._quarantine(path)
        for path in self._suffix_paths(
            lambda n: ATTEMPT_INFIX in n or n.endswith(POISON_SUFFIX)
        ):
            self._quarantine(path)
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                    try:
                        os.rmdir(shard_dir)
                    except OSError:
                        pass
        return removed
