"""The parallel experiment engine.

Every paper figure/table is a grid of *independent* cells — one benchmark at
one error-rate multiplier, one (benchmark, fault-rate) speedup curve, and so
on.  This module expresses a cell as an :class:`ExperimentSpec` (a small,
picklable value object), executes grids of them through an
:class:`ExperimentEngine`, and memoises the expensive shared inputs (generated
task graphs and their simulation caches) per worker process so each graph is
built once per run instead of once per policy x rate cell.

Key properties:

* **Determinism** — a cell's result is a pure function of its spec: the RNG
  stream is seeded from ``spec.seed`` (see :func:`derive_seed` for building
  per-cell seeds from a base seed), so results are identical for any
  ``parallelism`` and any worker scheduling order.  The determinism test suite
  pins this down.
* **Parallelism** — ``parallelism > 1`` fans cells out over a
  ``ProcessPoolExecutor``; ``parallelism <= 1`` (or a single-cell grid) runs
  inline, with the same memoisation, which is also the mode the portable
  figure drivers default to on single-core machines.
* **Fast/reference duality** — ``fast=True`` (default) routes cells through
  the vectorized fault-evaluation fast path
  (:mod:`repro.core.vectorized`, :mod:`repro.simulator.fastpath`);
  ``fast=False`` runs the scalar reference implementations.  The benchmark
  harness exposes this as the ``--reference`` escape hatch and the
  ``REPRO_REFERENCE=1`` environment variable; ``REPRO_PARALLELISM`` overrides
  the default worker count.
* **Cell-level caching** — because a cell is a pure function of its spec, an
  engine given a :class:`~repro.analysis.store.ResultStore` consults it
  before dispatching: cached cells are returned without computation (and
  without touching the pool), freshly computed ones are persisted, so
  re-runs are incremental and interrupted grids resume where they stopped.
  ``force=True`` recomputes (and overwrites) everything; a ``progress``
  callback observes every cell with its hit/miss disposition.  See
  :mod:`repro.analysis.store` for the content-addressing scheme and the
  ``repro cache`` CLI for maintenance.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import create_benchmark
from repro.apps.base import Benchmark
from repro.obs.metrics import inc as metrics_inc
from repro.obs.metrics import observe as metrics_observe
from repro.obs.trace import active_tracer, configure_trace_root, trace_span
from repro.runtime.compiled import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    GRAPH_CACHE_ENV,
    CompiledGraphStore,
    compile_graph,
)
from repro.runtime.graph import TaskGraph
from repro.simulator.fastpath import SimGraphCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from repro.analysis.store import ResultStore

# ---------------------------------------------------------------------------------
# defaults / configuration
# ---------------------------------------------------------------------------------

_DEFAULTS: Dict[str, Any] = {"fast": None, "parallelism": None}

_GRAPH_CACHE: Dict[str, Any] = {"enabled": None, "root": None}


def configure_defaults(
    fast: Optional[bool] = None, parallelism: Optional[int] = None
) -> None:
    """Set process-wide defaults for drivers called without explicit knobs.

    The benchmark harness's ``--reference`` flag calls
    ``configure_defaults(fast=False, parallelism=1)`` so every driver in the
    session runs the scalar reference path serially.
    """
    _DEFAULTS["fast"] = fast
    _DEFAULTS["parallelism"] = parallelism


def configure_graph_cache(
    enabled: Optional[bool] = None, root: Optional[str] = None
) -> None:
    """Set the process-wide on-disk compiled-graph cache configuration.

    ``enabled=None`` defers to the ``REPRO_GRAPH_CACHE`` environment variable
    (and the caller-supplied fallback of :func:`graph_cache_enabled`); the CLI
    turns the cache on explicitly and ``--no-graph-cache`` turns it off.  The
    in-process compiled memo is dropped on reconfiguration so graphs never
    leak across cache roots.
    """
    _GRAPH_CACHE["enabled"] = enabled
    _GRAPH_CACHE["root"] = root
    _COMPILED_CACHE.clear()


def env_graph_cache_enabled(fallback: bool) -> bool:
    """Resolve ``REPRO_GRAPH_CACHE`` alone (no process-wide pin consulted).

    ``fallback`` applies when the variable is unset — ``False`` for plain
    library calls (tests and ad-hoc driver use leave no cache directories
    behind), ``True`` for the CLI, which shares compiled graphs across
    processes and invocations by default.
    """
    env = os.environ.get(GRAPH_CACHE_ENV)
    if env is not None:
        return env.strip().lower() not in ("0", "false", "no", "")
    return fallback


def graph_cache_enabled(fallback: bool = False) -> bool:
    """Whether compiled graphs are persisted to (and loaded from) disk.

    Precedence: :func:`configure_graph_cache`, then ``REPRO_GRAPH_CACHE``,
    then ``fallback``.
    """
    if _GRAPH_CACHE["enabled"] is not None:
        return bool(_GRAPH_CACHE["enabled"])
    return env_graph_cache_enabled(fallback)


def graph_cache_root() -> str:
    """Cache root the compiled-graph store lives under (shared with results)."""
    root = _GRAPH_CACHE["root"]
    if root:
        return str(root)
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


#: Environment switch for direct spec→CompiledGraph generation of workloads
#: (``repro.workloads.direct``).  On by default: the direct path is pinned
#: byte-identical to lowering an object graph, so cache keys *and* cache
#: contents are unchanged — the switch exists to fall back to the object
#: path when diagnosing a suspected generator divergence.
DIRECT_GEN_ENV = "REPRO_DIRECT_GEN"


def direct_gen_enabled() -> bool:
    """Whether workload graphs are emitted directly to compiled arrays."""
    env = os.environ.get(DIRECT_GEN_ENV)
    if env is not None:
        return env.strip().lower() not in ("0", "false", "no", "")
    return True


def default_fast() -> bool:
    """Whether drivers use the vectorized fast path by default."""
    if _DEFAULTS["fast"] is not None:
        return bool(_DEFAULTS["fast"])
    return os.environ.get("REPRO_REFERENCE", "") not in ("1", "true", "yes")


def default_parallelism() -> int:
    """Worker count used when a driver is called without ``parallelism``."""
    if _DEFAULTS["parallelism"] is not None:
        return max(1, int(_DEFAULTS["parallelism"]))
    env = os.environ.get("REPRO_PARALLELISM")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def derive_seed(base_seed: int, *parts: Any) -> int:
    """A deterministic per-spec seed from a base seed and spec key parts.

    Stable across processes and Python hash randomisation (uses SHA-256 of the
    repr of the parts), so a grid re-run with the same base seed reproduces
    every cell's stream no matter how cells are scheduled.
    """
    digest = hashlib.sha256(repr((base_seed, parts)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


# ---------------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """One independent experiment cell: a pure function of its fields.

    ``kind`` selects a registered cell function (see :func:`cell_kind`);
    ``params`` carries the kind-specific inputs as a sorted tuple of
    ``(name, value)`` pairs so specs are hashable and picklable.
    """

    kind: str
    benchmark: str
    scale: float
    seed: int = 0
    fast: bool = True
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        """Look up one kind-specific parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default


def make_spec(
    kind: str,
    benchmark: str,
    scale: float,
    seed: int = 0,
    fast: bool = True,
    **params: Any,
) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` with normalised parameter ordering."""
    return ExperimentSpec(
        kind=kind,
        benchmark=benchmark,
        scale=scale,
        seed=seed,
        fast=fast,
        params=tuple(sorted(params.items())),
    )


# ---------------------------------------------------------------------------------
# per-process memoisation of generated graphs
# ---------------------------------------------------------------------------------

_BENCH_CACHE: Dict[Tuple[str, float, Optional[int]], Benchmark] = {}
_SIM_CACHES: Dict[int, SimGraphCache] = {}
_COMPILED_CACHE: Dict[Tuple[str, float, Optional[int]], SimGraphCache] = {}


def benchmark_instance(
    name: str, scale: float, n_nodes: Optional[int] = None
) -> Benchmark:
    """A memoised benchmark instance (its generated graph is cached inside).

    ``n_nodes`` selects the Figure 6 distributed variants; ``None`` is the
    registry configuration.  The memo is per process: pool workers build each
    graph at most once regardless of how many cells they execute.
    """
    key = (name, scale, n_nodes)
    bench = _BENCH_CACHE.get(key)
    if bench is None:
        if n_nodes is None:
            bench = create_benchmark(name, scale=scale)
        else:
            # Imported lazily: experiments imports this module.
            from repro.analysis.experiments import _distributed_benchmark

            bench = _distributed_benchmark(name, n_nodes, scale)
        _BENCH_CACHE[key] = bench
    return bench


def benchmark_graph(name: str, scale: float, n_nodes: Optional[int] = None) -> TaskGraph:
    """The memoised task graph of a benchmark configuration."""
    return benchmark_instance(name, scale, n_nodes).build_graph()


def sim_cache(graph: TaskGraph) -> SimGraphCache:
    """The memoised :class:`SimGraphCache` of a graph (keyed by identity)."""
    cache = _SIM_CACHES.get(id(graph))
    if cache is None:
        cache = SimGraphCache(graph)
        _SIM_CACHES[id(graph)] = cache
    return cache


def compiled_sim_cache(
    name: str, scale: float, n_nodes: Optional[int] = None
) -> SimGraphCache:
    """A replay-ready cache for a benchmark configuration, without rebuilding.

    This is how fast-path cells obtain their graph: the per-process memo is
    consulted first; on a miss, the on-disk compiled-graph store (when
    enabled) supplies the arrays memory-mapped — so pool workers *never*
    rebuild the Python task graph — and only a store miss compiles from a
    freshly generated graph (persisting the result for every later process).
    """
    key = (name, scale, n_nodes)
    cache = _COMPILED_CACHE.get(key)
    if cache is not None:
        return cache
    direct_spec = _direct_workload_spec(name, n_nodes)
    if graph_cache_enabled():
        tracer = active_tracer()
        store = CompiledGraphStore(graph_cache_root())
        with trace_span(tracer, "graph.load", benchmark=name, scale=scale) as span:
            compiled = store.load(name, scale, n_nodes)
            span.set(hit=compiled is not None)
        if compiled is None:
            if direct_spec is not None:
                from repro.workloads.direct import generate_compiled

                with trace_span(tracer, "graph.generate", benchmark=name, scale=scale):
                    t0 = time.perf_counter()
                    generated = generate_compiled(direct_spec, scale)
                    store.save(
                        direct_spec.canonical,
                        scale,
                        generated,
                        n_nodes,
                        elapsed_s=time.perf_counter() - t0,
                    )
                    del generated
                # Reload memory-mapped: the freshly written arrays are then
                # backed by the store file, not by anonymous process memory —
                # the property the out-of-core replay relies on.
                compiled = store.load(name, scale, n_nodes)
            if compiled is None:
                with trace_span(tracer, "graph.compile", benchmark=name, scale=scale):
                    t0 = time.perf_counter()
                    compiled = compile_graph(benchmark_graph(name, scale, n_nodes))
                    store.save(
                        name, scale, compiled, n_nodes, elapsed_s=time.perf_counter() - t0
                    )
        cache = SimGraphCache.from_compiled(compiled)
    elif direct_spec is not None:
        from repro.workloads.direct import generate_compiled

        with trace_span(
            active_tracer(), "graph.generate", benchmark=name, scale=scale
        ):
            cache = SimGraphCache.from_compiled(generate_compiled(direct_spec, scale))
    else:
        graph = benchmark_graph(name, scale, n_nodes)
        cache = sim_cache(graph)
    _COMPILED_CACHE[key] = cache
    return cache


def _direct_workload_spec(name: str, n_nodes: Optional[int]) -> Optional[Any]:
    """The parsed spec when ``name`` should use direct generation, else None.

    Direct emission covers workload benchmarks at their registry placement
    (``n_nodes is None`` — workload tasks carry no explicit node attribute, so
    distributed re-placements still go through the object path) and honours
    the ``REPRO_DIRECT_GEN`` kill switch.
    """
    if n_nodes is not None or not direct_gen_enabled():
        return None
    from repro.workloads import is_workload_name, parse_workload

    if not is_workload_name(name):
        return None
    return parse_workload(name)


def _pool_worker_init(graph_enabled: bool, graph_root: str) -> None:
    """Initialise one pool worker: hand it the compiled-graph cache location.

    Workers receive the *resolved* parent configuration (a cache path and an
    on/off flag, never a graph), so their :func:`compiled_sim_cache` lookups
    map the same store files the parent and their sibling workers map.  The
    trace root is pinned to the same location, so worker-side spans (cell
    compute, graph loads, simulator dispatch) land in the parent's
    ``obs/trace.jsonl``.
    """
    configure_graph_cache(enabled=graph_enabled, root=graph_root)
    configure_trace_root(graph_root)


def clear_caches() -> None:
    """Drop all memoised benchmarks and simulation caches (mainly for tests)."""
    _BENCH_CACHE.clear()
    _SIM_CACHES.clear()
    _COMPILED_CACHE.clear()


# ---------------------------------------------------------------------------------
# cell registry and execution
# ---------------------------------------------------------------------------------

_CELL_KINDS: Dict[str, Callable[[ExperimentSpec], Any]] = {}


def cell_kind(name: str) -> Callable[[Callable[[ExperimentSpec], Any]], Callable]:
    """Register a cell function under ``name`` (used by the experiment drivers)."""

    def decorate(func: Callable[[ExperimentSpec], Any]) -> Callable:
        _CELL_KINDS[name] = func
        return func

    return decorate


def run_cell(spec: ExperimentSpec) -> Any:
    """Execute one cell in the current process (module-level, hence picklable)."""
    func = _CELL_KINDS.get(spec.kind)
    if func is None:
        # A spawn-started worker has this module but not the driver module
        # whose import registers the standard cells; pull it in once.
        import repro.analysis.experiments  # noqa: F401  (registers cell kinds)

        func = _CELL_KINDS.get(spec.kind)
    if func is None:
        raise KeyError(
            f"unknown experiment kind {spec.kind!r}; known: {sorted(_CELL_KINDS)}"
        )
    return func(spec)


def _run_cell_timed(spec: ExperimentSpec) -> Tuple[Any, float]:
    """Run one cell and measure its wall time in-process (pool map target).

    Pool workers execute this instead of bare :func:`run_cell` so per-cell
    elapsed time is measured where the cell actually runs — the parent can't
    observe it (cells overlap across workers).  The compute span is opened
    here for the same reason: the worker process owns the cell's timeline.
    """
    with trace_span(
        active_tracer(), "cell.compute", cell_kind=spec.kind, benchmark=spec.benchmark
    ):
        t0 = time.perf_counter()
        payload = run_cell(spec)
        return payload, time.perf_counter() - t0


@dataclass
class CellProgress:
    """One engine progress event: a cell finished (from cache or computed)."""

    spec: ExperimentSpec
    index: int
    total: int
    cached: bool
    elapsed_s: Optional[float] = None


#: Progress callback signature: called once per cell, in completion order.
ProgressCallback = Callable[[CellProgress], None]


class ExperimentEngine:
    """Executes grids of :class:`ExperimentSpec` cells, serially or in parallel.

    When constructed with a :class:`~repro.analysis.store.ResultStore`, the
    engine becomes incremental: before dispatching a grid it partitions the
    specs into cache hits (returned as-is, zero computation) and misses (run
    serially or over the process pool, then persisted).  The cumulative
    ``cells_computed`` / ``cells_cached`` counters and the per-call
    ``last_stats`` expose the split — the warm-cache tests pin
    ``cells_computed == 0`` on a second run.
    """

    def __init__(
        self,
        parallelism: Optional[int] = None,
        fast: Optional[bool] = None,
        store: Optional["ResultStore"] = None,
        force: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.parallelism = (
            default_parallelism() if parallelism is None else max(1, int(parallelism))
        )
        self.fast = default_fast() if fast is None else bool(fast)
        self.store = store
        self.force = bool(force)
        self.progress = progress
        #: Cumulative counts since construction (all :meth:`map` calls).
        self.cells_computed = 0
        self.cells_cached = 0
        #: The (computed, cached) split of the most recent :meth:`map` call.
        self.last_stats: Tuple[int, int] = (0, 0)
        #: The tracer resolved by the most recent :meth:`map` call (``None``
        #: when ``REPRO_TRACE`` is off); ``_record`` reuses it for put spans.
        self._tracer = active_tracer(store.root if store is not None else None)

    def map(self, specs: Sequence[ExperimentSpec]) -> List[Any]:
        """Run every cell and return their payloads in spec order.

        With ``parallelism > 1`` the cache misses are distributed over a
        process pool; results are re-assembled in submission order, so
        callers see the same sequence for any parallelism and any cache
        temperature.
        """
        specs = list(specs)
        total = len(specs)
        payloads: List[Any] = [None] * total
        tracer = self._tracer = active_tracer(
            self.store.root if self.store is not None else None
        )

        with trace_span(
            tracer, "engine.map", cells=total, parallelism=self.parallelism
        ) as map_span:
            # Partition into cache hits and cells still to compute.
            missing: List[int] = []
            for i, spec in enumerate(specs):
                record = None
                if self.store is not None and not self.force:
                    record = self.store.get(spec)
                if record is not None:
                    payloads[i] = record.payload
                    self.cells_cached += 1
                    metrics_inc("repro_cells_cached_total")
                    self._notify(CellProgress(spec, i, total, cached=True))
                else:
                    missing.append(i)

            # Compute the misses (serially or over the pool) and persist them.
            workers = min(self.parallelism, len(missing))
            if workers <= 1:
                for i in missing:
                    key = (
                        self.store.key(specs[i])
                        if tracer is not None and self.store is not None
                        else None
                    )
                    with trace_span(
                        tracer,
                        "cell.compute",
                        key,
                        cell_kind=specs[i].kind,
                        benchmark=specs[i].benchmark,
                    ):
                        t0 = time.perf_counter()
                        payloads[i] = run_cell(specs[i])
                        elapsed = time.perf_counter() - t0
                    self._record(specs[i], payloads[i], i, total, elapsed)
            else:
                # Imported here, not at module top: single-worker runs (most CLI
                # invocations after the engine decides serially) never pay the
                # concurrent.futures/multiprocessing import.
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_pool_worker_init,
                    initargs=(graph_cache_enabled(), graph_cache_root()),
                ) as pool:
                    # Per-cell wall time is measured inside each worker (the
                    # parent can't observe it — cells overlap across workers),
                    # so records carry the true in-process compute cost.
                    for i, (payload, elapsed) in zip(
                        missing,
                        pool.map(_run_cell_timed, [specs[i] for i in missing]),
                    ):
                        payloads[i] = payload
                        self._record(specs[i], payload, i, total, elapsed)

            map_span.set(computed=len(missing), cached=total - len(missing))

        self.last_stats = (len(missing), total - len(missing))
        return payloads

    def _record(
        self,
        spec: ExperimentSpec,
        payload: Any,
        index: int,
        total: int,
        elapsed: Optional[float],
    ) -> None:
        """Persist one computed cell and fire the progress callback."""
        if self.store is not None:
            key = self.store.key(spec) if self._tracer is not None else None
            with trace_span(self._tracer, "cell.put", key, cell_kind=spec.kind):
                self.store.put(spec, payload, elapsed_s=elapsed)
        self.cells_computed += 1
        metrics_inc("repro_cells_computed_total")
        if elapsed is not None:
            metrics_observe("repro_cell_compute_seconds", elapsed)
        self._notify(CellProgress(spec, index, total, cached=False, elapsed_s=elapsed))

    def _notify(self, event: CellProgress) -> None:
        """Deliver one progress event to the callback, if any."""
        if self.progress is not None:
            self.progress(event)

    def run_grid(self, specs: Sequence[ExperimentSpec]) -> List["ExperimentResult"]:
        """Like :meth:`map`, but pairs every payload with its spec."""
        payloads = self.map(specs)
        return [ExperimentResult(spec=s, payload=p) for s, p in zip(specs, payloads)]


@dataclass
class ExperimentResult:
    """One executed cell: the spec that produced it plus its payload."""

    spec: ExperimentSpec
    payload: Any = field(default=None)
