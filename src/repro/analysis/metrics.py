"""Metric helpers shared by the experiment drivers and the test suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.core.engine import ReplicationDecisions
from repro.simulator.execution import SimulationResult


@dataclass
class AggregateReplication:
    """Average replication fractions across several benchmarks (Figure 3's "average" bars)."""

    mean_task_fraction: float
    mean_time_fraction: float
    per_benchmark: Dict[str, ReplicationDecisions] = field(default_factory=dict)

    @property
    def mean_task_percent(self) -> float:
        """Average percentage of tasks replicated."""
        return 100.0 * self.mean_task_fraction

    @property
    def mean_time_percent(self) -> float:
        """Average percentage of computation time replicated."""
        return 100.0 * self.mean_time_fraction


def aggregate_replication(decisions: Dict[str, ReplicationDecisions]) -> AggregateReplication:
    """Unweighted average of task/time replication fractions across benchmarks."""
    if not decisions:
        return AggregateReplication(0.0, 0.0, {})
    task_mean = sum(d.task_fraction for d in decisions.values()) / len(decisions)
    time_mean = sum(d.time_fraction for d in decisions.values()) / len(decisions)
    return AggregateReplication(task_mean, time_mean, dict(decisions))


@dataclass
class OverheadMeasurement:
    """Relative overhead of a protected run versus its fault-free baseline."""

    benchmark: str
    baseline_makespan_s: float
    replicated_makespan_s: float

    @property
    def overhead_fraction(self) -> float:
        """(replicated - baseline) / baseline."""
        if self.baseline_makespan_s <= 0:
            return 0.0
        return (self.replicated_makespan_s - self.baseline_makespan_s) / self.baseline_makespan_s

    @property
    def overhead_percent(self) -> float:
        """Overhead as a percentage."""
        return 100.0 * self.overhead_fraction


def overhead_percent(replicated: SimulationResult, baseline: SimulationResult) -> float:
    """Percentage overhead of one simulation relative to another."""
    return 100.0 * replicated.overhead_vs(baseline)


@dataclass
class ScalabilityCurve:
    """Speedups over a reference configuration for one benchmark and fault rate."""

    benchmark: str
    fault_rate: float
    x_values: List[int] = field(default_factory=list)
    makespans_s: List[float] = field(default_factory=list)

    @property
    def speedups(self) -> List[float]:
        """Speedup of every point relative to the first point."""
        if not self.makespans_s:
            return []
        ref = self.makespans_s[0]
        return [ref / m if m > 0 else 0.0 for m in self.makespans_s]

    @property
    def parallel_efficiency(self) -> List[float]:
        """Speedup divided by the resource ratio to the reference point."""
        if not self.x_values:
            return []
        ref = self.x_values[0]
        return [
            s / (x / ref) if x else 0.0 for s, x in zip(self.speedups, self.x_values)
        ]


def speedup_series(makespans_s: Sequence[float]) -> List[float]:
    """Speedups of a series of makespans relative to its first entry."""
    values = list(makespans_s)
    if not values:
        return []
    ref = values[0]
    return [ref / v if v > 0 else 0.0 for v in values]
