"""Experiment drivers: one function per paper table/figure plus ablations.

Every driver returns a result object carrying structured ``rows`` (dictionaries
with plain-Python values, easy to assert on in tests) and a ``render()`` method
producing the text table the benchmark harness prints.  ``scale=1.0``
reproduces the Table I problem sizes; the benchmark harness uses smaller scales
by default so the full suite completes in minutes (replication *percentages*
and speedup *shapes* are insensitive to the scale, which the tests verify).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import aggregate_replication
from repro.apps import create_benchmark
from repro.apps.base import Benchmark
from repro.apps.linpack import LinpackBenchmark
from repro.apps.matmul import MatmulBenchmark
from repro.apps.nbody import NbodyBenchmark
from repro.apps.pingpong import PingpongBenchmark
from repro.apps.registry import (
    all_benchmark_names,
    distributed_benchmark_names,
    shared_memory_benchmark_names,
)
from repro.core.engine import ReplicationDecisions, decide_for_graph
from repro.core.estimator import ArgumentSizeEstimator
from repro.core.heuristic import AppFit
from repro.core.knapsack import KnapsackOracle
from repro.core.policies import (
    CompleteReplication,
    RandomReplication,
    TopFitReplication,
)
from repro.faults.model import FailureModel
from repro.faults.rates import FitRateSpec
from repro.runtime.graph import TaskGraph
from repro.simulator.execution import SimulationConfig, simulate_graph
from repro.simulator.machine import MachineSpec, marenostrum_cluster, shared_memory_node
from repro.util.tables import TextTable

#: Alias used throughout: every experiment row is a flat dict.
ExperimentRow = Dict[str, object]


# ---------------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------------


def _machine_for(benchmark: Benchmark, cores_per_node: int = 16) -> MachineSpec:
    """The machine a benchmark is evaluated on (1 node shared / 64-node cluster)."""
    if benchmark.distributed:
        n_nodes = getattr(benchmark, "n_nodes", 64)
        return marenostrum_cluster(n_nodes=n_nodes, cores_per_node=cores_per_node)
    return shared_memory_node(cores=cores_per_node)


def _appfit_threshold(graph: TaskGraph, rate_spec: FitRateSpec) -> float:
    """The benchmark's current (1x) FIT — the Figure 3 threshold.

    Per DESIGN.md this is the unprotected application FIT the runtime's own
    bookkeeping reports at today's error rates; dividing the exascale rates by
    the multiplier (the paper's framing) is numerically identical.
    """
    return FailureModel(rate_spec.at_todays_rates()).graph_total_fit(graph)


def _unprotected_fit(graph: TaskGraph, replicated_ids, rate_spec: FitRateSpec) -> float:
    """Summed FIT of the tasks left unprotected, under ``rate_spec``."""
    model = FailureModel(rate_spec)
    return sum(
        model.task_total_fit(t) for t in graph.tasks() if t.task_id not in replicated_ids
    )


def _distributed_benchmark(name: str, n_nodes: int, scale: float) -> Benchmark:
    """Build a distributed benchmark for a specific node count (Figure 6)."""
    if name == "nbody":
        return NbodyBenchmark(
            n_bodies=65536, n_nodes=n_nodes, timesteps=max(1, int(round(4 * scale)))
        )
    if name == "matmul":
        return MatmulBenchmark(
            iterations=max(1, int(round(35 * scale))), n_nodes=n_nodes
        )
    if name == "pingpong":
        return PingpongBenchmark(
            n_nodes=n_nodes, iterations=max(2, int(round(200 * scale)))
        )
    if name == "linpack":
        import math

        p = int(math.sqrt(n_nodes))
        while p > 1 and n_nodes % p:
            p -= 1
        n_panels = max(8, int(round(512 * scale)))
        return LinpackBenchmark(
            matrix_size=n_panels * 256, block_size=256, grid_rows=p, grid_cols=n_nodes // p
        )
    raise KeyError(f"{name!r} is not a distributed benchmark")


# ---------------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------------


@dataclass
class Table1Result:
    """Reproduction of Table I: the benchmark inventory."""

    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text Table I."""
        table = TextTable(
            ["benchmark", "description", "problem", "block", "group", "tasks", "input MiB"],
            title="Table I — task-parallel benchmarks",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                row["description"],
                row["problem"],
                row["block"],
                "distributed" if row["distributed"] else "shared-memory",
                row["n_tasks"],
                row["input_mib"],
            )
        return table.render()


def table1_benchmark_inventory(
    scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None
) -> Table1Result:
    """Regenerate Table I (benchmark descriptions, sizes, blocks, task counts)."""
    names = list(benchmarks) if benchmarks is not None else all_benchmark_names()
    result = Table1Result()
    for name in names:
        bench = create_benchmark(name, scale=scale)
        info = bench.info()
        result.rows.append(
            {
                "benchmark": info.name,
                "description": info.description,
                "problem": info.problem,
                "block": info.block,
                "distributed": info.distributed,
                "n_tasks": info.n_tasks,
                "input_mib": info.input_mib,
            }
        )
    return result


# ---------------------------------------------------------------------------------
# Figure 3 — App_FIT selective replication
# ---------------------------------------------------------------------------------


@dataclass
class Figure3Result:
    """Reproduction of Figure 3: App_FIT replication percentages."""

    multipliers: Tuple[float, ...]
    rows: List[ExperimentRow] = field(default_factory=list)
    averages: Dict[float, Dict[str, float]] = field(default_factory=dict)

    def rows_for(self, multiplier: float) -> List[ExperimentRow]:
        """Rows of one error-rate multiplier."""
        return [r for r in self.rows if r["multiplier"] == multiplier]

    def render(self) -> str:
        """Plain-text Figure 3 (per-benchmark replication percentages)."""
        table = TextTable(
            [
                "benchmark",
                "rate",
                "% tasks replicated",
                "% computation time replicated",
                "threshold (FIT)",
                "achieved (FIT)",
                "threshold respected",
            ],
            title="Figure 3 — App_FIT selective replication",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                f"{row['multiplier']:.0f}x",
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
                row["threshold_fit"],
                row["achieved_fit"],
                row["threshold_respected"],
            )
        lines = [table.render(), ""]
        for mult, avg in self.averages.items():
            lines.append(
                f"average @ {mult:.0f}x rates: "
                f"{100.0 * avg['task_fraction']:.1f}% of tasks replicated, "
                f"{100.0 * avg['time_fraction']:.1f}% of computation time replicated"
            )
        return "\n".join(lines)


def figure3_appfit(
    scale: float = 1.0,
    multipliers: Sequence[float] = (10.0, 5.0),
    rate_spec: Optional[FitRateSpec] = None,
    residual_fit_factor: float = 0.0,
    benchmarks: Optional[Sequence[str]] = None,
) -> Figure3Result:
    """Run App_FIT on every benchmark at the given exascale rate multipliers.

    The threshold of each benchmark is its current (1x) FIT, so the heuristic
    must absorb the rate increase — the paper's Figure 3 scenario.
    """
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    names = list(benchmarks) if benchmarks is not None else all_benchmark_names()
    result = Figure3Result(multipliers=tuple(multipliers))
    per_mult: Dict[float, Dict[str, ReplicationDecisions]] = {m: {} for m in multipliers}

    for name in names:
        bench = create_benchmark(name, scale=scale)
        graph = bench.build_graph()
        threshold = _appfit_threshold(graph, spec)
        for mult in multipliers:
            scaled_spec = spec.scaled(mult)
            policy = AppFit(
                threshold=threshold,
                total_tasks=len(graph),
                estimator=ArgumentSizeEstimator(scaled_spec),
                residual_fit_factor=residual_fit_factor,
            )
            decisions = decide_for_graph(graph, policy)
            audit = policy.audit()
            per_mult[mult][name] = decisions
            result.rows.append(
                {
                    "benchmark": name,
                    "multiplier": mult,
                    "n_tasks": decisions.total_tasks,
                    "task_fraction": decisions.task_fraction,
                    "time_fraction": decisions.time_fraction,
                    "threshold_fit": threshold,
                    "achieved_fit": audit.current_fit,
                    "threshold_respected": audit.threshold_respected,
                    "envelope_respected": audit.envelope_respected,
                }
            )

    for mult in multipliers:
        agg = aggregate_replication(per_mult[mult])
        result.averages[mult] = {
            "task_fraction": agg.mean_task_fraction,
            "time_fraction": agg.mean_time_fraction,
        }
    return result


# ---------------------------------------------------------------------------------
# Figure 4 — task replication overheads
# ---------------------------------------------------------------------------------


@dataclass
class Figure4Result:
    """Reproduction of Figure 4: fault-free overhead of complete replication."""

    rows: List[ExperimentRow] = field(default_factory=list)

    @property
    def average_overhead_percent(self) -> float:
        """Unweighted average overhead across benchmarks."""
        if not self.rows:
            return 0.0
        return sum(r["overhead_percent"] for r in self.rows) / len(self.rows)

    def render(self) -> str:
        """Plain-text Figure 4."""
        table = TextTable(
            ["benchmark", "baseline makespan (s)", "replicated makespan (s)", "overhead %"],
            title="Figure 4 — complete task replication overheads (fault-free)",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                row["baseline_makespan_s"],
                row["replicated_makespan_s"],
                row["overhead_percent"],
            )
        return table.render() + f"\n\naverage overhead: {self.average_overhead_percent:.2f}%"


def figure4_overheads(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    cores_per_node: int = 16,
) -> Figure4Result:
    """Fault-free makespan overhead of complete replication vs no replication."""
    names = list(benchmarks) if benchmarks is not None else all_benchmark_names()
    result = Figure4Result()
    for name in names:
        bench = create_benchmark(name, scale=scale)
        graph = bench.build_graph()
        machine = _machine_for(bench, cores_per_node)
        baseline = simulate_graph(graph, machine, SimulationConfig())
        replicated = simulate_graph(graph, machine, SimulationConfig(replicate_all=True))
        result.rows.append(
            {
                "benchmark": name,
                "baseline_makespan_s": baseline.makespan_s,
                "replicated_makespan_s": replicated.makespan_s,
                "overhead_percent": 100.0 * replicated.overhead_vs(baseline),
            }
        )
    return result


# ---------------------------------------------------------------------------------
# Figures 5 & 6 — scalability of complete replication
# ---------------------------------------------------------------------------------


@dataclass
class ScalabilityResult:
    """Speedup curves of complete replication under fixed per-task fault rates."""

    title: str
    x_label: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def curve(self, benchmark: str, fault_rate: float) -> List[ExperimentRow]:
        """The rows of one benchmark/fault-rate curve, ordered by x."""
        rows = [
            r for r in self.rows if r["benchmark"] == benchmark and r["fault_rate"] == fault_rate
        ]
        return sorted(rows, key=lambda r: r["x"])

    def render(self) -> str:
        """Plain-text speedup table (one row per benchmark/fault-rate/point)."""
        table = TextTable(
            ["benchmark", "fault rate", self.x_label, "makespan (s)", "speedup"],
            title=self.title,
        )
        for row in sorted(self.rows, key=lambda r: (r["benchmark"], r["fault_rate"], r["x"])):
            table.add_row(
                row["benchmark"],
                row["fault_rate"],
                row["x"],
                row["makespan_s"],
                row["speedup"],
            )
        return table.render()


def figure5_scalability_shared(
    scale: float = 1.0,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    fault_rates: Sequence[float] = (0.0, 0.01, 0.05),
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ScalabilityResult:
    """Speedup over 1 core of complete replication for the shared-memory group."""
    names = (
        list(benchmarks) if benchmarks is not None else shared_memory_benchmark_names()
    )
    result = ScalabilityResult(
        title="Figure 5 — complete replication scalability (shared memory)",
        x_label="cores",
    )
    for name in names:
        bench = create_benchmark(name, scale=scale)
        graph = bench.build_graph()
        for rate in fault_rates:
            makespans: List[float] = []
            for cores in core_counts:
                machine = shared_memory_node(cores=cores)
                config = SimulationConfig(
                    replicate_all=True, crash_probability=rate, seed=seed
                )
                sim = simulate_graph(graph, machine, config)
                makespans.append(sim.makespan_s)
            ref = makespans[0]
            for cores, makespan in zip(core_counts, makespans):
                result.rows.append(
                    {
                        "benchmark": name,
                        "fault_rate": rate,
                        "x": cores,
                        "makespan_s": makespan,
                        "speedup": ref / makespan if makespan > 0 else 0.0,
                    }
                )
    return result


def figure6_scalability_distributed(
    scale: float = 1.0,
    node_counts: Sequence[int] = (4, 16, 64),
    cores_per_node: int = 16,
    fault_rates: Sequence[float] = (0.0, 0.01, 0.05),
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ScalabilityResult:
    """Speedup over the smallest configuration (64 cores in the paper) for the
    distributed group, with complete replication and fixed per-task fault rates."""
    names = (
        list(benchmarks) if benchmarks is not None else distributed_benchmark_names()
    )
    result = ScalabilityResult(
        title="Figure 6 — complete replication scalability (distributed)",
        x_label="cores",
    )
    for name in names:
        graphs = {
            n_nodes: _distributed_benchmark(name, n_nodes, scale).build_graph()
            for n_nodes in node_counts
        }
        for rate in fault_rates:
            makespans: List[float] = []
            core_points: List[int] = []
            for n_nodes in node_counts:
                machine = marenostrum_cluster(n_nodes=n_nodes, cores_per_node=cores_per_node)
                config = SimulationConfig(
                    replicate_all=True, crash_probability=rate, seed=seed
                )
                sim = simulate_graph(graphs[n_nodes], machine, config)
                makespans.append(sim.makespan_s)
                core_points.append(n_nodes * cores_per_node)
            ref = makespans[0]
            for cores, makespan in zip(core_points, makespans):
                result.rows.append(
                    {
                        "benchmark": name,
                        "fault_rate": rate,
                        "x": cores,
                        "makespan_s": makespan,
                        "speedup": ref / makespan if makespan > 0 else 0.0,
                    }
                )
    return result


# ---------------------------------------------------------------------------------
# Ablations (beyond the paper)
# ---------------------------------------------------------------------------------


@dataclass
class AblationPoliciesResult:
    """App_FIT versus offline/naive selection policies at the same threshold."""

    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text policy comparison."""
        table = TextTable(
            [
                "benchmark",
                "policy",
                "% tasks replicated",
                "% time replicated",
                "unprotected FIT",
                "meets threshold",
            ],
            title="Ablation — selection policies at the 10x exascale threshold",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                row["policy"],
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
                row["unprotected_fit"],
                row["meets_threshold"],
            )
        return table.render()


def ablation_policies(
    scale: float = 1.0,
    multiplier: float = 10.0,
    benchmarks: Sequence[str] = ("cholesky", "stream", "linpack"),
    rate_spec: Optional[FitRateSpec] = None,
    seed: int = 13,
) -> AblationPoliciesResult:
    """Compare App_FIT with the knapsack oracle and FIT-oblivious baselines."""
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    result = AblationPoliciesResult()
    for name in benchmarks:
        bench = create_benchmark(name, scale=scale)
        graph = bench.build_graph()
        threshold = _appfit_threshold(graph, spec)
        scaled_spec = spec.scaled(multiplier)
        estimator = ArgumentSizeEstimator(scaled_spec)

        appfit = AppFit(threshold, len(graph), estimator)
        appfit_dec = decide_for_graph(graph, appfit)

        oracle = KnapsackOracle(threshold, estimator)
        oracle_sol = oracle.solve(graph.tasks())

        fraction = appfit_dec.task_fraction
        from repro.util.rng import RngStream

        random_policy = RandomReplication(fraction, rng=RngStream(seed))
        random_dec = decide_for_graph(graph, random_policy)

        topfit = TopFitReplication(fraction, estimator)
        topfit_dec = decide_for_graph(graph, topfit)

        complete_dec = decide_for_graph(graph, CompleteReplication())

        total_duration = graph.total_work_seconds()

        def add_row(policy_name, replicated_ids, task_fraction, time_fraction):
            unprotected = _unprotected_fit(graph, replicated_ids, scaled_spec)
            result.rows.append(
                {
                    "benchmark": name,
                    "policy": policy_name,
                    "task_fraction": task_fraction,
                    "time_fraction": time_fraction,
                    "unprotected_fit": unprotected,
                    "threshold": threshold,
                    "meets_threshold": unprotected <= threshold * (1 + 1e-9),
                }
            )

        add_row("app_fit", appfit_dec.replicated_ids, appfit_dec.task_fraction, appfit_dec.time_fraction)
        add_row(
            "knapsack_oracle",
            oracle_sol.replicate_ids,
            oracle_sol.replication_task_fraction,
            oracle_sol.replication_time_fraction,
        )
        add_row("random", random_dec.replicated_ids, random_dec.task_fraction, random_dec.time_fraction)
        add_row("top_fit", topfit_dec.replicated_ids, topfit_dec.task_fraction, topfit_dec.time_fraction)
        add_row("complete", complete_dec.replicated_ids, complete_dec.task_fraction, complete_dec.time_fraction)
    return result


@dataclass
class RateSweepResult:
    """Replication demanded by App_FIT as error rates grow."""

    benchmark: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text rate sweep."""
        table = TextTable(
            ["rate multiplier", "residual FIT factor", "% tasks replicated", "% time replicated"],
            title=f"Ablation — error-rate sweep ({self.benchmark})",
        )
        for row in self.rows:
            table.add_row(
                row["multiplier"],
                row["residual_fit_factor"],
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
            )
        return table.render()


def ablation_rate_sweep(
    benchmark: str = "cholesky",
    scale: float = 1.0,
    multipliers: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0),
    residual_factors: Sequence[float] = (0.0, 0.1),
    rate_spec: Optional[FitRateSpec] = None,
) -> RateSweepResult:
    """Sweep the error-rate multiplier (and residual model) for one benchmark."""
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    bench = create_benchmark(benchmark, scale=scale)
    graph = bench.build_graph()
    threshold = _appfit_threshold(graph, spec)
    result = RateSweepResult(benchmark=benchmark)
    for residual in residual_factors:
        for mult in multipliers:
            policy = AppFit(
                threshold,
                len(graph),
                ArgumentSizeEstimator(spec.scaled(mult)),
                residual_fit_factor=residual,
            )
            decisions = decide_for_graph(graph, policy)
            result.rows.append(
                {
                    "multiplier": mult,
                    "residual_fit_factor": residual,
                    "task_fraction": decisions.task_fraction,
                    "time_fraction": decisions.time_fraction,
                }
            )
    return result


# ---------------------------------------------------------------------------------
# Quickstart helper
# ---------------------------------------------------------------------------------


def appfit_single_benchmark(
    benchmark_name: str = "cholesky",
    multiplier: float = 10.0,
    scale: float = 0.25,
) -> str:
    """One-benchmark App_FIT summary used by the README quickstart."""
    fig3 = figure3_appfit(scale=scale, multipliers=(multiplier,), benchmarks=(benchmark_name,))
    row = fig3.rows[0]
    lines = [
        f"benchmark            : {row['benchmark']} (scale {scale})",
        f"error-rate multiplier: {multiplier:.0f}x",
        f"tasks                : {row['n_tasks']}",
        f"tasks replicated     : {100.0 * row['task_fraction']:.1f}%",
        f"time replicated      : {100.0 * row['time_fraction']:.1f}%",
        f"FIT threshold        : {row['threshold_fit']:.4f}",
        f"FIT achieved         : {row['achieved_fit']:.4f}",
        f"threshold respected  : {row['threshold_respected']}",
    ]
    return "\n".join(lines)
