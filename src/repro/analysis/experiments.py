"""Experiment drivers: one function per paper table/figure plus ablations.

Every driver returns a result object carrying structured ``rows`` (dictionaries
with plain-Python values, easy to assert on in tests) and a ``render()`` method
producing the text table the benchmark harness prints.  ``scale=1.0``
reproduces the Table I problem sizes; the benchmark harness uses smaller scales
by default so the full suite completes in minutes (replication *percentages*
and speedup *shapes* are insensitive to the scale, which the tests verify).

Since the parallel-engine refactor each driver expresses its figure as a grid
of independent :class:`~repro.analysis.runner.ExperimentSpec` cells executed
by an :class:`~repro.analysis.runner.ExperimentEngine`:

* ``parallelism`` fans the grid out over worker processes (default: one per
  CPU, or ``REPRO_PARALLELISM``);
* ``fast`` selects the vectorized fault-evaluation fast path (default on;
  the scalar implementations remain the reference — pass ``fast=False``, set
  ``REPRO_REFERENCE=1``, or use the benchmark harness's ``--reference`` flag);
* generated task graphs are memoised per process keyed by
  (benchmark, scale, node count), so a graph is built once per run instead of
  once per policy x rate cell.

Cell payloads are plain row dictionaries, so results are identical for any
parallelism and worker scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import (
    ExperimentEngine,
    ExperimentSpec,
    benchmark_graph,
    benchmark_instance,
    cell_kind,
    compiled_sim_cache,
    default_fast,
    derive_seed,
    make_spec,
    sim_cache,
)
from repro.apps.base import Benchmark
from repro.apps.linpack import LinpackBenchmark
from repro.apps.matmul import MatmulBenchmark
from repro.apps.nbody import NbodyBenchmark
from repro.apps.pingpong import PingpongBenchmark
from repro.apps.registry import (
    all_benchmark_names,
    distributed_benchmark_names,
    shared_memory_benchmark_names,
)
from repro.core.engine import ReplicationDecisions, decide_for_graph
from repro.core.estimator import ArgumentSizeEstimator, estimate_total_fits
from repro.core.heuristic import AppFit
from repro.core.knapsack import KnapsackOracle
from repro.core.policies import (
    CompleteReplication,
    RandomReplication,
    TopFitReplication,
)
from repro.core.vectorized import decide_for_compiled, decide_for_graph_fast
from repro.faults.model import FailureModel
from repro.faults.rates import FitRateSpec
from repro.runtime.compiled import CompiledGraph
from repro.runtime.graph import TaskGraph
from repro.simulator.execution import SimulationConfig
from repro.simulator.fastpath import simulate, simulate_compiled, simulate_compiled_batch
from repro.simulator.machine import MachineSpec, marenostrum_cluster, shared_memory_node
from repro.util.tables import TextTable

#: Alias used throughout: every experiment row is a flat dict.
ExperimentRow = Dict[str, object]


# ---------------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------------


def _engine(
    engine: Optional[ExperimentEngine],
    parallelism: Optional[int],
    fast: Optional[bool],
) -> ExperimentEngine:
    """The engine a driver uses: an explicit one, or one built from the knobs."""
    if engine is not None:
        return engine
    return ExperimentEngine(parallelism=parallelism, fast=fast)


def _machine_for(benchmark: Benchmark, cores_per_node: int = 16) -> MachineSpec:
    """The machine a benchmark is evaluated on (1 node shared / 64-node cluster)."""
    if benchmark.distributed:
        n_nodes = getattr(benchmark, "n_nodes", 64)
        return marenostrum_cluster(n_nodes=n_nodes, cores_per_node=cores_per_node)
    return shared_memory_node(cores=cores_per_node)


def _replica_seeds(base_seed: int, n_seeds: int) -> List[int]:
    """The fault seeds a cell replays: its own seed plus derived replicas.

    Replica seeds come from :func:`~repro.analysis.runner.derive_seed`, so they
    are stable across processes and independent of how cells are scheduled.
    """
    return [base_seed] + [derive_seed(base_seed, "replica", j) for j in range(1, n_seeds)]


def _seed_makespans(cache, graph, machine, config, seeds, fast) -> List[float]:
    """Per-seed makespans of one cell simulation, one entry per fault seed.

    The fast path replays every seed as one batch over the shared replay
    arrays (:func:`simulate_compiled_batch`); the reference path loops the
    scalar simulator.  Both run seed ``s`` with ``replace(config, seed=s)``,
    so lane ``j`` is bit-identical to the corresponding single-seed run.
    """
    if fast:
        sims = simulate_compiled_batch(cache, machine, config, seeds=seeds)
    else:
        sims = [simulate(graph, machine, replace(config, seed=s), fast=False) for s in seeds]
    return [sim.makespan_s for sim in sims]


def _mean(values: Sequence[float]) -> float:
    """Arithmetic mean; exact pass-through for a single value (0 + x == x)."""
    return sum(values) / len(values)


def _appfit_threshold(graph: TaskGraph, rate_spec: FitRateSpec, fast: bool = False) -> float:
    """The benchmark's current (1x) FIT — the Figure 3 threshold.

    Per DESIGN.md this is the unprotected application FIT the runtime's own
    bookkeeping reports at today's error rates; dividing the exascale rates by
    the multiplier (the paper's framing) is numerically identical.  The fast
    variant batches the per-task estimation but sums in the same order, so
    both paths return the same float.
    """
    model = FailureModel(rate_spec.at_todays_rates())
    if fast:
        return sum(model.graph_fit_array(graph).tolist())
    return model.graph_total_fit(graph)


def _appfit_threshold_compiled(compiled: CompiledGraph, rate_spec: FitRateSpec) -> float:
    """:func:`_appfit_threshold` over a compiled graph's argument-byte array.

    Same per-byte rates, same array arithmetic and the same left-to-right
    float summation as the fast path over descriptors, so all three spellings
    return the identical float.
    """
    model = FailureModel(rate_spec.at_todays_rates())
    return sum(model.fit_array_for_bytes(compiled.arg_bytes).tolist())


def _unprotected_fit(graph: TaskGraph, replicated_ids, rate_spec: FitRateSpec) -> float:
    """Summed FIT of the tasks left unprotected, under ``rate_spec``."""
    model = FailureModel(rate_spec)
    return sum(
        model.task_total_fit(t) for t in graph.tasks() if t.task_id not in replicated_ids
    )


def _distributed_benchmark(name: str, n_nodes: int, scale: float) -> Benchmark:
    """Build a distributed benchmark for a specific node count (Figure 6)."""
    if name == "nbody":
        return NbodyBenchmark(
            n_bodies=65536, n_nodes=n_nodes, timesteps=max(1, int(round(4 * scale)))
        )
    if name == "matmul":
        return MatmulBenchmark(
            iterations=max(1, int(round(35 * scale))), n_nodes=n_nodes
        )
    if name == "pingpong":
        return PingpongBenchmark(
            n_nodes=n_nodes, iterations=max(2, int(round(200 * scale)))
        )
    if name == "linpack":
        import math

        p = int(math.sqrt(n_nodes))
        while p > 1 and n_nodes % p:
            p -= 1
        n_panels = max(8, int(round(512 * scale)))
        return LinpackBenchmark(
            matrix_size=n_panels * 256, block_size=256, grid_rows=p, grid_cols=n_nodes // p
        )
    raise KeyError(f"{name!r} is not a distributed benchmark")


def _appfit_decisions(
    graph: TaskGraph,
    threshold: float,
    estimator: ArgumentSizeEstimator,
    residual_fit_factor: float,
    fast: bool,
) -> ReplicationDecisions:
    """App_FIT over a whole graph: vectorized sweep or the scalar reference."""
    if fast:
        return decide_for_graph_fast(
            graph, threshold, estimator, residual_fit_factor=residual_fit_factor
        )
    policy = AppFit(
        threshold=threshold,
        total_tasks=len(graph),
        estimator=estimator,
        residual_fit_factor=residual_fit_factor,
    )
    decisions = decide_for_graph(graph, policy)
    decisions.audit = policy.audit()
    return decisions


# ---------------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------------


@dataclass
class Table1Result:
    """Reproduction of Table I: the benchmark inventory."""

    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text Table I."""
        table = TextTable(
            ["benchmark", "description", "problem", "block", "group", "tasks", "input MiB"],
            title="Table I — task-parallel benchmarks",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                row["description"],
                row["problem"],
                row["block"],
                "distributed" if row["distributed"] else "shared-memory",
                row["n_tasks"],
                row["input_mib"],
            )
        return table.render()


@cell_kind("table1_row")
def _table1_row(spec: ExperimentSpec) -> ExperimentRow:
    """One Table I row: the benchmark's inventory facts.

    On the fast path the task count comes from the compiled-graph cache, so a
    warm cache regenerates Table I without building a single task graph; the
    reference path builds the graph and counts it, as before.
    """
    bench = benchmark_instance(spec.benchmark, spec.scale)
    if spec.fast:
        info = bench.info(n_tasks=compiled_sim_cache(spec.benchmark, spec.scale).n)
    else:
        info = bench.info()
    return {
        "benchmark": info.name,
        "description": info.description,
        "problem": info.problem,
        "block": info.block,
        "distributed": info.distributed,
        "n_tasks": info.n_tasks,
        "input_mib": info.input_mib,
    }


def table1_benchmark_inventory(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Table1Result:
    """Regenerate Table I (benchmark descriptions, sizes, blocks, task counts)."""
    names = list(benchmarks) if benchmarks is not None else all_benchmark_names()
    eng = _engine(engine, parallelism, fast)
    specs = [make_spec("table1_row", name, scale, fast=eng.fast) for name in names]
    return Table1Result(rows=eng.map(specs))


# ---------------------------------------------------------------------------------
# Figure 3 — App_FIT selective replication
# ---------------------------------------------------------------------------------


@dataclass
class Figure3Result:
    """Reproduction of Figure 3: App_FIT replication percentages."""

    multipliers: Tuple[float, ...]
    rows: List[ExperimentRow] = field(default_factory=list)
    averages: Dict[float, Dict[str, float]] = field(default_factory=dict)

    def rows_for(self, multiplier: float) -> List[ExperimentRow]:
        """Rows of one error-rate multiplier."""
        return [r for r in self.rows if r["multiplier"] == multiplier]

    def render(self) -> str:
        """Plain-text Figure 3 (per-benchmark replication percentages)."""
        table = TextTable(
            [
                "benchmark",
                "rate",
                "% tasks replicated",
                "% computation time replicated",
                "threshold (FIT)",
                "achieved (FIT)",
                "threshold respected",
            ],
            title="Figure 3 — App_FIT selective replication",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                f"{row['multiplier']:.0f}x",
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
                row["threshold_fit"],
                row["achieved_fit"],
                row["threshold_respected"],
            )
        lines = [table.render(), ""]
        for mult, avg in self.averages.items():
            lines.append(
                f"average @ {mult:.0f}x rates: "
                f"{100.0 * avg['task_fraction']:.1f}% of tasks replicated, "
                f"{100.0 * avg['time_fraction']:.1f}% of computation time replicated"
            )
        return "\n".join(lines)


@cell_kind("fig3_cell")
def _fig3_cell(spec: ExperimentSpec) -> ExperimentRow:
    """One Figure 3 cell: App_FIT on one benchmark at one rate multiplier.

    The fast path works entirely from the compiled graph (threshold and
    decisions from the stored byte/duration arrays); the reference path walks
    the task descriptors.  Both produce bit-identical rows.
    """
    rate_spec: FitRateSpec = spec.param("rate_spec") or FitRateSpec()
    multiplier: float = spec.param("multiplier")
    residual: float = spec.param("residual_fit_factor", 0.0)
    estimator = ArgumentSizeEstimator(rate_spec.scaled(multiplier))
    if spec.fast:
        compiled = compiled_sim_cache(spec.benchmark, spec.scale).compiled
        threshold = _appfit_threshold_compiled(compiled, rate_spec)
        decisions = decide_for_compiled(
            compiled, threshold, estimator, residual_fit_factor=residual
        )
    else:
        graph = benchmark_graph(spec.benchmark, spec.scale)
        threshold = _appfit_threshold(graph, rate_spec, fast=False)
        decisions = _appfit_decisions(graph, threshold, estimator, residual, False)
    audit = decisions.audit
    return {
        "benchmark": spec.benchmark,
        "multiplier": multiplier,
        "n_tasks": decisions.total_tasks,
        "task_fraction": decisions.task_fraction,
        "time_fraction": decisions.time_fraction,
        "threshold_fit": threshold,
        "achieved_fit": audit.current_fit,
        "threshold_respected": audit.threshold_respected,
        "envelope_respected": audit.envelope_respected,
    }


def figure3_appfit(
    scale: float = 1.0,
    multipliers: Sequence[float] = (10.0, 5.0),
    rate_spec: Optional[FitRateSpec] = None,
    residual_fit_factor: float = 0.0,
    benchmarks: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Figure3Result:
    """Run App_FIT on every benchmark at the given exascale rate multipliers.

    The threshold of each benchmark is its current (1x) FIT, so the heuristic
    must absorb the rate increase — the paper's Figure 3 scenario.
    """
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    names = list(benchmarks) if benchmarks is not None else all_benchmark_names()
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "fig3_cell",
            name,
            scale,
            fast=eng.fast,
            multiplier=mult,
            rate_spec=spec,
            residual_fit_factor=residual_fit_factor,
        )
        for name in names
        for mult in multipliers
    ]
    result = Figure3Result(multipliers=tuple(multipliers), rows=eng.map(specs))
    for mult in multipliers:
        rows = result.rows_for(mult)
        if rows:
            result.averages[mult] = {
                "task_fraction": sum(r["task_fraction"] for r in rows) / len(rows),
                "time_fraction": sum(r["time_fraction"] for r in rows) / len(rows),
            }
        else:
            result.averages[mult] = {"task_fraction": 0.0, "time_fraction": 0.0}
    return result


# ---------------------------------------------------------------------------------
# Figure 4 — task replication overheads
# ---------------------------------------------------------------------------------


@dataclass
class Figure4Result:
    """Reproduction of Figure 4: fault-free overhead of complete replication."""

    rows: List[ExperimentRow] = field(default_factory=list)

    @property
    def average_overhead_percent(self) -> float:
        """Unweighted average overhead across benchmarks."""
        if not self.rows:
            return 0.0
        return sum(r["overhead_percent"] for r in self.rows) / len(self.rows)

    def render(self) -> str:
        """Plain-text Figure 4."""
        table = TextTable(
            ["benchmark", "baseline makespan (s)", "replicated makespan (s)", "overhead %"],
            title="Figure 4 — complete task replication overheads (fault-free)",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                row["baseline_makespan_s"],
                row["replicated_makespan_s"],
                row["overhead_percent"],
            )
        return table.render() + f"\n\naverage overhead: {self.average_overhead_percent:.2f}%"


@cell_kind("fig4_row")
def _fig4_row(spec: ExperimentSpec) -> ExperimentRow:
    """One Figure 4 row: simulate one benchmark bare and fully replicated.

    The fast path replays the compiled graph (no task objects are built when
    the compiled-graph cache is warm); the reference path simulates the real
    graph with the readable event loop.
    """
    cores_per_node: int = spec.param("cores_per_node", 16)
    bench = benchmark_instance(spec.benchmark, spec.scale)
    machine = _machine_for(bench, cores_per_node)
    if spec.fast:
        cache = compiled_sim_cache(spec.benchmark, spec.scale)
        baseline = simulate_compiled(
            cache, machine, SimulationConfig(collect_records=False)
        )
        replicated = simulate_compiled(
            cache,
            machine,
            SimulationConfig(replicate_all=True, collect_records=False),
        )
    else:
        graph = bench.build_graph()
        baseline = simulate(graph, machine, SimulationConfig(), fast=False)
        replicated = simulate(
            graph, machine, SimulationConfig(replicate_all=True), fast=False
        )
    return {
        "benchmark": spec.benchmark,
        "baseline_makespan_s": baseline.makespan_s,
        "replicated_makespan_s": replicated.makespan_s,
        "overhead_percent": 100.0 * replicated.overhead_vs(baseline),
    }


def figure4_overheads(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    cores_per_node: int = 16,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Figure4Result:
    """Fault-free makespan overhead of complete replication vs no replication."""
    names = list(benchmarks) if benchmarks is not None else all_benchmark_names()
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec("fig4_row", name, scale, fast=eng.fast, cores_per_node=cores_per_node)
        for name in names
    ]
    return Figure4Result(rows=eng.map(specs))


# ---------------------------------------------------------------------------------
# Figures 5 & 6 — scalability of complete replication
# ---------------------------------------------------------------------------------


@dataclass
class ScalabilityResult:
    """Speedup curves of complete replication under fixed per-task fault rates."""

    title: str
    x_label: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def curve(self, benchmark: str, fault_rate: float) -> List[ExperimentRow]:
        """The rows of one benchmark/fault-rate curve, ordered by x."""
        rows = [
            r for r in self.rows if r["benchmark"] == benchmark and r["fault_rate"] == fault_rate
        ]
        return sorted(rows, key=lambda r: r["x"])

    def render(self) -> str:
        """Plain-text speedup table (one row per benchmark/fault-rate/point)."""
        table = TextTable(
            ["benchmark", "fault rate", self.x_label, "makespan (s)", "speedup"],
            title=self.title,
        )
        for row in sorted(self.rows, key=lambda r: (r["benchmark"], r["fault_rate"], r["x"])):
            table.add_row(
                row["benchmark"],
                row["fault_rate"],
                row["x"],
                row["makespan_s"],
                row["speedup"],
            )
        return table.render()


def _speedup_rows(
    benchmark: str, fault_rate: float, x_points: Sequence[int], makespans: Sequence[float]
) -> List[ExperimentRow]:
    """Rows of one speedup curve, referenced to its first point."""
    ref = makespans[0]
    return [
        {
            "benchmark": benchmark,
            "fault_rate": fault_rate,
            "x": x,
            "makespan_s": makespan,
            "speedup": ref / makespan if makespan > 0 else 0.0,
        }
        for x, makespan in zip(x_points, makespans)
    ]


@cell_kind("fig5_curve")
def _fig5_curve(spec: ExperimentSpec) -> List[ExperimentRow]:
    """One Figure 5 curve: a core-count sweep at one fixed fault rate."""
    fault_rate: float = spec.param("fault_rate")
    core_counts: Sequence[int] = spec.param("core_counts")
    seeds = _replica_seeds(spec.seed, spec.param("n_seeds", 1))
    cache = graph = None
    if spec.fast:
        cache = compiled_sim_cache(spec.benchmark, spec.scale)
    else:
        graph = benchmark_graph(spec.benchmark, spec.scale)
    makespans: List[float] = []
    for cores in core_counts:
        machine = shared_memory_node(cores=cores)
        config = SimulationConfig(
            replicate_all=True,
            crash_probability=fault_rate,
            seed=spec.seed,
            collect_records=not spec.fast,
        )
        makespans.append(_mean(_seed_makespans(cache, graph, machine, config, seeds, spec.fast)))
    return _speedup_rows(spec.benchmark, fault_rate, list(core_counts), makespans)


def figure5_scalability_shared(
    scale: float = 1.0,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    fault_rates: Sequence[float] = (0.0, 0.01, 0.05),
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
    n_seeds: int = 1,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> ScalabilityResult:
    """Speedup over 1 core of complete replication for the shared-memory group.

    ``n_seeds > 1`` averages each makespan over that many fault seeds (the
    cell's own seed plus derived replicas); the fast path replays them as one
    batch.  The default of 1 reproduces the single-seed tables exactly.
    """
    names = (
        list(benchmarks) if benchmarks is not None else shared_memory_benchmark_names()
    )
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "fig5_curve",
            name,
            scale,
            seed=seed,
            fast=eng.fast,
            core_counts=tuple(core_counts),
            fault_rate=rate,
            n_seeds=n_seeds,
        )
        for name in names
        for rate in fault_rates
    ]
    result = ScalabilityResult(
        title="Figure 5 — complete replication scalability (shared memory)",
        x_label="cores",
    )
    for rows in eng.map(specs):
        result.rows.extend(rows)
    return result


@cell_kind("fig6_curve")
def _fig6_curve(spec: ExperimentSpec) -> List[ExperimentRow]:
    """One Figure 6 curve: a node-count sweep at one fixed fault rate."""
    fault_rate: float = spec.param("fault_rate")
    node_counts: Sequence[int] = spec.param("node_counts")
    cores_per_node: int = spec.param("cores_per_node", 16)
    seeds = _replica_seeds(spec.seed, spec.param("n_seeds", 1))
    makespans: List[float] = []
    core_points: List[int] = []
    for n_nodes in node_counts:
        machine = marenostrum_cluster(n_nodes=n_nodes, cores_per_node=cores_per_node)
        config = SimulationConfig(
            replicate_all=True,
            crash_probability=fault_rate,
            seed=spec.seed,
            collect_records=not spec.fast,
        )
        cache = graph = None
        if spec.fast:
            cache = compiled_sim_cache(spec.benchmark, spec.scale, n_nodes)
        else:
            graph = benchmark_graph(spec.benchmark, spec.scale, n_nodes)
        makespans.append(_mean(_seed_makespans(cache, graph, machine, config, seeds, spec.fast)))
        core_points.append(n_nodes * cores_per_node)
    return _speedup_rows(spec.benchmark, fault_rate, core_points, makespans)


def figure6_scalability_distributed(
    scale: float = 1.0,
    node_counts: Sequence[int] = (4, 16, 64),
    cores_per_node: int = 16,
    fault_rates: Sequence[float] = (0.0, 0.01, 0.05),
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
    n_seeds: int = 1,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> ScalabilityResult:
    """Speedup over the smallest configuration (64 cores in the paper) for the
    distributed group, with complete replication and fixed per-task fault rates.

    ``n_seeds > 1`` averages each makespan over that many fault seeds, batched
    on the fast path; the default of 1 reproduces the single-seed tables."""
    names = (
        list(benchmarks) if benchmarks is not None else distributed_benchmark_names()
    )
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "fig6_curve",
            name,
            scale,
            seed=seed,
            fast=eng.fast,
            node_counts=tuple(node_counts),
            cores_per_node=cores_per_node,
            fault_rate=rate,
            n_seeds=n_seeds,
        )
        for name in names
        for rate in fault_rates
    ]
    result = ScalabilityResult(
        title="Figure 6 — complete replication scalability (distributed)",
        x_label="cores",
    )
    for rows in eng.map(specs):
        result.rows.extend(rows)
    return result


# ---------------------------------------------------------------------------------
# Ablations (beyond the paper)
# ---------------------------------------------------------------------------------


@dataclass
class AblationPoliciesResult:
    """App_FIT versus offline/naive selection policies at the same threshold."""

    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text policy comparison."""
        table = TextTable(
            [
                "benchmark",
                "policy",
                "% tasks replicated",
                "% time replicated",
                "unprotected FIT",
                "meets threshold",
            ],
            title="Ablation — selection policies at the 10x exascale threshold",
        )
        for row in self.rows:
            table.add_row(
                row["benchmark"],
                row["policy"],
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
                row["unprotected_fit"],
                row["meets_threshold"],
            )
        return table.render()


def _unprotected_fit_fn(graph, estimator, scaled_spec, use_fast):
    """A ``replicated_ids -> unprotected FIT`` function (vectorized when fast).

    Shared by the policies ablation and ``repro sweep`` so both price the
    unprotected remainder identically on either path.
    """
    if use_fast:
        tasks = graph.tasks()
        fits = estimate_total_fits(estimator, tasks).tolist()

        def unprotected_fit_of(replicated_ids):
            return sum(
                fit for task, fit in zip(tasks, fits) if task.task_id not in replicated_ids
            )

        return unprotected_fit_of
    return lambda replicated_ids: _unprotected_fit(graph, replicated_ids, scaled_spec)


def _unprotected_fit_fn_compiled(compiled: CompiledGraph, estimator):
    """The compiled-graph twin of :func:`_unprotected_fit_fn` (fast variant).

    Same task order, same per-task FITs, same left-to-right summation — just
    sourced from the stored id/byte arrays instead of descriptors.
    """
    from repro.core.vectorized import compiled_total_fits

    tids = compiled.task_ids.tolist()
    fits = compiled_total_fits(estimator, compiled).tolist()

    def unprotected_fit_of(replicated_ids):
        return sum(fit for tid, fit in zip(tids, fits) if tid not in replicated_ids)

    return unprotected_fit_of


def _policy_decision(graph, policy_name, threshold, estimator, appfit_dec, seed):
    """(replicated_ids, task_fraction, time_fraction) of one named policy.

    The single dispatch shared by the policies ablation and ``repro sweep``:
    the budget-bounded baselines (``top_fit``, ``random``) reuse App_FIT's
    replica budget (``appfit_dec.task_fraction``), so comparisons isolate
    *selection quality* from budget size.  ``appfit_dec`` may be ``None`` for
    the policies that never consult it (``knapsack_oracle``, ``complete``).
    """
    if policy_name == "app_fit":
        return appfit_dec.replicated_ids, appfit_dec.task_fraction, appfit_dec.time_fraction
    if policy_name == "knapsack_oracle":
        solution = KnapsackOracle(threshold, estimator).solve(graph.tasks())
        return (
            solution.replicate_ids,
            solution.replication_task_fraction,
            solution.replication_time_fraction,
        )
    if policy_name == "top_fit":
        decided = decide_for_graph(
            graph, TopFitReplication(appfit_dec.task_fraction, estimator)
        )
    elif policy_name == "random":
        from repro.util.rng import RngStream

        decided = decide_for_graph(
            graph,
            RandomReplication(appfit_dec.task_fraction, rng=RngStream(seed)),
        )
    elif policy_name == "complete":
        decided = decide_for_graph(graph, CompleteReplication())
    else:
        raise KeyError(f"unknown sweep policy {policy_name!r}; known: {SWEEP_POLICIES}")
    return decided.replicated_ids, decided.task_fraction, decided.time_fraction


@cell_kind("ablation_policies_cell")
def _ablation_policies_cell(spec: ExperimentSpec) -> List[ExperimentRow]:
    """All five selection policies on one benchmark (one cached cell).

    The policies share the App_FIT decision (its task fraction is the replica
    budget of the FIT-oblivious baselines) and the per-task FIT estimates, so
    the whole benchmark is one cell rather than five.
    """
    name = spec.benchmark
    rate_spec: FitRateSpec = spec.param("rate_spec") or FitRateSpec()
    multiplier: float = spec.param("multiplier")
    use_fast = spec.fast
    rows: List[ExperimentRow] = []

    graph = benchmark_graph(name, spec.scale)
    threshold = _appfit_threshold(graph, rate_spec, fast=use_fast)
    scaled_spec = rate_spec.scaled(multiplier)
    estimator = ArgumentSizeEstimator(scaled_spec)

    appfit_dec = _appfit_decisions(graph, threshold, estimator, 0.0, use_fast)
    unprotected_fit_of = _unprotected_fit_fn(graph, estimator, scaled_spec, use_fast)

    for policy_name in ("app_fit", "knapsack_oracle", "random", "top_fit", "complete"):
        replicated_ids, task_fraction, time_fraction = _policy_decision(
            graph, policy_name, threshold, estimator, appfit_dec, spec.seed
        )
        unprotected = unprotected_fit_of(replicated_ids)
        rows.append(
            {
                "benchmark": name,
                "policy": policy_name,
                "task_fraction": task_fraction,
                "time_fraction": time_fraction,
                "unprotected_fit": unprotected,
                "threshold": threshold,
                "meets_threshold": unprotected <= threshold * (1 + 1e-9),
            }
        )
    return rows


def ablation_policies(
    scale: float = 1.0,
    multiplier: float = 10.0,
    benchmarks: Sequence[str] = ("cholesky", "stream", "linpack"),
    rate_spec: Optional[FitRateSpec] = None,
    seed: int = 13,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> AblationPoliciesResult:
    """Compare App_FIT with the knapsack oracle and FIT-oblivious baselines."""
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "ablation_policies_cell",
            name,
            scale,
            seed=seed,
            fast=eng.fast,
            multiplier=multiplier,
            rate_spec=spec,
        )
        for name in benchmarks
    ]
    result = AblationPoliciesResult()
    for rows in eng.map(specs):
        result.rows.extend(rows)
    return result


@dataclass
class RateSweepResult:
    """Replication demanded by App_FIT as error rates grow."""

    benchmark: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text rate sweep."""
        table = TextTable(
            ["rate multiplier", "residual FIT factor", "% tasks replicated", "% time replicated"],
            title=f"Ablation — error-rate sweep ({self.benchmark})",
        )
        for row in self.rows:
            table.add_row(
                row["multiplier"],
                row["residual_fit_factor"],
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
            )
        return table.render()


@cell_kind("rate_sweep_cell")
def _rate_sweep_cell(spec: ExperimentSpec) -> ExperimentRow:
    """One rate-sweep cell: App_FIT demand at one (multiplier, residual) point."""
    rate_spec: FitRateSpec = spec.param("rate_spec") or FitRateSpec()
    multiplier: float = spec.param("multiplier")
    residual: float = spec.param("residual_fit_factor", 0.0)
    estimator = ArgumentSizeEstimator(rate_spec.scaled(multiplier))
    if spec.fast:
        compiled = compiled_sim_cache(spec.benchmark, spec.scale).compiled
        threshold = _appfit_threshold_compiled(compiled, rate_spec)
        decisions = decide_for_compiled(
            compiled, threshold, estimator, residual_fit_factor=residual
        )
    else:
        graph = benchmark_graph(spec.benchmark, spec.scale)
        threshold = _appfit_threshold(graph, rate_spec, fast=False)
        decisions = _appfit_decisions(graph, threshold, estimator, residual, False)
    return {
        "multiplier": multiplier,
        "residual_fit_factor": residual,
        "task_fraction": decisions.task_fraction,
        "time_fraction": decisions.time_fraction,
    }


def ablation_rate_sweep(
    benchmark: str = "cholesky",
    scale: float = 1.0,
    multipliers: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0),
    residual_factors: Sequence[float] = (0.0, 0.1),
    rate_spec: Optional[FitRateSpec] = None,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> RateSweepResult:
    """Sweep the error-rate multiplier (and residual model) for one benchmark."""
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "rate_sweep_cell",
            benchmark,
            scale,
            fast=eng.fast,
            multiplier=mult,
            residual_fit_factor=residual,
            rate_spec=spec,
        )
        for residual in residual_factors
        for mult in multipliers
    ]
    return RateSweepResult(benchmark=benchmark, rows=eng.map(specs))


# ---------------------------------------------------------------------------------
# Arbitrary benchmark x policy x rate sweeps (the `repro sweep` command)
# ---------------------------------------------------------------------------------

#: Replication-selection policies `repro sweep` can grid over.
SWEEP_POLICIES: Tuple[str, ...] = (
    "app_fit",
    "knapsack_oracle",
    "top_fit",
    "random",
    "complete",
)


@dataclass
class SweepResult:
    """An arbitrary benchmark x policy x rate-multiplier grid."""

    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text sweep table (one row per benchmark/policy/multiplier)."""
        table = TextTable(
            [
                "benchmark",
                "policy",
                "rate",
                "% tasks replicated",
                "% time replicated",
                "unprotected FIT",
                "meets threshold",
            ],
            title="Sweep — replication policies across benchmarks and error rates",
        )
        for row in sorted(
            self.rows, key=lambda r: (r["benchmark"], r["policy"], r["multiplier"])
        ):
            table.add_row(
                row["benchmark"],
                row["policy"],
                f"{row['multiplier']:g}x",
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
                row["unprotected_fit"],
                row["meets_threshold"],
            )
        return table.render()


@cell_kind("policy_cell")
def _policy_cell(spec: ExperimentSpec) -> ExperimentRow:
    """One sweep cell: a named policy on one benchmark at one rate multiplier.

    The budget-bounded baselines (``top_fit``, ``random``) reuse App_FIT's
    replica budget, so the comparison isolates *selection quality* from
    budget size — the same framing as the policies ablation.
    """
    policy_name: str = spec.param("policy")
    multiplier: float = spec.param("multiplier")
    rate_spec: FitRateSpec = spec.param("rate_spec") or FitRateSpec()
    residual: float = spec.param("residual_fit_factor", 0.0)

    scaled_spec = rate_spec.scaled(multiplier)
    estimator = ArgumentSizeEstimator(scaled_spec)

    if spec.fast and policy_name == "app_fit":
        # App_FIT is a pure function of the compiled arrays — no task graph.
        # The baseline policies walk real descriptors and keep the graph path.
        compiled = compiled_sim_cache(spec.benchmark, spec.scale).compiled
        threshold = _appfit_threshold_compiled(compiled, rate_spec)
        appfit_dec = decide_for_compiled(
            compiled, threshold, estimator, residual_fit_factor=residual
        )
        replicated_ids = appfit_dec.replicated_ids
        task_fraction = appfit_dec.task_fraction
        time_fraction = appfit_dec.time_fraction
        unprotected = _unprotected_fit_fn_compiled(compiled, estimator)(
            set(replicated_ids)
        )
    else:
        graph = benchmark_graph(spec.benchmark, spec.scale)
        threshold = _appfit_threshold(graph, rate_spec, fast=spec.fast)
        # complete/knapsack_oracle never consult the App_FIT decision — skip
        # the whole-graph sweep for those cells.
        appfit_dec = (
            _appfit_decisions(graph, threshold, estimator, residual, spec.fast)
            if policy_name in ("app_fit", "top_fit", "random")
            else None
        )
        replicated_ids, task_fraction, time_fraction = _policy_decision(
            graph, policy_name, threshold, estimator, appfit_dec, spec.seed
        )
        unprotected = _unprotected_fit_fn(graph, estimator, scaled_spec, spec.fast)(
            set(replicated_ids)
        )
    return {
        "benchmark": spec.benchmark,
        "policy": policy_name,
        "multiplier": multiplier,
        "task_fraction": task_fraction,
        "time_fraction": time_fraction,
        "unprotected_fit": unprotected,
        "threshold": threshold,
        "meets_threshold": unprotected <= threshold * (1 + 1e-9),
    }


def sweep_policies(
    benchmarks: Sequence[str],
    policies: Sequence[str] = ("app_fit",),
    multipliers: Sequence[float] = (10.0,),
    scale: float = 1.0,
    seed: int = 13,
    rate_spec: Optional[FitRateSpec] = None,
    residual_fit_factor: float = 0.0,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> SweepResult:
    """Run an arbitrary benchmark x policy x rate grid on the engine.

    Each (benchmark, policy, multiplier) combination is one independent
    cached cell, so repeated sweeps over overlapping grids recompute only
    the new combinations.
    """
    spec = rate_spec if rate_spec is not None else FitRateSpec()
    for policy in policies:
        if policy not in SWEEP_POLICIES:
            raise KeyError(f"unknown sweep policy {policy!r}; known: {SWEEP_POLICIES}")
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "policy_cell",
            name,
            scale,
            seed=seed,
            fast=eng.fast,
            policy=policy,
            multiplier=mult,
            rate_spec=spec,
            residual_fit_factor=residual_fit_factor,
        )
        for name in benchmarks
        for policy in policies
        for mult in multipliers
    ]
    return SweepResult(rows=eng.map(specs))


# ---------------------------------------------------------------------------------
# Synthetic-workload sweeps (the `repro sweep --workload` command)
# ---------------------------------------------------------------------------------


@dataclass
class WorkloadSweepResult:
    """A workload x policy x rate-multiplier x fault-rate grid.

    Unlike the Table I sweep, every workload cell also *simulates* the chosen
    replication set, so the rows pair the selection-quality numbers
    (fractions, unprotected FIT) with their runtime cost (makespan overhead
    versus the unreplicated baseline at the same fault rate).
    """

    rows: List[ExperimentRow] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text workload sweep table."""
        table = TextTable(
            [
                "workload",
                "policy",
                "rate",
                "fault rate",
                "tasks",
                "% tasks repl",
                "% time repl",
                "unprotected FIT",
                "meets threshold",
                "baseline (s)",
                "selective (s)",
                "overhead %",
            ],
            title="Sweep — replication policies on synthetic workloads",
        )
        for row in sorted(
            self.rows,
            key=lambda r: (r["workload"], r["policy"], r["multiplier"], r["fault_rate"]),
        ):
            table.add_row(
                row["workload"],
                row["policy"],
                f"{row['multiplier']:g}x",
                row["fault_rate"],
                row["n_tasks"],
                100.0 * row["task_fraction"],
                100.0 * row["time_fraction"],
                row["unprotected_fit"],
                row["meets_threshold"],
                row["baseline_makespan_s"],
                row["selective_makespan_s"],
                row["overhead_percent"],
            )
        return table.render()


@cell_kind("workload_cell")
def _workload_cell(spec: ExperimentSpec) -> ExperimentRow:
    """One workload sweep cell: selection + simulation on a synthetic graph.

    ``spec.benchmark`` carries the *canonical* workload spec string (see
    :mod:`repro.workloads.spec`), so the results-store hash and the
    compiled-graph content address both cover the full workload identity —
    family, every parameter, seed, and (for traces) the file digest.

    The fast path keeps App_FIT and the simulation entirely on the compiled
    arrays; the baseline policies walk real descriptors for their decisions,
    like :func:`_policy_cell`.  Fast and reference rows are bit-identical.
    """
    policy_name: str = spec.param("policy")
    multiplier: float = spec.param("multiplier")
    fault_rate: float = spec.param("fault_rate", 0.0)
    rate_spec: FitRateSpec = spec.param("rate_spec") or FitRateSpec()
    residual: float = spec.param("residual_fit_factor", 0.0)
    cores: int = spec.param("cores", 16)
    seeds = _replica_seeds(spec.seed, spec.param("n_seeds", 1))

    scaled_spec = rate_spec.scaled(multiplier)
    estimator = ArgumentSizeEstimator(scaled_spec)
    machine = shared_memory_node(cores=cores)

    if spec.fast:
        cache = compiled_sim_cache(spec.benchmark, spec.scale)
        compiled = cache.compiled
        n_tasks = compiled.n
        threshold = _appfit_threshold_compiled(compiled, rate_spec)
        if policy_name == "app_fit":
            appfit_dec = decide_for_compiled(
                compiled, threshold, estimator, residual_fit_factor=residual
            )
            replicated_ids = appfit_dec.replicated_ids
            task_fraction = appfit_dec.task_fraction
            time_fraction = appfit_dec.time_fraction
            unprotected = _unprotected_fit_fn_compiled(compiled, estimator)(
                set(replicated_ids)
            )
        else:
            graph = benchmark_graph(spec.benchmark, spec.scale)
            appfit_dec = (
                _appfit_decisions(graph, threshold, estimator, residual, True)
                if policy_name in ("top_fit", "random")
                else None
            )
            replicated_ids, task_fraction, time_fraction = _policy_decision(
                graph, policy_name, threshold, estimator, appfit_dec, spec.seed
            )
            unprotected = _unprotected_fit_fn(graph, estimator, scaled_spec, True)(
                set(replicated_ids)
            )
        sim_config = dict(
            crash_probability=fault_rate, seed=spec.seed, collect_records=False
        )
        baseline_s = _mean(
            _seed_makespans(cache, None, machine, SimulationConfig(**sim_config), seeds, True)
        )
        selective_s = _mean(
            _seed_makespans(
                cache,
                None,
                machine,
                SimulationConfig(replicated_ids=set(replicated_ids), **sim_config),
                seeds,
                True,
            )
        )
    else:
        graph = benchmark_graph(spec.benchmark, spec.scale)
        n_tasks = len(graph)
        threshold = _appfit_threshold(graph, rate_spec, fast=False)
        appfit_dec = (
            _appfit_decisions(graph, threshold, estimator, residual, False)
            if policy_name in ("app_fit", "top_fit", "random")
            else None
        )
        replicated_ids, task_fraction, time_fraction = _policy_decision(
            graph, policy_name, threshold, estimator, appfit_dec, spec.seed
        )
        unprotected = _unprotected_fit_fn(graph, estimator, scaled_spec, False)(
            set(replicated_ids)
        )
        sim_config = dict(crash_probability=fault_rate, seed=spec.seed)
        baseline_s = _mean(
            _seed_makespans(None, graph, machine, SimulationConfig(**sim_config), seeds, False)
        )
        selective_s = _mean(
            _seed_makespans(
                None,
                graph,
                machine,
                SimulationConfig(replicated_ids=set(replicated_ids), **sim_config),
                seeds,
                False,
            )
        )
    overhead = (selective_s - baseline_s) / baseline_s if baseline_s > 0 else 0.0
    return {
        "workload": spec.benchmark,
        "policy": policy_name,
        "multiplier": multiplier,
        "fault_rate": fault_rate,
        "n_tasks": n_tasks,
        "task_fraction": task_fraction,
        "time_fraction": time_fraction,
        "unprotected_fit": unprotected,
        "threshold": threshold,
        "meets_threshold": unprotected <= threshold * (1 + 1e-9),
        "baseline_makespan_s": baseline_s,
        "selective_makespan_s": selective_s,
        "overhead_percent": 100.0 * overhead,
    }


def workload_sweep(
    workloads: Sequence[str],
    policies: Sequence[str] = ("app_fit",),
    multipliers: Sequence[float] = (10.0, 5.0),
    fault_rates: Sequence[float] = (0.0, 0.01),
    scale: float = 1.0,
    seed: int = 0,
    n_seeds: int = 1,
    rate_spec: Optional[FitRateSpec] = None,
    residual_fit_factor: float = 0.0,
    cores: int = 16,
    engine: Optional[ExperimentEngine] = None,
    parallelism: Optional[int] = None,
    fast: Optional[bool] = None,
) -> WorkloadSweepResult:
    """Sweep replication policies x error rates x fault rates over workloads.

    ``workloads`` are spec strings (``layered:depth=12,width=8,seed=7``; see
    :mod:`repro.workloads.spec` for the grammar) and are canonicalised here,
    so differently spelled but identical specs share cells — each (workload,
    policy, multiplier, fault rate) combination is one independently cached
    cell, exactly like the Table I sweep.
    """
    from repro.workloads.spec import parse_workload

    spec = rate_spec if rate_spec is not None else FitRateSpec()
    for policy in policies:
        if policy not in SWEEP_POLICIES:
            raise KeyError(f"unknown sweep policy {policy!r}; known: {SWEEP_POLICIES}")
    canonical = [parse_workload(w).canonical for w in workloads]
    eng = _engine(engine, parallelism, fast)
    specs = [
        make_spec(
            "workload_cell",
            name,
            scale,
            seed=seed,
            fast=eng.fast,
            policy=policy,
            multiplier=mult,
            fault_rate=rate,
            rate_spec=spec,
            residual_fit_factor=residual_fit_factor,
            cores=cores,
            n_seeds=n_seeds,
        )
        for name in canonical
        for policy in policies
        for mult in multipliers
        for rate in fault_rates
    ]
    return WorkloadSweepResult(rows=eng.map(specs))


# ---------------------------------------------------------------------------------
# Quickstart helper
# ---------------------------------------------------------------------------------


def appfit_single_benchmark(
    benchmark_name: str = "cholesky",
    multiplier: float = 10.0,
    scale: float = 0.25,
) -> str:
    """One-benchmark App_FIT summary used by the README quickstart."""
    fig3 = figure3_appfit(scale=scale, multipliers=(multiplier,), benchmarks=(benchmark_name,))
    row = fig3.rows[0]
    lines = [
        f"benchmark            : {row['benchmark']} (scale {scale})",
        f"error-rate multiplier: {multiplier:.0f}x",
        f"tasks                : {row['n_tasks']}",
        f"tasks replicated     : {100.0 * row['task_fraction']:.1f}%",
        f"time replicated      : {100.0 * row['time_fraction']:.1f}%",
        f"FIT threshold        : {row['threshold_fit']:.4f}",
        f"FIT achieved         : {row['achieved_fit']:.4f}",
        f"threshold respected  : {row['threshold_respected']}",
    ]
    return "\n".join(lines)
