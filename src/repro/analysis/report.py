"""Paper reference values and qualitative checks.

The reproduction cannot (and does not try to) match the paper's absolute
numbers — the substrate is a simulator, the SDC rate constant is not published,
and footnote 3 of the paper omits the per-benchmark thresholds.  What must
hold is the *shape* of the results.  This module records the paper's headline
numbers and the qualitative claims the test-suite and EXPERIMENTS.md check
against.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.experiments import Figure3Result, Figure4Result, ScalabilityResult

#: Headline numbers quoted in the paper (Section V-A and the abstract).
PAPER_REFERENCE: Dict[str, float] = {
    # Figure 3 averages.
    "fig3_task_percent_10x": 53.0,
    "fig3_time_percent_10x": 60.0,
    "fig3_task_percent_5x": 30.0,
    "fig3_time_percent_5x": 36.0,
    # Figure 4 average fault-free overhead of complete replication.
    "fig4_average_overhead_percent": 2.5,
}


def qualitative_checks(
    fig3: Figure3Result | None = None,
    fig4: Figure4Result | None = None,
    fig5: ScalabilityResult | None = None,
) -> List[str]:
    """Evaluate the paper's qualitative claims against measured results.

    Returns a list of human-readable failures (empty means every claim holds).
    """
    failures: List[str] = []

    if fig3 is not None:
        mult_high = max(fig3.averages) if fig3.averages else None
        mult_low = min(fig3.averages) if fig3.averages else None
        if mult_high is not None:
            avg_high = fig3.averages[mult_high]
            # Takeaway 1: complete replication is not required.
            if avg_high["task_fraction"] >= 0.999:
                failures.append(
                    "Figure 3: App_FIT replicated essentially all tasks at the "
                    "highest rate multiplier — complete replication should not be needed"
                )
            if mult_low is not None and mult_low != mult_high:
                avg_low = fig3.averages[mult_low]
                if avg_low["task_fraction"] > avg_high["task_fraction"] + 1e-9:
                    failures.append(
                        "Figure 3: lower error rates demanded more replication than higher rates"
                    )
        for row in fig3.rows:
            if not row["threshold_respected"]:
                failures.append(
                    f"Figure 3: benchmark {row['benchmark']} exceeded its FIT threshold "
                    f"at {row['multiplier']:.0f}x rates"
                )

    if fig4 is not None:
        if fig4.average_overhead_percent > 15.0:
            failures.append(
                "Figure 4: average replication overhead is far above the paper's "
                f"low-overhead claim ({fig4.average_overhead_percent:.1f}%)"
            )
        for row in fig4.rows:
            if row["overhead_percent"] < -1.0:
                failures.append(
                    f"Figure 4: negative overhead for {row['benchmark']} — "
                    "the baseline/replicated runs are inconsistent"
                )

    if fig5 is not None:
        benchmarks = {r["benchmark"] for r in fig5.rows}
        for bench in benchmarks:
            curve = fig5.curve(bench, fault_rate=0.0)
            if len(curve) >= 2:
                max_speedup = max(r["speedup"] for r in curve)
                max_cores = max(r["x"] for r in curve)
                if bench != "stream" and max_speedup < 0.3 * max_cores:
                    failures.append(
                        f"Figure 5: {bench} does not scale "
                        f"(speedup {max_speedup:.1f} on {max_cores} cores)"
                    )
                if bench == "stream" and max_speedup > 0.6 * max_cores:
                    failures.append(
                        "Figure 5: stream scales almost linearly, but the paper "
                        "(and its memory-bound nature) say it should not"
                    )
    return failures
