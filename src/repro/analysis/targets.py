"""The figure/table target registry: one named entry per reproducible artifact.

This is the single source of truth for *what* ``repro run <target>`` (and
``repro report``) regenerates and *how its text artifact is composed*: the
benchmark harness under ``benchmarks/`` renders its ``results/*.txt`` files
through the same ``*_recorded_text`` helpers, so the CLI, the nightly
benchmark run, and the committed goldens can never drift apart.

Each :class:`Target` builds its result through the (cache-aware)
:class:`~repro.analysis.runner.ExperimentEngine` it is handed, and returns a
:class:`TargetOutput` bundling the result object, the recorded text (the
exact ``benchmarks/results/<artifact>.txt`` content), and a flat list of row
dictionaries for the JSON/CSV artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.analysis.experiments import (
    ExperimentRow,
    Figure3Result,
    Figure4Result,
    RateSweepResult,
    WorkloadSweepResult,
    ablation_policies,
    ablation_rate_sweep,
    figure3_appfit,
    figure4_overheads,
    figure5_scalability_shared,
    figure6_scalability_distributed,
    table1_benchmark_inventory,
)
from repro.analysis.report import PAPER_REFERENCE
from repro.analysis.runner import ExperimentEngine

#: Scale floor for the Figure 5 curves: scalability needs enough parallelism
#: in the graph, so this figure never runs below half the Table I sizes (the
#: same rule the benchmark harness applies).
FIG5_MIN_SCALE: float = 0.5

#: Benchmarks of the two ablations (matching the benchmark harness).
ABLATION_POLICY_BENCHMARKS: Tuple[str, ...] = ("cholesky", "stream", "linpack")
ABLATION_RATE_BENCHMARKS: Tuple[str, ...] = ("cholesky", "stream", "matmul")


@dataclass
class TargetOutput:
    """Everything ``repro run`` emits for one target."""

    result: object
    text: str
    rows: List[ExperimentRow]
    #: Provenance corrections for the JSON artifact: the *effective* values
    #: when a builder deviates from the requested ones (fig5's scale floor,
    #: the ablation's pinned seed).
    meta: Dict[str, Any] = field(default_factory=dict)


#: A target builder: (scale, seed, engine, n_seeds=...) -> output.  Every
#: builder accepts ``n_seeds`` so the CLI can pass it uniformly; targets whose
#: cells never draw faults (table1, fig3, fig4, the ablations) ignore it.
TargetBuilder = Callable[..., TargetOutput]

#: Meta override for targets whose cells use no randomness: their JSON
#: provenance records ``"seed": null`` instead of echoing the (unused) CLI seed.
_SEEDLESS: Dict[str, Any] = {"seed": None}


@dataclass(frozen=True)
class Target:
    """One runnable figure/table: CLI name, artifact stem, and builder."""

    name: str
    artifact: str
    description: str
    build: TargetBuilder


# ---------------------------------------------------------------------------------
# recorded-text composition (shared with the benchmark harness)
# ---------------------------------------------------------------------------------


def fig3_recorded_text(result: Figure3Result) -> str:
    """The Figure 3 artifact text: the table plus the paper-reference footer."""
    avg10 = result.averages.get(10.0, {"task_fraction": 0.0, "time_fraction": 0.0})
    avg5 = result.averages.get(5.0, {"task_fraction": 0.0, "time_fraction": 0.0})
    return result.render() + (
        "\n\npaper reference: "
        f"{PAPER_REFERENCE['fig3_task_percent_10x']:.0f}% tasks / "
        f"{PAPER_REFERENCE['fig3_time_percent_10x']:.0f}% time at 10x, "
        f"{PAPER_REFERENCE['fig3_task_percent_5x']:.0f}% tasks / "
        f"{PAPER_REFERENCE['fig3_time_percent_5x']:.0f}% time at 5x\n"
        f"measured       : {100 * avg10['task_fraction']:.1f}% tasks / "
        f"{100 * avg10['time_fraction']:.1f}% time at 10x, "
        f"{100 * avg5['task_fraction']:.1f}% tasks / "
        f"{100 * avg5['time_fraction']:.1f}% time at 5x"
    )


def fig4_recorded_text(result: Figure4Result) -> str:
    """The Figure 4 artifact text: the table plus the paper-reference footer."""
    return result.render() + (
        "\npaper reference: "
        f"{PAPER_REFERENCE['fig4_average_overhead_percent']:.1f}% average overhead"
    )


def rate_sweep_recorded_text(results: Sequence[RateSweepResult]) -> str:
    """The rate-sweep ablation artifact text: one table per benchmark."""
    return "\n\n".join(result.render() for result in results)


def workload_sweep_recorded_text(result: WorkloadSweepResult) -> str:
    """The ``repro sweep --workload`` artifact text: table + workload legend.

    The legend lists each canonical workload spec once so the (long) spec
    strings are greppable even when a consumer only keeps the footer.  Like
    every composer here, the output is a pure function of the rows — two cold
    runs in different processes emit byte-identical artifacts.
    """
    names = sorted({str(row["workload"]) for row in result.rows})
    legend = "\n".join(f"  {name}" for name in names)
    return result.render() + ("\n\nworkloads swept:\n" + legend if names else "")


def render_artifact_texts(output: TargetOutput, meta: Dict[str, Any]) -> Dict[str, str]:
    """The txt/json/csv artifact contents of one target output.

    Single source of truth for artifact bytes: ``repro run`` writes these
    strings to files and the sweep service serves them over HTTP, so a target
    computed locally and one drained through ``repro serve`` produce
    byte-identical artifacts.  ``meta`` must carry only deterministic
    provenance (scale, seed, code version — never timestamps or job ids).
    """
    import csv
    import io
    import json

    fieldnames: List[str] = []
    for row in output.rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    for row in output.rows:
        writer.writerow(row)
    return {
        "txt": output.text + "\n",
        "json": json.dumps({**meta, "rows": output.rows}, indent=2) + "\n",
        "csv": buf.getvalue(),
    }


# ---------------------------------------------------------------------------------
# target builders
# ---------------------------------------------------------------------------------


def _build_table1(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Table I: the benchmark inventory."""
    result = table1_benchmark_inventory(scale=scale, engine=engine)
    return TargetOutput(
        result=result, text=result.render(), rows=list(result.rows), meta=_SEEDLESS
    )


def _build_fig3(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Figure 3: App_FIT replication percentages at 10x and 5x rates."""
    result = figure3_appfit(scale=scale, multipliers=(10.0, 5.0), engine=engine)
    return TargetOutput(
        result=result, text=fig3_recorded_text(result), rows=list(result.rows), meta=_SEEDLESS
    )


def _build_fig4(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Figure 4: fault-free overhead of complete replication."""
    result = figure4_overheads(scale=scale, engine=engine)
    return TargetOutput(
        result=result, text=fig4_recorded_text(result), rows=list(result.rows), meta=_SEEDLESS
    )


def _build_fig5(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Figure 5: shared-memory scalability (with the 0.5 scale floor)."""
    effective_scale = max(scale, FIG5_MIN_SCALE)
    result = figure5_scalability_shared(
        scale=effective_scale,
        core_counts=(1, 2, 4, 8, 16),
        fault_rates=(0.0, 0.01, 0.05),
        seed=seed,
        n_seeds=n_seeds,
        engine=engine,
    )
    return TargetOutput(
        result=result,
        text=result.render(),
        rows=list(result.rows),
        meta={"scale": effective_scale},
    )


def _build_fig6(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Figure 6: distributed scalability on the simulated cluster."""
    result = figure6_scalability_distributed(
        scale=scale,
        node_counts=(4, 16, 64),
        fault_rates=(0.0, 0.01),
        seed=seed,
        n_seeds=n_seeds,
        engine=engine,
    )
    return TargetOutput(result=result, text=result.render(), rows=list(result.rows))


def _build_ablation_policies(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Policies ablation: App_FIT vs oracle and naive baselines."""
    # The random-baseline seed (13) is part of the ablation's definition — the
    # committed golden depends on it — so the CLI seed is deliberately unused.
    result = ablation_policies(
        scale=scale, benchmarks=ABLATION_POLICY_BENCHMARKS, engine=engine
    )
    return TargetOutput(
        result=result, text=result.render(), rows=list(result.rows), meta={"seed": 13}
    )


def _build_ablation_rates(
    scale: float, seed: int, engine: ExperimentEngine, n_seeds: int = 1
) -> TargetOutput:
    """Rates ablation: App_FIT demand across multipliers, per benchmark."""
    results = [
        ablation_rate_sweep(
            bench,
            scale=scale,
            multipliers=(1.0, 2.0, 5.0, 10.0, 20.0),
            residual_factors=(0.0, 0.1),
            engine=engine,
        )
        for bench in ABLATION_RATE_BENCHMARKS
    ]
    rows = [
        {"benchmark": result.benchmark, **row} for result in results for row in result.rows
    ]
    return TargetOutput(
        result=results, text=rate_sweep_recorded_text(results), rows=rows, meta=_SEEDLESS
    )


#: All runnable targets, keyed by CLI name (``repro run <name>``).
TARGETS: Dict[str, Target] = {
    t.name: t
    for t in (
        Target(
            "table1",
            "table1_inventory",
            "Table I — benchmark inventory (sizes, blocks, task counts)",
            _build_table1,
        ),
        Target(
            "fig3",
            "fig3_appfit",
            "Figure 3 — App_FIT selective replication at 10x/5x exascale rates",
            _build_fig3,
        ),
        Target(
            "fig4",
            "fig4_overheads",
            "Figure 4 — fault-free overhead of complete replication",
            _build_fig4,
        ),
        Target(
            "fig5",
            "fig5_scalability_shared",
            "Figure 5 — shared-memory scalability under complete replication "
            f"(scale floor {FIG5_MIN_SCALE})",
            _build_fig5,
        ),
        Target(
            "fig6",
            "fig6_scalability_distributed",
            "Figure 6 — distributed scalability under complete replication",
            _build_fig6,
        ),
        Target(
            "ablation-policies",
            "ablation_policies",
            "Ablation — App_FIT vs knapsack oracle and naive baselines",
            _build_ablation_policies,
        ),
        Target(
            "ablation-rates",
            "ablation_rate_sweep",
            "Ablation — App_FIT sensitivity to the error-rate multiplier",
            _build_ablation_rates,
        ),
    )
}


def resolve_targets(names: Sequence[str]) -> List[Target]:
    """Expand CLI target names (including ``all``) into :class:`Target` objects."""
    if not names or list(names) == ["all"]:
        return list(TARGETS.values())
    targets: List[Target] = []
    for name in names:
        if name == "all":
            targets.extend(t for t in TARGETS.values() if t not in targets)
            continue
        target = TARGETS.get(name)
        if target is None:
            known = ", ".join(sorted(TARGETS))
            raise KeyError(f"unknown target {name!r}; known targets: {known}, all")
        if target not in targets:
            targets.append(target)
    return targets
