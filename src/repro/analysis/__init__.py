"""Metrics and experiment drivers that regenerate the paper's tables and figures.

The drivers in :mod:`repro.analysis.experiments` run on the parallel
experiment engine of :mod:`repro.analysis.runner`: each figure is a grid of
independent :class:`~repro.analysis.runner.ExperimentSpec` cells that an
:class:`~repro.analysis.runner.ExperimentEngine` executes serially or across
a process pool, with generated task graphs memoised per worker.  Every driver
accepts ``parallelism=`` and ``fast=`` knobs (``fast=False`` selects the
scalar reference implementations; see ``examples/parallel_sweep.py``).
"""

from repro.analysis.runner import (
    ExperimentEngine,
    ExperimentResult,
    ExperimentSpec,
    configure_defaults,
    derive_seed,
    make_spec,
)
from repro.analysis.metrics import (
    AggregateReplication,
    OverheadMeasurement,
    ScalabilityCurve,
    aggregate_replication,
    overhead_percent,
    speedup_series,
)
from repro.analysis.experiments import (
    ExperimentRow,
    Figure3Result,
    Figure4Result,
    ScalabilityResult,
    Table1Result,
    AblationPoliciesResult,
    RateSweepResult,
    appfit_single_benchmark,
    ablation_policies,
    ablation_rate_sweep,
    figure3_appfit,
    figure4_overheads,
    figure5_scalability_shared,
    figure6_scalability_distributed,
    table1_benchmark_inventory,
)
from repro.analysis.report import PAPER_REFERENCE, qualitative_checks

__all__ = [
    "AblationPoliciesResult",
    "AggregateReplication",
    "ExperimentEngine",
    "ExperimentResult",
    "ExperimentRow",
    "ExperimentSpec",
    "Figure3Result",
    "Figure4Result",
    "OverheadMeasurement",
    "PAPER_REFERENCE",
    "RateSweepResult",
    "ScalabilityCurve",
    "ScalabilityResult",
    "Table1Result",
    "ablation_policies",
    "ablation_rate_sweep",
    "aggregate_replication",
    "appfit_single_benchmark",
    "configure_defaults",
    "derive_seed",
    "make_spec",
    "figure3_appfit",
    "figure4_overheads",
    "figure5_scalability_shared",
    "figure6_scalability_distributed",
    "overhead_percent",
    "qualitative_checks",
    "speedup_series",
    "table1_benchmark_inventory",
]
