"""Metrics, experiment drivers, results store and targets for the paper's evaluation.

The drivers in :mod:`repro.analysis.experiments` run on the parallel
experiment engine of :mod:`repro.analysis.runner`: each figure is a grid of
independent :class:`~repro.analysis.runner.ExperimentSpec` cells that an
:class:`~repro.analysis.runner.ExperimentEngine` executes serially or across
a process pool, with generated task graphs memoised per worker.  Every driver
accepts ``parallelism=`` and ``fast=`` knobs (``fast=False`` selects the
scalar reference implementations; see ``examples/parallel_sweep.py``) or a
pre-built ``engine=``.

Since the results-store refactor, an engine can carry a
:class:`~repro.analysis.store.ResultStore`: cell payloads are persisted as
content-addressed JSON records (keyed by a hash of the spec plus the code
version), so re-running any figure/table skips already-computed cells and
interrupted sweeps resume mid-grid — see :mod:`repro.analysis.store` for the
invariants and :mod:`repro.analysis.targets` for the named figure/table
registry the ``repro`` CLI (:mod:`repro.cli`) exposes.
"""

from repro.analysis.runner import (
    CellProgress,
    ExperimentEngine,
    ExperimentResult,
    ExperimentSpec,
    configure_defaults,
    derive_seed,
    make_spec,
)
from repro.analysis.store import ResultStore, StoreRecord, code_version, spec_key
from repro.analysis.metrics import (
    AggregateReplication,
    OverheadMeasurement,
    ScalabilityCurve,
    aggregate_replication,
    overhead_percent,
    speedup_series,
)
from repro.analysis.experiments import (
    ExperimentRow,
    Figure3Result,
    Figure4Result,
    ScalabilityResult,
    Table1Result,
    AblationPoliciesResult,
    RateSweepResult,
    SweepResult,
    appfit_single_benchmark,
    ablation_policies,
    ablation_rate_sweep,
    figure3_appfit,
    figure4_overheads,
    figure5_scalability_shared,
    figure6_scalability_distributed,
    sweep_policies,
    table1_benchmark_inventory,
)
from repro.analysis.report import PAPER_REFERENCE, qualitative_checks
from repro.analysis.targets import TARGETS, Target, TargetOutput, resolve_targets

__all__ = [
    "AblationPoliciesResult",
    "AggregateReplication",
    "CellProgress",
    "ExperimentEngine",
    "ExperimentResult",
    "ExperimentRow",
    "ExperimentSpec",
    "Figure3Result",
    "Figure4Result",
    "OverheadMeasurement",
    "PAPER_REFERENCE",
    "RateSweepResult",
    "ResultStore",
    "ScalabilityCurve",
    "ScalabilityResult",
    "StoreRecord",
    "SweepResult",
    "TARGETS",
    "Table1Result",
    "Target",
    "TargetOutput",
    "ablation_policies",
    "ablation_rate_sweep",
    "aggregate_replication",
    "appfit_single_benchmark",
    "code_version",
    "configure_defaults",
    "derive_seed",
    "make_spec",
    "figure3_appfit",
    "figure4_overheads",
    "figure5_scalability_shared",
    "figure6_scalability_distributed",
    "overhead_percent",
    "qualitative_checks",
    "resolve_targets",
    "spec_key",
    "speedup_series",
    "sweep_policies",
    "table1_benchmark_inventory",
]
