"""JSON trace import/export for externally described workflows.

The trace format is deliberately minimal — the four quantities the
replication pipeline consumes (structure, durations, output sizes, task
types) and nothing else::

    {
      "name": "my-workflow",               # optional label
      "tasks": [
        {"id": 0, "type": "load", "duration_s": 0.01, "output_bytes": 65536,
         "deps": []},
        {"id": 1, "type": "solve", "duration_s": 0.25, "output_bytes": 4096,
         "deps": [0]}
      ]
    }

Tasks must be listed in a topological order (every ``deps`` entry refers to an
*earlier* task), ids must be unique, and durations/output sizes must be
strictly positive — :func:`load_trace` validates all of it up front so a bad
file can never produce a silently wrong graph.

:func:`export_trace` writes any :class:`~repro.runtime.graph.TaskGraph` in
this format (``repro workloads gen <spec> --out file.json`` uses it), and the
import of an exported synthetic workload compiles to the *identical* array
form — the workload smoke tool checks that round trip on every run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.runtime.graph import TaskGraph
from repro.runtime.runtime import TaskRuntime


@dataclass(frozen=True)
class TraceTask:
    """One validated trace entry."""

    task_id: int
    task_type: str
    duration_s: float
    output_bytes: float
    deps: Tuple[int, ...]


@dataclass(frozen=True)
class Trace:
    """A validated, topologically ordered list of trace tasks."""

    name: str
    tasks: Tuple[TraceTask, ...]


def _parse_task(index: int, doc: object, seen: Dict[int, int]) -> TraceTask:
    """Validate one raw task document; raises ``ValueError`` with context."""
    if not isinstance(doc, dict):
        raise ValueError(f"trace task #{index} is not an object: {doc!r}")
    try:
        task_id = int(doc["id"])
    except (KeyError, TypeError, ValueError):
        raise ValueError(f"trace task #{index} has no integer 'id'")
    if task_id in seen:
        raise ValueError(f"trace task #{index} duplicates id {task_id}")
    duration = float(doc.get("duration_s", 0.0))
    output_bytes = float(doc.get("output_bytes", 0.0))
    if duration <= 0.0:
        raise ValueError(f"trace task {task_id} needs a strictly positive duration_s")
    if output_bytes <= 0.0:
        raise ValueError(f"trace task {task_id} needs strictly positive output_bytes")
    deps_raw = doc.get("deps", [])
    if not isinstance(deps_raw, list):
        raise ValueError(f"trace task {task_id} 'deps' is not a list")
    deps: List[int] = []
    for dep in deps_raw:
        dep = int(dep)
        if dep not in seen:
            raise ValueError(
                f"trace task {task_id} depends on {dep}, which is not an "
                "earlier task (traces must be topologically ordered)"
            )
        if dep == task_id:
            raise ValueError(f"trace task {task_id} depends on itself")
        deps.append(dep)
    return TraceTask(
        task_id=task_id,
        task_type=str(doc.get("type", "task")),
        duration_s=duration,
        output_bytes=output_bytes,
        deps=tuple(deps),
    )


def parse_trace(doc: object) -> Trace:
    """Validate a decoded trace document into a :class:`Trace`."""
    if not isinstance(doc, dict) or not isinstance(doc.get("tasks"), list):
        raise ValueError("a trace document is an object with a 'tasks' list")
    seen: Dict[int, int] = {}
    tasks: List[TraceTask] = []
    for index, raw in enumerate(doc["tasks"]):
        task = _parse_task(index, raw, seen)
        seen[task.task_id] = index
        tasks.append(task)
    if not tasks:
        raise ValueError("a trace needs at least one task")
    return Trace(name=str(doc.get("name", "trace")), tasks=tuple(tasks))


def load_trace(path: str) -> Trace:
    """Load and validate a trace JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"trace file {path} is not valid JSON: {exc}")
    return parse_trace(doc)


def build_trace_graph(trace: Trace, runtime: TaskRuntime) -> None:
    """Submit every trace task into ``runtime`` (dependencies via regions).

    Each task owns one output region sized ``output_bytes`` and reads its
    dependencies' regions whole, so the inferred read-after-write edges are
    exactly the trace's ``deps`` lists and the per-task byte accounting
    matches what the synthetic generators produce.
    """
    regions = {}
    for task in trace.tasks:
        region = runtime.register_region(
            f"t{task.task_id}", task.output_bytes
        ).whole()
        runtime.submit(
            task_type=task.task_type,
            in_=[regions[dep] for dep in task.deps],
            out=[region],
            duration_s=task.duration_s,
        )
        regions[task.task_id] = region


def graph_to_trace_doc(graph: TaskGraph) -> Dict[str, object]:
    """The trace document of a task graph (inverse of the importer).

    Tasks are emitted in submission order — a topological order for every
    graph the runtime builds — with their output byte counts and sorted
    dependency lists.
    """
    tasks = []
    for task in graph.iter_submission_order():
        tasks.append(
            {
                "id": task.task_id,
                "type": task.task_type,
                "duration_s": task.duration_s,
                "output_bytes": task.output_bytes,
                "deps": sorted(graph.predecessors(task.task_id)),
            }
        )
    return {"name": graph.name, "tasks": tasks}


def export_trace(graph: TaskGraph, path: str) -> None:
    """Write a task graph as a trace JSON file (stable key order, one line per level)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(graph_to_trace_doc(graph), fh, indent=1, sort_keys=True)
        fh.write("\n")
