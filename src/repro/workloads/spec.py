"""The workload spec grammar: ``family:key=value,key=value``.

A *workload spec* names one synthetic task graph (or one imported trace)
exactly: the generator family plus every generator parameter, including the
RNG seed.  Specs have a **canonical form** — every parameter present (defaults
filled in), sorted by name, values rendered with shortest round-trip ``repr``
— and that canonical string is used verbatim as the benchmark name everywhere
downstream: the apps registry, ``ExperimentSpec.benchmark``, the results-store
hash and the compiled-graph store hash.  Two spellings of the same workload
therefore share every cache entry, and two different workloads can never
collide.

Grammar::

    spec    := family [":" params]
    params  := param ("," param)*
    param   := name "=" value          # value: int, float, or string

Examples::

    layered:depth=12,width=8,seed=7
    erdos:tasks=200,p=0.08
    trace:file=runs/lu_trace.json

The problem ``scale`` is *not* part of the spec: like the Table I benchmarks,
workloads are scaled at graph-build time and the scale travels separately
through :class:`~repro.analysis.runner.ExperimentSpec` and the compiled-graph
key.  Parameters marked ``scaled`` in the family table shrink/grow with it.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Parameter value types a spec can carry.
ParamValue = Any  # int | float | str


@dataclass(frozen=True)
class Param:
    """One generator parameter: its type, default, floor, and scaling rule."""

    name: str
    kind: type  # int, float or str
    default: Optional[ParamValue]
    #: Documentation string for ``repro workloads ls``.
    doc: str = ""
    #: Whether the parameter shrinks/grows with the problem scale.
    scaled: bool = False
    #: Floor applied after scaling (and validation floor for int/float params).
    minimum: Optional[ParamValue] = None
    #: Closed vocabulary for string parameters (``None`` = free-form).
    choices: Optional[Tuple[str, ...]] = None

    def validate(self, value: ParamValue) -> ParamValue:
        """Coerce and range-check one parsed value; raises ``ValueError``."""
        try:
            value = self.kind(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"parameter {self.name}={value!r} is not a valid {self.kind.__name__}"
            )
        if self.minimum is not None and self.kind is not str and value < self.minimum:
            raise ValueError(
                f"parameter {self.name}={value!r} must be >= {self.minimum}"
            )
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"parameter {self.name}={value!r} must be one of "
                f"{', '.join(self.choices)}"
            )
        return value

    def effective(self, value: ParamValue, scale: float) -> ParamValue:
        """The value actually used at a problem scale (floored, ints rounded)."""
        if not self.scaled or scale == 1.0:
            return value
        scaled = value * scale
        if self.kind is int:
            scaled = int(round(scaled))
        floor = self.minimum if self.minimum is not None else (1 if self.kind is int else 0.0)
        return max(floor, scaled)


@dataclass(frozen=True)
class Family:
    """One workload family: its name, parameters and documentation."""

    name: str
    description: str
    params: Tuple[Param, ...]
    #: Structural guarantees the property-based tests pin down.
    promises: Tuple[str, ...] = ()

    def param(self, name: str) -> Param:
        """Look up a parameter definition by name."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"family {self.name!r} has no parameter {name!r}")


#: Distribution parameters shared by every synthetic family.
_COMMON: Tuple[Param, ...] = (
    Param("seed", int, 0, "RNG seed of the duration/structure draws", minimum=0),
    Param("mean_ms", float, 5.0, "mean task duration in milliseconds", minimum=1e-6),
    Param("cv", float, 0.25, "lognormal coefficient of variation of durations (0 = constant)", minimum=0.0),
    Param("block_kib", float, 256.0, "output block size per task in KiB", minimum=1e-3),
    Param("block_cv", float, 0.0, "lognormal coefficient of variation of block sizes (0 = constant)", minimum=0.0),
)

#: Every workload family, in presentation order.
FAMILIES: Dict[str, Family] = {
    f.name: f
    for f in (
        Family(
            "layered",
            "Layered random DAG: depth x width grid, random fan-in between adjacent layers",
            (
                Param("depth", int, 12, "number of layers", scaled=True, minimum=2),
                Param("width", int, 8, "tasks per layer", scaled=True, minimum=1),
                Param("fanin", int, 3, "max predecessors drawn per task", minimum=1),
            )
            + _COMMON,
            promises=("acyclic", "in_degree<=fanin"),
        ),
        Family(
            "erdos",
            "Erdos-Renyi DAG: each forward pair (i, j) is an edge with probability p",
            (
                Param("tasks", int, 160, "number of tasks", scaled=True, minimum=4),
                Param("p", float, 0.05, "forward edge probability", minimum=0.0),
                Param(
                    "sampling",
                    str,
                    "dense",
                    "edge sampling: dense (one uniform per earlier task, the "
                    "legacy draw order) or skip (geometric inter-arrival, "
                    "O(edges) — required beyond ~10^5 tasks)",
                    choices=("dense", "skip"),
                ),
            )
            + _COMMON,
            promises=("acyclic",),
        ),
        Family(
            "forkjoin",
            "Repeated fork-join: fork -> width workers -> join, chained over stages",
            (
                Param("stages", int, 4, "number of fork-join stages", scaled=True, minimum=1),
                Param("width", int, 16, "parallel workers per stage", scaled=True, minimum=1),
            )
            + _COMMON,
            promises=("acyclic", "single_source", "single_sink", "in_degree<=width"),
        ),
        Family(
            "pipeline",
            "Software pipeline: stage s of item i waits for stage s-1 of i and stage s of i-1",
            (
                Param("stages", int, 6, "pipeline depth", scaled=True, minimum=2),
                Param("items", int, 24, "items streamed through the pipeline", scaled=True, minimum=2),
            )
            + _COMMON,
            promises=("acyclic", "single_source", "single_sink", "in_degree<=2"),
        ),
        Family(
            "wavefront",
            "Wavefront/stencil sweep: cell (i, j) waits for (i-1, j), (i, j-1) and (i-1, j-1)",
            (
                Param("rows", int, 12, "grid rows", scaled=True, minimum=2),
                Param("cols", int, 12, "grid columns", scaled=True, minimum=2),
            )
            + _COMMON,
            promises=("acyclic", "single_source", "single_sink", "in_degree<=3"),
        ),
        Family(
            "mapreduce",
            "Mapreduce rounds: maps shuffle all-to-all into reduces, reduces feed the next round",
            (
                Param("maps", int, 32, "map tasks per round", scaled=True, minimum=2),
                Param("reduces", int, 8, "reduce tasks per round", scaled=True, minimum=1),
                Param("rounds", int, 2, "number of chained rounds", scaled=True, minimum=1),
            )
            + _COMMON,
            promises=("acyclic", "in_degree<=maps"),
        ),
        Family(
            "trace",
            "Imported JSON trace (see repro.workloads.trace for the schema)",
            (
                Param("file", str, None, "path of the trace JSON file"),
                Param("sha256", str, "", "content digest (filled in automatically)"),
            ),
            promises=("acyclic",),
        ),
    )
}


def family_names() -> List[str]:
    """All workload family names, in presentation order."""
    return list(FAMILIES)


def is_workload_name(name: str) -> bool:
    """Whether a benchmark name designates a workload spec.

    Workload names are either a bare family name (all defaults) or a
    ``family:params`` spec string; Table I benchmark names contain no colon
    and never collide with a family name.
    """
    return name.split(":", 1)[0] in FAMILIES


def _render_value(value: ParamValue) -> str:
    """Canonical rendering of one parameter value (shortest exact round-trip)."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("boolean workload parameters are not supported")
    if isinstance(value, (int, float)):
        return repr(value)
    return str(value)


def _digest_file(path: str) -> str:
    """SHA-256 hex digest of a file's content (the trace cache-key component)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class WorkloadSpec:
    """One fully resolved workload: family plus every parameter value.

    ``params`` holds *all* family parameters (defaults filled in) as a sorted
    tuple of ``(name, value)`` pairs, so equal workloads compare equal and the
    canonical string is unique.
    """

    family: str
    params: Tuple[Tuple[str, ParamValue], ...]

    def param(self, name: str, default: ParamValue = None) -> ParamValue:
        """Look up one parameter value."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def canonical(self) -> str:
        """The canonical spec string — the workload's benchmark name.

        Every cache key downstream (results store, compiled-graph store)
        hashes this string, so it *is* the workload's content address (for
        traces, together with the embedded file digest).
        """
        rendered = ",".join(f"{k}={_render_value(v)}" for k, v in self.params)
        return f"{self.family}:{rendered}"

    def effective_params(self, scale: float = 1.0) -> Dict[str, ParamValue]:
        """Parameter values at a problem scale (scaled ints rounded + floored)."""
        fam = FAMILIES[self.family]
        return {k: fam.param(k).effective(v, scale) for k, v in self.params}

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.canonical


def parse_workload(text: str) -> WorkloadSpec:
    """Parse (and canonicalise) a workload spec string.

    Fills in defaults, validates every value, and — for ``trace`` specs —
    resolves the file to an absolute path and embeds its content digest so
    the canonical name changes whenever the trace content does.  Raises
    ``KeyError`` for an unknown family and ``ValueError`` for bad parameters.
    """
    text = text.strip()
    family_name, _, rest = text.partition(":")
    family = FAMILIES.get(family_name)
    if family is None:
        raise KeyError(
            f"unknown workload family {family_name!r}; known: {', '.join(FAMILIES)}"
        )
    values: Dict[str, ParamValue] = {}
    if rest:
        for item in rest.split(","):
            name, eq, raw = item.partition("=")
            name = name.strip()
            if not eq or not name:
                raise ValueError(f"malformed workload parameter {item!r} in {text!r}")
            try:
                param = family.param(name)
            except KeyError:
                known = ", ".join(p.name for p in family.params)
                raise ValueError(
                    f"unknown parameter {name!r} for family {family_name!r}; known: {known}"
                )
            values[name] = param.validate(raw.strip())
    for param in family.params:
        if param.name in values:
            continue
        if param.default is None:
            raise ValueError(
                f"workload family {family_name!r} requires parameter {param.name!r}"
            )
        values[param.name] = param.default

    if family_name == "trace":
        path = os.path.abspath(str(values["file"]))
        # The canonical name embeds the path verbatim, so the grammar's own
        # separators must not appear in it — fail here, with a clear message,
        # instead of producing a canonical name no consumer can re-parse.
        if "," in path or "=" in path:
            raise ValueError(
                f"trace file path {path!r} contains ',' or '=', which the "
                "workload spec grammar cannot represent; rename or relocate "
                "the file"
            )
        if not os.path.isfile(path):
            raise ValueError(f"trace file not found: {path}")
        digest = _digest_file(path)
        claimed = str(values.get("sha256") or "")
        if claimed and not digest.startswith(claimed):
            raise ValueError(
                f"trace file {path} content digest {digest[:16]} does not match "
                f"the spec's sha256={claimed} (the file changed since the spec "
                "was canonicalised)"
            )
        values["file"] = path
        values["sha256"] = digest[:16]

    return WorkloadSpec(
        family=family_name, params=tuple(sorted(values.items()))
    )


def canonical_workload_name(text: str) -> str:
    """Shorthand: parse a spec string and return its canonical form."""
    return parse_workload(text).canonical
