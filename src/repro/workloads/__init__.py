"""The workload subsystem: parametric DAG generators and trace import.

Six seeded synthetic families (``layered``, ``erdos``, ``forkjoin``,
``pipeline``, ``wavefront``, ``mapreduce``) plus a JSON ``trace`` importer,
each described by a canonical ``family:key=value,...`` spec string (see
:mod:`repro.workloads.spec`) and exposed as a
:class:`~repro.apps.base.Benchmark` so the entire experiment stack — graph
compilation and its on-disk store, the vectorized App_FIT sweep, the
simulator fast path, the engine's cell cache — runs unchanged on arbitrary
task graphs.  The CLI front end is ``repro workloads ls|describe|gen`` and
``repro sweep --workload``.
"""

from repro.workloads.benchmark import WorkloadBenchmark, create_workload_benchmark
from repro.workloads.direct import generate_compiled, generate_compiled_to_store
from repro.workloads.generators import build_workload, expected_task_count
from repro.workloads.spec import (
    FAMILIES,
    WorkloadSpec,
    canonical_workload_name,
    family_names,
    is_workload_name,
    parse_workload,
)
from repro.workloads.trace import (
    Trace,
    TraceTask,
    export_trace,
    graph_to_trace_doc,
    load_trace,
    parse_trace,
)

__all__ = [
    "FAMILIES",
    "Trace",
    "TraceTask",
    "WorkloadBenchmark",
    "WorkloadSpec",
    "build_workload",
    "canonical_workload_name",
    "create_workload_benchmark",
    "expected_task_count",
    "export_trace",
    "family_names",
    "generate_compiled",
    "generate_compiled_to_store",
    "graph_to_trace_doc",
    "is_workload_name",
    "load_trace",
    "parse_trace",
    "parse_workload",
]
