"""Direct ``WorkloadSpec -> CompiledGraph`` generation — no object graph.

The object path builds a workload in three stages: the family builder submits
``TaskDescriptor``/``DataRegion`` objects into a
:class:`~repro.runtime.runtime.TaskRuntime`, the dependency tracker infers
edges, and :func:`~repro.runtime.compiled.compile_graph` lowers the result to
structure-of-arrays form.  At 10^6–10^7 tasks the intermediate Python objects
(descriptors, arguments, regions, per-task sets) exhaust memory long before
the simulator — which consumes memory-mapped arrays — becomes the bottleneck.

This module removes the detour for workload benchmarks: each synthetic family
(and the trace importer) emits the CSR index arrays and the per-task
duration/byte arrays *incrementally* through a :class:`GraphEmitter`, going
straight to the :class:`~repro.runtime.compiled.CompiledGraph` the store
persists.  Peak memory is the output arrays plus an O(edges) scratch buffer
— roughly 50 bytes per task+edge instead of the several kilobytes of object
overhead per task.

**Byte-equality contract.**  For every spec and scale,
``generate_compiled(spec, scale)`` is bit-identical — every float, every
index — to ``compile_graph(WorkloadBenchmark(spec, scale).build_graph())``
(pinned by ``tests/test_direct.py`` and ``tools/check_biggraph_smoke.py``).
The ingredients:

* **Draw order** — per task: structure draws, then the block-size draw, then
  the duration draw, from one :class:`~repro.util.rng.RngStream` — exactly
  the documented generator contract.  The direct builders share the object
  builders' draw helpers (``_Draws``, :func:`erdos_pred_indices`) so the
  sequences cannot diverge.
* **Byte sums** — ``compile_graph`` accumulates argument bytes left-to-right
  over the ``in_`` arguments then the output region, starting at ``0.0``;
  :meth:`GraphEmitter.add_task` performs the same adds in the same order.
* **CSR layout** — rows are sorted by task id.  Task ids are assigned by the
  runtime's submission counter (``0..n-1``), so dense index == task id;
  builders declare predecessors in ascending order and edges are discovered
  in ascending-target order, so a stable sort by source yields successor
  rows in ascending-target order — exactly ``sorted(succ_map[tid])``.
* **Edge payloads** — a workload edge's communication payload is the overlap
  of the predecessor's whole output region with the successor's read of that
  same region: the predecessor's drawn block size (accumulated once per
  duplicate read, matching the reference overlap scan).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.compiled import CompiledGraph, CompiledGraphStore
from repro.util.rng import RngStream
from repro.workloads.generators import _Draws, erdos_pred_indices
from repro.workloads.spec import WorkloadSpec


class GraphEmitter:
    """Incremental structure-of-arrays accumulator for one workload graph.

    One :meth:`add_task` call per task, in submission order, predecessors in
    the order the object builder would pass them to ``runtime.submit`` —
    :meth:`finish` then assembles the :class:`CompiledGraph` with one stable
    sort over the edge list.  All per-task state lives in preallocated NumPy
    arrays; the only growable buffer is the flat predecessor list.
    """

    def __init__(self, n_tasks: int) -> None:
        n = int(n_tasks)
        self.n = n
        self._i = 0
        self._durations = np.empty(n, dtype=np.float64)
        self._mem_bytes = np.empty(n, dtype=np.float64)
        self._input_bytes = np.empty(n, dtype=np.float64)
        self._output_bytes = np.empty(n, dtype=np.float64)
        self._arg_bytes = np.empty(n, dtype=np.float64)
        self._pred_indptr = np.empty(n + 1, dtype=np.int64)
        self._pred_indptr[0] = 0
        # Flat predecessor indices (doubling growth; edge count is unknown
        # until generation finishes for the stochastic families).
        self._pred_flat = np.empty(max(16, 2 * n), dtype=np.int64)
        self._n_edges = 0
        # Per-edge payload overrides (trace duplicates only; None = every
        # payload is simply the source's output block).
        self._payload_flat: Optional[np.ndarray] = None

    # -- incremental emission -------------------------------------------------

    def _reserve(self, extra: int) -> None:
        """Grow the flat edge buffers to hold ``extra`` more entries."""
        need = self._n_edges + extra
        cap = self._pred_flat.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        self._pred_flat = np.resize(self._pred_flat, cap)
        if self._payload_flat is not None:
            self._payload_flat = np.resize(self._payload_flat, cap)

    def add_task(
        self, duration_s: float, block_bytes: float, preds: Sequence[int]
    ) -> int:
        """Emit one task; returns its dense index (== its task id).

        ``preds`` are dense indices of earlier tasks, **strictly ascending
        and unique** — the order every synthetic builder submits them in
        (use :meth:`add_task_args` for the general trace case).  The byte
        sums run left-to-right exactly like ``compile_graph``'s argument
        loop: ``in_b`` over the predecessors' blocks, then the task's own
        block appended for ``arg_bytes``/``mem_bytes``.
        """
        i = self._i
        k = len(preds)
        self._reserve(k)
        flat = self._pred_flat
        e = self._n_edges
        out = self._output_bytes
        in_b = 0.0
        for p in preds:
            in_b += out[p]
            flat[e] = p
            e += 1
        if self._payload_flat is not None:
            self._payload_flat[self._n_edges : e] = out[flat[self._n_edges : e]]
        self._n_edges = e
        all_b = in_b + block_bytes
        self._durations[i] = duration_s
        self._output_bytes[i] = block_bytes
        self._input_bytes[i] = in_b
        self._arg_bytes[i] = all_b
        self._mem_bytes[i] = all_b
        self._pred_indptr[i + 1] = e
        self._i = i + 1
        return i

    def add_task_args(
        self, duration_s: float, block_bytes: float, arg_preds: Sequence[int]
    ) -> int:
        """Emit one task whose argument list may repeat or disorder preds.

        Trace deps arrive in file order and may contain duplicates; the
        reference path keeps each occurrence as a separate ``in_`` argument
        (so byte sums count it again) but collapses the dependency into one
        CSR edge whose payload accumulates once per occurrence — the overlap
        scan visits every read argument.  The dedup preserves first-seen
        order and the unique predecessors are sorted ascending, matching
        ``sorted(pred_map[tid])``.
        """
        if self._payload_flat is None:
            buf = np.empty(self._pred_flat.shape[0], dtype=np.float64)
            if self._n_edges:
                buf[: self._n_edges] = self._output_bytes[
                    self._pred_flat[: self._n_edges]
                ]
            self._payload_flat = buf
        i = self._i
        out = self._output_bytes
        in_b = 0.0
        counts: Dict[int, int] = {}
        for p in arg_preds:
            in_b += out[p]
            counts[p] = counts.get(p, 0) + 1
        uniq = sorted(counts)
        self._reserve(len(uniq))
        flat = self._pred_flat
        payload = self._payload_flat
        e = self._n_edges
        for p in uniq:
            # One overlap term per read occurrence, accumulated like the
            # reference scan (repeated adds, never a multiply).
            total = 0.0
            size = out[p]
            for _ in range(counts[p]):
                total += size
            flat[e] = p
            payload[e] = total
            e += 1
        self._n_edges = e
        all_b = in_b + block_bytes
        self._durations[i] = duration_s
        self._output_bytes[i] = block_bytes
        self._input_bytes[i] = in_b
        self._arg_bytes[i] = all_b
        self._mem_bytes[i] = all_b
        self._pred_indptr[i + 1] = e
        self._i = i + 1
        return i

    # -- assembly -------------------------------------------------------------

    def finish(self) -> CompiledGraph:
        """Assemble the :class:`CompiledGraph` (one stable sort over edges)."""
        n = self.n
        if self._i != n:
            raise ValueError(
                f"emitter received {self._i} tasks but was sized for {n}"
            )
        ne = self._n_edges
        pred_indices = np.ascontiguousarray(self._pred_flat[:ne])
        pred_indptr = self._pred_indptr
        in_deg = np.diff(pred_indptr)
        # Edge (src -> dst): sources are the flat predecessor list, targets
        # repeat each task over its in-degree.  Discovery order is ascending
        # target, so a *stable* sort by source groups rows whose targets stay
        # ascending — the sorted-by-id successor order the reference uses.
        dst = np.repeat(np.arange(n, dtype=np.int64), in_deg)
        order = np.argsort(pred_indices, kind="stable")
        succ_indices = dst[order]
        out_deg = np.bincount(pred_indices, minlength=n)
        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_deg, out=succ_indptr[1:])
        if self._payload_flat is None:
            edge_bytes = self._output_bytes[pred_indices[order]]
        else:
            edge_bytes = np.ascontiguousarray(self._payload_flat[:ne])[order]
        return CompiledGraph(
            task_ids=np.arange(n, dtype=np.int64),
            durations=self._durations,
            mem_bytes=self._mem_bytes,
            input_bytes=self._input_bytes,
            output_bytes=self._output_bytes,
            arg_bytes=self._arg_bytes,
            node_attr=np.full(n, -1, dtype=np.int64),
            succ_indptr=succ_indptr,
            succ_indices=np.ascontiguousarray(succ_indices),
            pred_indptr=pred_indptr,
            pred_indices=pred_indices,
            edge_bytes=np.ascontiguousarray(edge_bytes, dtype=np.float64),
        )


# ---------------------------------------------------------------------------------
# family emitters (draw order mirrors repro.workloads.generators exactly)
# ---------------------------------------------------------------------------------


def _emit(em: GraphEmitter, draws: _Draws, preds: Sequence[int]) -> int:
    """Emit one task with the shared block-then-duration draw order."""
    block = draws.block_bytes()
    return em.add_task(draws.duration_s(), block, preds)


def emit_layered(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Layered random DAG (see :func:`~repro.workloads.generators.build_layered`)."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    gen = rng.generator
    depth, width, fanin = int(p["depth"]), int(p["width"]), int(p["fanin"])
    draws = _Draws(rng, p)
    em = GraphEmitter(depth * width)
    for layer in range(depth):
        base = (layer - 1) * width
        for _ in range(width):
            if layer == 0:
                preds: List[int] = []
            else:
                k = min(int(gen.integers(1, fanin + 1)), width)
                idx = sorted(int(j) for j in gen.choice(width, size=k, replace=False))
                preds = [base + j for j in idx]
            _emit(em, draws, preds)
    return em


def emit_erdos(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Erdos-Renyi DAG (see :func:`~repro.workloads.generators.build_erdos`)."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    gen = rng.generator
    n, prob = int(p["tasks"]), float(p["p"])
    sampling = str(p["sampling"])
    draws = _Draws(rng, p)
    em = GraphEmitter(n)
    for j in range(n):
        _emit(em, draws, erdos_pred_indices(gen, j, prob, sampling))
    return em


def emit_forkjoin(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Chained fork-join stages (see ``build_forkjoin``)."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    stages, width = int(p["stages"]), int(p["width"])
    draws = _Draws(rng, p)
    em = GraphEmitter(stages * (width + 2))
    carry: List[int] = []
    for _ in range(stages):
        fork = _emit(em, draws, carry)
        workers = [_emit(em, draws, [fork]) for _ in range(width)]
        carry = [_emit(em, draws, workers)]
    return em


def emit_pipeline(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Software pipeline (see ``build_pipeline``)."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    stages, items = int(p["stages"]), int(p["items"])
    draws = _Draws(rng, p)
    em = GraphEmitter(stages * items)
    for s in range(stages):
        for i in range(items):
            preds: List[int] = []
            if s > 0:
                preds.append((s - 1) * items + i)
            if i > 0:
                preds.append(s * items + i - 1)
            _emit(em, draws, preds)
    return em


def emit_wavefront(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Wavefront sweep (see ``build_wavefront``)."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    rows, cols = int(p["rows"]), int(p["cols"])
    draws = _Draws(rng, p)
    em = GraphEmitter(rows * cols)
    for i in range(rows):
        for j in range(cols):
            preds: List[int] = []
            if i > 0 and j > 0:
                preds.append((i - 1) * cols + j - 1)
            if i > 0:
                preds.append((i - 1) * cols + j)
            if j > 0:
                preds.append(i * cols + j - 1)
            _emit(em, draws, preds)
    return em


def emit_mapreduce(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Mapreduce rounds (see ``build_mapreduce``)."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    maps, reduces, rounds = int(p["maps"]), int(p["reduces"]), int(p["rounds"])
    draws = _Draws(rng, p)
    em = GraphEmitter(rounds * (maps + reduces))
    prev_reduces: List[int] = []
    for rnd in range(rounds):
        map_ids = [
            _emit(em, draws, [prev_reduces[i % reduces]] if prev_reduces else [])
            for i in range(maps)
        ]
        prev_reduces = [_emit(em, draws, map_ids) for _ in range(reduces)]
    return em


def emit_trace(spec: WorkloadSpec, scale: float) -> GraphEmitter:
    """Imported JSON trace (scale is ignored — the trace is fixed).

    Trace ids are arbitrary; the runtime assigns submission-order ids
    ``0..n-1``, so the dense index of a dep is its position in the file.
    Deps keep their file order for the byte sums (argument order) and may
    repeat — :meth:`GraphEmitter.add_task_args` reproduces the reference
    multiplicity handling.
    """
    from repro.workloads.trace import load_trace

    trace = load_trace(str(spec.param("file")))
    em = GraphEmitter(len(trace.tasks))
    dense: Dict[int, int] = {}
    for task in trace.tasks:
        idx = em.add_task_args(
            task.duration_s, task.output_bytes, [dense[d] for d in task.deps]
        )
        dense[task.task_id] = idx
    return em


#: Emitter dispatch table (mirrors ``generators.BUILDERS``).
EMITTERS = {
    "layered": emit_layered,
    "erdos": emit_erdos,
    "forkjoin": emit_forkjoin,
    "pipeline": emit_pipeline,
    "wavefront": emit_wavefront,
    "mapreduce": emit_mapreduce,
    "trace": emit_trace,
}


def generate_compiled(spec: WorkloadSpec, scale: float = 1.0) -> CompiledGraph:
    """The compiled form of a workload spec, generated without an object graph.

    Bit-identical to ``compile_graph(WorkloadBenchmark(spec, scale)
    .build_graph())`` — see the module docstring for why — at a small
    fraction of the memory (and, for ``erdos`` with ``sampling=skip``, the
    time) the object path needs.
    """
    emitter = EMITTERS[spec.family](spec, float(scale))
    return emitter.finish()


def generate_compiled_to_store(
    spec: WorkloadSpec,
    scale: float,
    store: CompiledGraphStore,
    n_nodes: Optional[int] = None,
    elapsed_s: Optional[float] = None,
) -> str:
    """Generate a workload directly into the compiled-graph store.

    Returns the content-addressed store key.  The benchmark name is the
    spec's canonical string — the same key :func:`compile_graph` entries use
    — so direct and lowered generation are interchangeable cache citizens
    (and byte-equality makes the ``.npz`` files themselves identical).
    """
    compiled = generate_compiled(spec, scale)
    return store.save(
        spec.canonical, float(scale), compiled, n_nodes, elapsed_s=elapsed_s
    )
