"""Workloads as :class:`~repro.apps.base.Benchmark` instances.

A :class:`WorkloadBenchmark` wraps one canonical
:class:`~repro.workloads.spec.WorkloadSpec` and plugs into everything built
for the Table I benchmarks unchanged: its ``name`` *is* the canonical spec
string, so the results store and the compiled-graph store content-address the
workload (family + every parameter + seed + trace digest) automatically, and
``benchmark_instance``/``compiled_sim_cache`` in the runner memoise it like
any other benchmark.
"""

from __future__ import annotations

from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime
from repro.util.units import kib
from repro.workloads.generators import build_workload, expected_task_count
from repro.workloads.spec import FAMILIES, WorkloadSpec, parse_workload


class WorkloadBenchmark(Benchmark):
    """A synthetic (or trace-imported) workload behind the ``Benchmark`` API.

    Workloads simulate on the shared-memory machine model (``distributed`` is
    false); the problem ``scale`` shrinks or grows the parameters the family
    marks as scaled, exactly like the Table I generators' ``from_scale``.
    """

    distributed = False

    def __init__(self, spec: WorkloadSpec, scale: float = 1.0) -> None:
        super().__init__()
        self.spec = spec
        self.scale = float(scale)
        self.name = spec.canonical
        self.description = FAMILIES[spec.family].description

    @classmethod
    def from_string(cls, text: str, scale: float = 1.0) -> "WorkloadBenchmark":
        """Parse a spec string (canonicalising it) and wrap it."""
        return cls(parse_workload(text), scale=scale)

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the workload's tasks (see :mod:`repro.workloads.generators`)."""
        build_workload(self.spec, runtime, self.scale)

    @property
    def input_bytes(self) -> float:
        """Nominal data footprint: task count x nominal block size.

        Deliberately ignores the per-task block jitter (``block_cv``) so the
        figure is computable without generating the graph; the App_FIT
        threshold always comes from the generated graph itself.
        """
        if self.spec.family == "trace":
            from repro.workloads.trace import load_trace

            trace = load_trace(str(self.spec.param("file")))
            return float(sum(t.output_bytes for t in trace.tasks))
        n_tasks = expected_task_count(self.spec, self.scale)
        return n_tasks * kib(float(self.spec.param("block_kib")))

    @property
    def problem_label(self) -> str:
        """The structural parameters (everything except the shared distributions)."""
        shared = {"seed", "mean_ms", "cv", "block_kib", "block_cv", "sha256"}
        parts = [f"{k}={v}" for k, v in self.spec.params if k not in shared]
        return f"{self.spec.family}({', '.join(parts)})"

    @property
    def block_label(self) -> str:
        """The nominal per-task block size."""
        if self.spec.family == "trace":
            return "from trace"
        return f"{float(self.spec.param('block_kib')):g} KiB"


def create_workload_benchmark(name: str, scale: float = 1.0) -> WorkloadBenchmark:
    """The registry hook: build a workload benchmark from a spec string."""
    return WorkloadBenchmark.from_string(name, scale=scale)
