"""Seeded parametric DAG generators — one builder per synthetic family.

Every builder submits tasks into a :class:`~repro.runtime.runtime.TaskRuntime`
the same way the Table I benchmarks do: each task owns one simulation-only
output region and reads the whole output regions of its predecessors, so
dependencies are *inferred* by the dependency tracker (read-after-write) and
cross-task communication payloads fall out of the region overlap machinery
for free.

Determinism contract: a builder's RNG draws happen in a fixed order — per
task, structure first (predecessor selection), then the block-size draw, then
the duration draw — from a single :class:`~repro.util.rng.RngStream` seeded
by the spec's ``seed`` parameter.  Identical specs therefore produce
bit-identical graphs in any process (the workload smoke tool and the
cross-process tests pin this).

Builders always submit predecessors before their dependents, so submission
order is a topological order — the invariant the compiled-graph CSR layout
(and its test suite) relies on.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

import numpy as np

from repro.runtime.runtime import TaskRuntime
from repro.runtime.task import DataRegion
from repro.util.rng import RngStream
from repro.workloads.spec import FAMILIES, WorkloadSpec

#: Bytes per KiB (spec block sizes are given in KiB).
_KIB = 1024.0


class _Draws:
    """The shared per-task distribution draws (bytes, then duration)."""

    def __init__(self, rng: RngStream, params: Dict[str, object]) -> None:
        self._rng = rng
        self._mean_s = float(params["mean_ms"]) * 1e-3
        self._cv = float(params["cv"])
        self._block_bytes = float(params["block_kib"]) * _KIB
        self._block_cv = float(params["block_cv"])

    def block_bytes(self) -> float:
        """Output block size of the next task (strictly positive)."""
        if self._block_cv == 0.0:
            return self._block_bytes
        return self._rng.lognormal_duration(self._block_bytes, self._block_cv)

    def duration_s(self) -> float:
        """Duration of the next task (strictly positive)."""
        return self._rng.lognormal_duration(self._mean_s, self._cv)


def _submit(
    runtime: TaskRuntime,
    draws: _Draws,
    task_type: str,
    name: str,
    preds: List[DataRegion],
    **metadata,
) -> DataRegion:
    """Register one output region, submit one task, return the region.

    The region is registered with the *drawn* block size, the task reads every
    predecessor region whole, and the duration is drawn after the block size
    (the documented draw order).
    """
    region = runtime.register_region(name, draws.block_bytes()).whole()
    runtime.submit(
        task_type=task_type,
        in_=preds,
        out=[region],
        duration_s=draws.duration_s(),
        metadata=metadata or None,
    )
    return region


def build_layered(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Layered random DAG: ``depth`` layers of ``width`` tasks, fan-in <= ``fanin``."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    gen = rng.generator
    depth, width, fanin = int(p["depth"]), int(p["width"]), int(p["fanin"])
    draws = _Draws(rng, p)
    prev: List[DataRegion] = []
    for layer in range(depth):
        current: List[DataRegion] = []
        for i in range(width):
            if layer == 0:
                preds: List[DataRegion] = []
            else:
                k = min(int(gen.integers(1, fanin + 1)), width)
                idx = sorted(int(j) for j in gen.choice(width, size=k, replace=False))
                preds = [prev[j] for j in idx]
            current.append(
                _submit(runtime, draws, "layered", f"L{layer}.{i}", preds, layer=layer)
            )
        prev = current


def erdos_pred_indices(
    gen: np.random.Generator, j: int, p: float, sampling: str
) -> List[int]:
    """Predecessor indices of Erdos-Renyi node ``j``, drawing from ``gen``.

    This is the single implementation both graph paths use — the object
    builder (:func:`build_erdos`) and the direct array emitter
    (:mod:`repro.workloads.direct`) — so their draw sequences can never
    diverge.  ``sampling`` selects the algorithm (a spec parameter, so it is
    part of the cache identity):

    * ``dense`` — one batched uniform per earlier task (``gen.random(j)``),
      the legacy draw order every pre-existing erdos cache key and golden was
      generated with.  O(j) per node, O(n^2) per graph: a hard wall at
      ~10^5 tasks.
    * ``skip`` — geometric inter-arrival sampling: one uniform per *edge*
      (plus one terminating draw per node), so the cost is O(edges).  The
      gap ``floor(log(1 - u) / log(1 - p))`` is the standard inverse-CDF
      geometric skip; ``1 - u`` maps ``random()``'s ``[0, 1)`` onto
      ``(0, 1]`` so the logarithm is always finite.
    """
    if j == 0:
        return []
    if sampling == "dense":
        mask = gen.random(j) < p
        return [i for i in range(j) if mask[i]]
    if sampling != "skip":  # pragma: no cover - spec validation rejects earlier
        raise ValueError(f"unknown erdos sampling {sampling!r}")
    if p <= 0.0:
        return []
    if p >= 1.0:
        return list(range(j))
    log_q = math.log1p(-p)
    preds: List[int] = []
    i = -1
    while True:
        u = 1.0 - gen.random()
        i += 1 + int(math.log(u) / log_q)
        if i >= j:
            return preds
        preds.append(i)


def build_erdos(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Erdos-Renyi DAG: forward edge ``i -> j`` (i < j) with probability ``p``."""
    params = spec.effective_params(scale)
    rng = RngStream(int(params["seed"]))
    gen = rng.generator
    n, p = int(params["tasks"]), float(params["p"])
    sampling = str(params["sampling"])
    draws = _Draws(rng, params)
    regions: List[DataRegion] = []
    for j in range(n):
        preds = [regions[i] for i in erdos_pred_indices(gen, j, p, sampling)]
        regions.append(_submit(runtime, draws, "erdos", f"T{j}", preds))


def build_forkjoin(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Chained fork-join stages: fork -> ``width`` workers -> join, repeated."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    stages, width = int(p["stages"]), int(p["width"])
    draws = _Draws(rng, p)
    carry: List[DataRegion] = []
    for stage in range(stages):
        fork = _submit(runtime, draws, "fork", f"fork{stage}", carry, stage=stage)
        workers = [
            _submit(runtime, draws, "work", f"work{stage}.{i}", [fork], stage=stage)
            for i in range(width)
        ]
        carry = [_submit(runtime, draws, "join", f"join{stage}", workers, stage=stage)]


def build_pipeline(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Software pipeline: ``(s, i)`` waits for ``(s-1, i)`` and ``(s, i-1)``."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    stages, items = int(p["stages"]), int(p["items"])
    draws = _Draws(rng, p)
    grid: List[List[DataRegion]] = [[None] * items for _ in range(stages)]  # type: ignore[list-item]
    for s in range(stages):
        for i in range(items):
            preds: List[DataRegion] = []
            if s > 0:
                preds.append(grid[s - 1][i])
            if i > 0:
                preds.append(grid[s][i - 1])
            grid[s][i] = _submit(
                runtime, draws, f"stage{s}", f"P{s}.{i}", preds, stage=s, item=i
            )


def build_wavefront(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Wavefront sweep: ``(i, j)`` waits for its west, north and north-west cells."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    rows, cols = int(p["rows"]), int(p["cols"])
    draws = _Draws(rng, p)
    grid: List[List[DataRegion]] = [[None] * cols for _ in range(rows)]  # type: ignore[list-item]
    for i in range(rows):
        for j in range(cols):
            # Ascending task-id order (NW, N, W) so the argument list — and
            # therefore every byte-sum float — matches a trace re-import.
            preds: List[DataRegion] = []
            if i > 0 and j > 0:
                preds.append(grid[i - 1][j - 1])
            if i > 0:
                preds.append(grid[i - 1][j])
            if j > 0:
                preds.append(grid[i][j - 1])
            grid[i][j] = _submit(
                runtime, draws, "cell", f"W{i}.{j}", preds, row=i, col=j
            )


def build_mapreduce(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Mapreduce rounds: maps shuffle all-to-all into reduces; reduces seed round+1."""
    p = spec.effective_params(scale)
    rng = RngStream(int(p["seed"]))
    maps, reduces, rounds = int(p["maps"]), int(p["reduces"]), int(p["rounds"])
    draws = _Draws(rng, p)
    prev_reduces: List[DataRegion] = []
    for rnd in range(rounds):
        map_regions = [
            _submit(
                runtime,
                draws,
                "map",
                f"map{rnd}.{i}",
                [prev_reduces[i % reduces]] if prev_reduces else [],
                round=rnd,
            )
            for i in range(maps)
        ]
        prev_reduces = [
            _submit(
                runtime, draws, "reduce", f"reduce{rnd}.{r}", map_regions, round=rnd
            )
            for r in range(reduces)
        ]


def build_trace(spec: WorkloadSpec, runtime: TaskRuntime, scale: float) -> None:
    """Replay an imported JSON trace (scale is ignored — the trace is fixed)."""
    from repro.workloads.trace import build_trace_graph, load_trace

    build_trace_graph(load_trace(str(spec.param("file"))), runtime)


#: Builder dispatch table (one entry per family in :data:`FAMILIES`).
BUILDERS: Dict[str, Callable[[WorkloadSpec, TaskRuntime, float], None]] = {
    "layered": build_layered,
    "erdos": build_erdos,
    "forkjoin": build_forkjoin,
    "pipeline": build_pipeline,
    "wavefront": build_wavefront,
    "mapreduce": build_mapreduce,
    "trace": build_trace,
}

assert set(BUILDERS) == set(FAMILIES), "every family needs a builder"


def build_workload(spec: WorkloadSpec, runtime: TaskRuntime, scale: float = 1.0) -> None:
    """Submit the whole workload of ``spec`` into ``runtime`` at ``scale``."""
    BUILDERS[spec.family](spec, runtime, scale)


def expected_task_count(spec: WorkloadSpec, scale: float = 1.0) -> int:
    """Exact task count of a synthetic spec without generating the graph.

    Synthetic structures are fully determined by their (scaled) parameters;
    trace counts come from the file.  Used by ``repro workloads describe`` and
    the ``input_bytes`` footprint estimate.
    """
    p = spec.effective_params(scale)
    if spec.family == "layered":
        return int(p["depth"]) * int(p["width"])
    if spec.family == "erdos":
        return int(p["tasks"])
    if spec.family == "forkjoin":
        return int(p["stages"]) * (int(p["width"]) + 2)
    if spec.family == "pipeline":
        return int(p["stages"]) * int(p["items"])
    if spec.family == "wavefront":
        return int(p["rows"]) * int(p["cols"])
    if spec.family == "mapreduce":
        return int(p["rounds"]) * (int(p["maps"]) + int(p["reduces"]))
    if spec.family == "trace":
        from repro.workloads.trace import load_trace

        return len(load_trace(str(spec.param("file"))).tasks)
    raise KeyError(f"unknown workload family {spec.family!r}")
