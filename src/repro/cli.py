"""The unified ``repro`` command-line interface.

One entry point replaces the per-example argparse copies::

    repro run fig3 fig5            # compute (cache-aware) + write artifacts
    repro run all --scale 0.1      # every figure/table at a reduced scale
    repro sweep --benchmarks cholesky fft --policies app_fit top_fit
    repro sweep --workload layered:depth=12,width=8,seed=7 --scale 0.2
    repro workloads ls|describe|gen  # synthetic DAG families + trace export
    repro report fig3              # re-render artifacts from stored records
    repro cache ls|stats|gc|clear  # maintain the results + compiled-graph stores
    repro targets                  # list runnable targets
    repro serve --workers 2        # the sweep service (HTTP + local workers)
    repro serve --worker           # a pure worker draining the shared cache root
    repro submit --target fig5 --wait --out results   # submit to the service
    repro status [JOB_ID]          # poll the service's job queue

Installed as a ``repro`` console script by ``setup.py`` and also runnable as
``python -m repro``.  Every run/sweep/report invocation shares the same knobs:
``--scale``, ``--seed``, ``--parallelism`` (or ``REPRO_PARALLELISM``),
``--reference`` (scalar reference path, serial; or ``REPRO_REFERENCE=1``),
``--out`` (artifact directory), ``--cache-dir`` (or ``REPRO_CACHE_DIR``),
``--force`` (recompute cached cells), ``--no-cache``, and
``--no-graph-cache`` (rebuild task graphs in-process instead of sharing
compiled graphs through the on-disk store; see
:mod:`repro.runtime.compiled`).

Artifacts: each target writes ``<artifact>.txt`` (byte-identical to the
benchmark harness's ``benchmarks/results/*.txt`` files), ``<artifact>.json``
(structured rows plus provenance) and ``<artifact>.csv`` (flat rows).
Computation is cell-cached through :mod:`repro.analysis.store`, so a second
``repro run fig5`` with a warm cache does zero cell computations and an
interrupted sweep resumes where it stopped.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.runner import (
    CellProgress,
    ExperimentEngine,
    configure_graph_cache,
    env_graph_cache_enabled,
)
from repro.analysis.store import ResultStore, code_version
from repro.analysis.targets import (
    TARGETS,
    Target,
    TargetOutput,
    render_artifact_texts,
    resolve_targets,
    workload_sweep_recorded_text,
)
from repro.obs.maintenance import obs_clear, obs_gc, obs_stats
from repro.obs.trace import configure_trace_root
from repro.runtime.compiled import CompiledGraphStore, workload_max_age_seconds
from repro.util.units import format_bytes

#: Default artifact directory.  Deliberately NOT ``benchmarks/results`` — the
#: committed goldens live there, and a casual `repro run fig3` (default scale
#: 1.0) must not overwrite them; regenerating the goldens is an explicit
#: ``repro run all --scale 0.2 --out benchmarks/results``.
DEFAULT_OUT_DIR = "results"


class MissingRecordError(RuntimeError):
    """Raised by ``repro report --strict`` when a cell is not in the cache."""


class _StrictStore(ResultStore):
    """A store view that refuses to compute: every miss is an error."""

    def __init__(self, inner: ResultStore) -> None:
        super().__init__(inner.root)

    def get(self, spec):
        """Like :meth:`ResultStore.get`, but a miss raises instead of returning None."""
        record = super().get(spec)
        if record is None:
            raise MissingRecordError(
                f"cell not in cache: kind={spec.kind} benchmark={spec.benchmark} "
                f"scale={spec.scale} seed={spec.seed} fast={spec.fast} "
                f"(run `repro run` first, or drop --strict)"
            )
        return record


# ---------------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------------


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The run/sweep/report knobs shared by every computing subcommand."""
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="problem scale (1.0 = the paper's Table I sizes; default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed (default 0)")
    parser.add_argument(
        "--n-seeds",
        type=int,
        default=1,
        help="fault seeds averaged per simulated cell (default 1; extra seeds "
        "are derived from --seed and batched on the fast path)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="worker processes (default: one per CPU, or REPRO_PARALLELISM)",
    )
    parser.add_argument(
        "--reference",
        action="store_true",
        help="run the scalar reference path serially instead of the vectorized "
        "fast path (equivalent to REPRO_REFERENCE=1 REPRO_PARALLELISM=1)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT_DIR,
        metavar="DIR",
        help=f"artifact output directory (default: {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="results-store root (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell even when a cached record exists",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the results store entirely (no reads, no writes)",
    )
    parser.add_argument(
        "--no-graph-cache",
        action="store_true",
        help="rebuild task graphs in-process instead of sharing compiled "
        "graphs through the on-disk cache (or set REPRO_GRAPH_CACHE=0)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress progress/summary output"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print one line per finished cell"
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for the docs smoke test)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the figures and tables of Subasi et al., "
        "'A Runtime Heuristic to Selectively Replicate Tasks for "
        "Application-Specific Reliability Targets' (IEEE CLUSTER 2016), "
        "with cell-level caching and resume.",
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    run = sub.add_parser(
        "run",
        help="compute figure/table targets (cache-aware) and write artifacts",
        description="Compute one or more targets and write .txt/.json/.csv "
        "artifacts. Cells already in the results store are not recomputed.",
    )
    run.add_argument(
        "targets",
        nargs="*",
        default=["all"],
        metavar="TARGET",
        help=f"targets to run: {', '.join(TARGETS)}, or 'all' (default)",
    )
    _add_engine_options(run)

    report = sub.add_parser(
        "report",
        help="re-render artifacts from stored records (no recomputation needed)",
        description="Render targets back into the benchmarks/results/*.txt "
        "formats (plus .json/.csv) from the results store. Missing cells are "
        "computed unless --strict is given.",
    )
    report.add_argument(
        "targets",
        nargs="*",
        default=["all"],
        metavar="TARGET",
        help=f"targets to render: {', '.join(TARGETS)}, or 'all' (default)",
    )
    _add_engine_options(report)
    report.add_argument(
        "--strict",
        action="store_true",
        help="fail instead of computing when a cell is missing from the cache",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run an arbitrary benchmark x policy x rate grid",
        description="Grid arbitrary benchmarks, replication policies and "
        "error-rate multipliers; each combination is one cached cell.",
    )
    sweep.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        metavar="NAME",
        help="benchmarks to sweep (default: all nine Table I benchmarks)",
    )
    sweep.add_argument(
        "--workload",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="sweep synthetic workloads instead of Table I benchmarks "
        "(spec strings such as layered:depth=12,width=8,seed=7; "
        "see `repro workloads ls`)",
    )
    sweep.add_argument(
        "--fault-rates",
        nargs="+",
        type=float,
        default=[0.0, 0.01],
        metavar="P",
        help="per-task crash probabilities simulated in workload sweeps "
        "(default: 0 0.01; ignored without --workload)",
    )
    sweep.add_argument(
        "--policies",
        nargs="+",
        default=["app_fit"],
        metavar="POLICY",
        help="replication policies (app_fit, knapsack_oracle, top_fit, random, "
        "complete; default: app_fit)",
    )
    sweep.add_argument(
        "--multipliers",
        nargs="+",
        type=float,
        default=[10.0, 5.0],
        metavar="X",
        help="error-rate multipliers (default: 10 5)",
    )
    sweep.add_argument(
        "--residual-fit-factor",
        type=float,
        default=0.0,
        help="residual FIT factor charged to replicated tasks (default 0)",
    )
    sweep.add_argument(
        "--name",
        default="sweep",
        help="artifact stem for the sweep output files (default: sweep)",
    )
    _add_engine_options(sweep)

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain the content-addressed results store",
        description="Cache maintenance. The store root is --cache-dir, "
        "REPRO_CACHE_DIR, or .repro_cache.",
    )
    cache.add_argument(
        "action",
        choices=("ls", "stats", "gc", "clear"),
        help="ls: list records; stats: totals; gc: drop stale/corrupt records "
        "and age out old compiled workload graphs; clear: drop everything",
    )
    cache.add_argument("--cache-dir", default=None, metavar="DIR")
    cache.add_argument(
        "--workload-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="gc only: age limit for compiled workload graphs (default: "
        "REPRO_WORKLOAD_MAX_AGE_S or one week; <= 0 keeps them all)",
    )

    workloads = sub.add_parser(
        "workloads",
        help="list, inspect and generate synthetic workloads / traces",
        description="The workload subsystem: parametric DAG generator "
        "families plus a JSON trace importer. Specs are "
        "family:key=value,... strings; every parameter (including the seed) "
        "is part of the cache identity.",
    )
    workloads.add_argument(
        "action",
        choices=("ls", "describe", "gen"),
        help="ls: list families and parameters; describe: resolve one spec "
        "and show its graph statistics; gen: generate an instance (optionally "
        "exporting it as a JSON trace)",
    )
    workloads.add_argument(
        "spec",
        nargs="?",
        default=None,
        metavar="SPEC",
        help="workload spec for describe/gen (e.g. layered:depth=12,width=8)",
    )
    workloads.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="problem scale applied to the scaled parameters (default 1.0)",
    )
    workloads.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="gen only: write the generated graph as a trace JSON file "
        "(re-importable via trace:file=FILE)",
    )
    workloads.add_argument(
        "--store",
        action="store_true",
        help="gen only: emit the graph directly into the compiled-graph "
        "store as flat arrays (no per-task Python objects — the only "
        "practical path beyond ~10^6 tasks)",
    )
    workloads.add_argument("--cache-dir", default=None, metavar="DIR")

    serve = sub.add_parser(
        "serve",
        help="run the sweep service (HTTP frontend and/or a sweep worker)",
        description="Sweep-as-a-service. Default mode serves the HTTP API "
        "(submit/status/events/artifacts/health/stats) with --workers local "
        "drain threads; --worker mode runs a pure worker process that drains "
        "the shared cache root's job queue — start any number on any machines "
        "sharing that root, and cell leases shard the grids exactly once.",
    )
    serve.add_argument(
        "--host", default=None, help="bind host (default: REPRO_SERVE_BIND or 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: REPRO_SERVE_BIND or 8765; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="embedded worker threads (default 1; 0 = frontend only)",
    )
    serve.add_argument(
        "--worker",
        action="store_true",
        help="run one worker process instead of the HTTP server",
    )
    serve.add_argument(
        "--idle-exit",
        action="store_true",
        help="worker mode: exit once the job queue is drained (for CI/scripts)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="worker mode: queue poll interval while idle (default 0.5)",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cell lease TTL (default: REPRO_LEASE_TTL_S or 30)",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        metavar="N",
        help="crash-loop cap per embedded worker slot "
        "(default: REPRO_WORKER_RESTARTS or 5)",
    )
    serve.add_argument("--cache-dir", default=None, metavar="DIR")
    serve.add_argument(
        "--no-graph-cache",
        action="store_true",
        help="rebuild task graphs in-process instead of sharing compiled graphs",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a sweep to a running service and optionally wait for it",
        description="POST one job to `repro serve`: a named target, a workload "
        "sweep, or a benchmark sweep. With --wait, polls until the job "
        "finishes; with --out, downloads the .txt/.json/.csv artifacts.",
    )
    submit.add_argument(
        "--url",
        default=None,
        help="service base URL (default: REPRO_SERVE_URL or the default bind)",
    )
    submit.add_argument("--target", default=None, help=f"registry target: {', '.join(TARGETS)}")
    submit.add_argument(
        "--workload", nargs="+", default=None, metavar="SPEC", help="workload sweep specs"
    )
    submit.add_argument(
        "--benchmarks", nargs="+", default=None, metavar="NAME", help="benchmark sweep names"
    )
    submit.add_argument("--scale", type=float, default=1.0)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--n-seeds", type=int, default=1)
    submit.add_argument("--policies", nargs="+", default=["app_fit"], metavar="POLICY")
    submit.add_argument("--multipliers", nargs="+", type=float, default=[10.0, 5.0], metavar="X")
    submit.add_argument(
        "--fault-rates", nargs="+", type=float, default=[0.0, 0.01], metavar="P"
    )
    submit.add_argument("--residual-fit-factor", type=float, default=0.0)
    submit.add_argument(
        "--reference",
        action="store_true",
        help="request the scalar reference path (fast=false cells)",
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job is done or failed"
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="--wait limit (default 600)",
    )
    submit.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="with --wait: download the artifacts into DIR",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="HTTP attempts per request, with jittered backoff (default 5)",
    )
    submit.add_argument(
        "--retry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock bound on each request's retry loop (default: none)",
    )
    submit.add_argument("-q", "--quiet", action="store_true")

    status_cmd = sub.add_parser(
        "status",
        help="show the service's job queue (or one job)",
        description="Query a running `repro serve` for job states and cell "
        "progress; with a JOB_ID, show that job's derived status document.",
    )
    status_cmd.add_argument("job", nargs="?", default=None, metavar="JOB_ID")
    status_cmd.add_argument(
        "--url",
        default=None,
        help="service base URL (default: REPRO_SERVE_URL or the default bind)",
    )
    status_cmd.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="HTTP attempts per request, with jittered backoff (default 5)",
    )
    status_cmd.add_argument(
        "--retry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock bound on each request's retry loop (default: none)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="summarize or export the structured trace of a cache root",
        description="Analyse <cache>/obs/trace.jsonl (recorded when runs "
        "execute under REPRO_TRACE=light|full): summarize prints per-site "
        "latency percentiles and the slowest cells; export writes a Chrome "
        "trace-event JSON file loadable in Perfetto or chrome://tracing, "
        "with one row per worker and retry/chaos markers.",
    )
    trace_cmd.add_argument(
        "action",
        choices=("summarize", "export"),
        help="summarize: per-site percentiles + slowest cells; "
        "export: write a Chrome trace-event file (see --out)",
    )
    trace_cmd.add_argument("--cache-dir", default=None, metavar="DIR")
    trace_cmd.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="export only: output path (default: <cache>/obs/trace_chrome.json)",
    )
    trace_cmd.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="summarize only: how many slowest cells to list (default 10)",
    )

    targets_cmd = sub.add_parser("targets", help="list the runnable figure/table targets")
    targets_cmd.set_defaults(command="targets")

    parser.add_argument(
        "--version", action="store_true", help="print the package version and exit"
    )
    return parser


# ---------------------------------------------------------------------------------
# artifact output
# ---------------------------------------------------------------------------------


def _write_artifacts(
    out_dir: str,
    artifact: str,
    output: TargetOutput,
    meta: Dict[str, Any],
) -> List[str]:
    """Write the .txt/.json/.csv artifacts of one target; return their paths.

    Contents come from :func:`~repro.analysis.targets.render_artifact_texts`,
    the same composer the sweep service serves over HTTP, so local runs and
    served jobs emit byte-identical artifacts.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for fmt, content in render_artifact_texts(output, meta).items():
        path = os.path.join(out_dir, f"{artifact}.{fmt}")
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(content)
        paths.append(path)
    return paths


# ---------------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------------


def _make_engine(args: argparse.Namespace, strict: bool = False) -> ExperimentEngine:
    """Build the (cache-aware) engine an invocation runs on."""
    store: Optional[ResultStore]
    if args.no_cache:
        store = None
    else:
        store = ResultStore(args.cache_dir)
        if strict:
            store = _StrictStore(store)

    # The CLI shares compiled graphs through the on-disk store by default
    # (REPRO_GRAPH_CACHE=0 or --no-graph-cache opt out); plain library calls
    # stay in-memory unless configured otherwise.
    configure_graph_cache(
        enabled=(
            False
            if getattr(args, "no_graph_cache", False)
            else env_graph_cache_enabled(True)
        ),
        root=args.cache_dir,
    )
    # Span sites without a store in hand (graph loads, simulator dispatch)
    # resolve their tracer against the same root the engine caches under.
    configure_trace_root(args.cache_dir)

    progress = None
    if args.verbose and not args.quiet:

        def progress(event: CellProgress) -> None:
            state = "cached  " if event.cached else "computed"
            timing = f" ({event.elapsed_s:.2f} s)" if event.elapsed_s else ""
            print(
                f"  [{event.index + 1}/{event.total}] {state} "
                f"{event.spec.kind} {event.spec.benchmark}{timing}"
            )

    if args.reference:
        return ExperimentEngine(
            parallelism=1, fast=False, store=store, force=args.force, progress=progress
        )
    return ExperimentEngine(
        parallelism=args.parallelism, store=store, force=args.force, progress=progress
    )


def _run_targets(args: argparse.Namespace, strict: bool = False) -> int:
    """`repro run` / `repro report`: build targets, write artifacts."""
    if strict and (args.no_cache or args.force):
        # Either flag would bypass the strict store's get(), silently turning
        # "fail instead of computing" into a full recomputation.
        print("repro: --strict cannot be combined with --no-cache or --force", file=sys.stderr)
        return 2
    try:
        targets = resolve_targets(args.targets)
    except KeyError as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    engine = _make_engine(args, strict=strict)
    meta_base = {
        "scale": args.scale,
        "seed": args.seed,
        "n_seeds": args.n_seeds,
        "fast": engine.fast,
        "code_version": code_version(),
    }
    for target in targets:
        t0 = time.perf_counter()
        # Deltas of the cumulative counters: a target may issue several
        # engine.map calls (e.g. ablation-rates runs one grid per benchmark),
        # and last_stats would only reflect the final one.
        computed0, cached0 = engine.cells_computed, engine.cells_cached
        try:
            output = target.build(args.scale, args.seed, engine, n_seeds=args.n_seeds)
        except MissingRecordError as exc:
            print(f"repro: {target.name}: {exc}", file=sys.stderr)
            return 1
        computed = engine.cells_computed - computed0
        cached = engine.cells_cached - cached0
        paths = _write_artifacts(
            args.out,
            target.artifact,
            output,
            {**meta_base, "target": target.name, **output.meta},
        )
        if not args.quiet:
            print(
                f"{target.name}: {computed + cached} cells "
                f"({computed} computed, {cached} cached) "
                f"in {time.perf_counter() - t0:.2f} s -> {paths[0]}"
            )
    return 0


def _run_workload_sweep(args: argparse.Namespace) -> int:
    """`repro sweep --workload`: policies x rates x fault rates on workloads."""
    from repro.analysis.experiments import workload_sweep

    engine = _make_engine(args)
    t0 = time.perf_counter()
    computed0, cached0 = engine.cells_computed, engine.cells_cached
    try:
        result = workload_sweep(
            workloads=args.workload,
            policies=args.policies,
            multipliers=args.multipliers,
            fault_rates=args.fault_rates,
            scale=args.scale,
            seed=args.seed,
            n_seeds=args.n_seeds,
            residual_fit_factor=args.residual_fit_factor,
            engine=engine,
        )
    except (KeyError, ValueError) as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    computed = engine.cells_computed - computed0
    cached = engine.cells_cached - cached0
    text = workload_sweep_recorded_text(result)
    output = TargetOutput(result=result, text=text, rows=list(result.rows))
    meta = {
        "target": "workload-sweep",
        "workloads": sorted({str(r["workload"]) for r in result.rows}),
        "policies": list(args.policies),
        "multipliers": list(args.multipliers),
        "fault_rates": list(args.fault_rates),
        "scale": args.scale,
        "seed": args.seed,
        "n_seeds": args.n_seeds,
        "fast": engine.fast,
        "code_version": code_version(),
    }
    name = args.name if args.name != "sweep" else "workload_sweep"
    paths = _write_artifacts(args.out, name, output, meta)
    if not args.quiet:
        print(text)
        print(
            f"\nworkload sweep: {computed + cached} cells ({computed} computed, "
            f"{cached} cached) in {time.perf_counter() - t0:.2f} s -> {paths[0]}"
        )
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    """`repro sweep`: an arbitrary benchmark x policy x multiplier grid."""
    from repro.analysis.experiments import sweep_policies
    from repro.apps.registry import all_benchmark_names

    if args.workload:
        if args.benchmarks:
            print(
                "repro: --workload and --benchmarks are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _run_workload_sweep(args)
    benchmarks = args.benchmarks or all_benchmark_names()
    engine = _make_engine(args)
    t0 = time.perf_counter()
    computed0, cached0 = engine.cells_computed, engine.cells_cached
    try:
        result = sweep_policies(
            benchmarks=benchmarks,
            policies=args.policies,
            multipliers=args.multipliers,
            scale=args.scale,
            seed=args.seed,
            residual_fit_factor=args.residual_fit_factor,
            engine=engine,
        )
    except KeyError as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    computed = engine.cells_computed - computed0
    cached = engine.cells_cached - cached0
    output = TargetOutput(result=result, text=result.render(), rows=list(result.rows))
    meta = {
        "target": "sweep",
        "benchmarks": list(benchmarks),
        "policies": list(args.policies),
        "multipliers": list(args.multipliers),
        "scale": args.scale,
        "seed": args.seed,
        "fast": engine.fast,
        "code_version": code_version(),
    }
    paths = _write_artifacts(args.out, args.name, output, meta)
    if not args.quiet:
        print(output.text)
        print(
            f"\nsweep: {computed + cached} cells ({computed} computed, "
            f"{cached} cached) in {time.perf_counter() - t0:.2f} s -> {paths[0]}"
        )
    return 0


def _run_workloads(args: argparse.Namespace) -> int:
    """`repro workloads ls|describe|gen`: the synthetic-workload front end."""
    from repro.workloads import FAMILIES, WorkloadBenchmark, export_trace, parse_workload

    if args.action == "ls":
        for family in FAMILIES.values():
            print(f"{family.name}")
            print(f"  {family.description}")
            if family.promises:
                print(f"  guarantees: {', '.join(family.promises)}")
            for param in family.params:
                default = "(required)" if param.default is None else f"= {param.default}"
                scaled = ", scaled" if param.scaled else ""
                print(f"    {param.name:<10} {default:<10} {param.doc}{scaled}")
        return 0

    if args.spec is None:
        print(f"repro: workloads {args.action} needs a SPEC argument", file=sys.stderr)
        return 2
    try:
        spec = parse_workload(args.spec)
    except (KeyError, ValueError) as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.store and args.action == "gen":
        if args.out:
            print(
                "repro: workloads gen --store and --out are mutually exclusive "
                "(trace export walks the object graph the direct path avoids)",
                file=sys.stderr,
            )
            return 2
        from repro.workloads import generate_compiled

        store = CompiledGraphStore(args.cache_dir)
        t0 = time.perf_counter()
        compiled = generate_compiled(spec, args.scale)
        elapsed = time.perf_counter() - t0
        key = store.save(
            spec.canonical, args.scale, compiled, None, elapsed_s=elapsed
        )
        print(f"canonical : {spec.canonical}")
        print(f"scale     : {args.scale:g}")
        print(f"tasks     : {compiled.n}")
        print(f"edges     : {len(compiled.succ_indices)}")
        print(f"generated : {elapsed:.3f} s (direct — no object graph)")
        print(f"store key : {key}")
        print(f"store file: {store.path_for(key)}")
        return 0

    bench = WorkloadBenchmark(spec, scale=args.scale)
    graph = bench.build_graph()
    stats = graph.stats()
    effective = spec.effective_params(args.scale)
    print(f"canonical : {spec.canonical}")
    print(f"family    : {spec.family} — {bench.description}")
    print(f"scale     : {args.scale:g}")
    changed = [
        f"{k}={effective[k]}" for k, v in spec.params if effective[k] != v
    ]
    if changed:
        print(f"effective : {', '.join(changed)}")
    print(f"tasks     : {stats.n_tasks}")
    print(f"edges     : {stats.n_edges}")
    print(f"total work: {stats.total_work_s:.6f} s")
    print(f"critical  : {stats.critical_path_s:.6f} s "
          f"(average parallelism {stats.average_parallelism:.2f})")
    print(f"max width : {stats.max_width}")
    print(f"arg bytes : {format_bytes(stats.total_argument_bytes)}")

    if args.action == "gen" and args.out:
        export_trace(graph, args.out)
        print(f"trace     : {args.out} (re-import with trace:file={args.out})")
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """`repro cache ls|stats|gc|clear` over both stores (results + graphs)."""
    store = ResultStore(args.cache_dir)
    graphs = CompiledGraphStore(args.cache_dir)
    if args.action == "ls":
        rows = store.ls()
        if not rows:
            print(f"cache at {store.root}: empty")
        else:
            header = (
                f"{'key':<14} {'kind':<24} {'benchmark':<10} {'scale':>6} "
                f"{'seed':>6} {'fast':>5} {'elapsed':>9}  version"
            )
            print(header)
            print("-" * len(header))
            for row in rows:
                elapsed = (
                    f"{row['elapsed_s']:.3f}s" if row.get("elapsed_s") is not None else "-"
                )
                print(
                    f"{row['key']:<14} {row['kind']:<24} {row['benchmark']:<10} "
                    f"{row['scale']:>6} {row['seed']:>6} {str(row['fast']):>5} "
                    f"{elapsed:>9}  {row['code_version']}"
                )
            print(f"\n{len(rows)} record(s) in {store.root}")
        graph_rows = graphs.ls()
        if not graph_rows:
            print(f"compiled graphs at {graphs.root}: empty")
        else:
            print()
            # Workload spec strings can be long, so the benchmark column is
            # sized to its contents instead of a fixed width.
            bench_w = max(9, *(len(str(r["benchmark"])) for r in graph_rows))
            header = (
                f"{'key':<14} {'benchmark':<{bench_w}} {'scale':>6} {'nodes':>6} "
                f"{'tasks':>8} {'edges':>9} {'size':>10} {'kind':<8}  version"
            )
            print(header)
            print("-" * len(header))
            for row in graph_rows:
                nodes = "-" if row["n_nodes"] is None else str(row["n_nodes"])
                kind = "workload" if row.get("workload") else "table1"
                print(
                    f"{row['key']:<14} {row['benchmark']:<{bench_w}} {row['scale']:>6} "
                    f"{nodes:>6} {row['n_tasks']:>8} {row['n_edges']:>9} "
                    f"{format_bytes(row['nbytes']):>10} {kind:<8}  {row['code_version']}"
                )
            print(f"\n{len(graph_rows)} compiled graph(s) in {graphs.root}")
        return 0
    if args.action == "stats":
        stats = store.stats()
        gstats = graphs.stats()
        print(f"root           : {stats['root']}")
        print(f"records        : {stats['records']}")
        print(f"record bytes   : {stats['bytes']} ({format_bytes(stats['bytes'])})")
        versions = ", ".join(f"{v} x{n}" for v, n in sorted(stats["code_versions"].items()))
        print(f"code versions  : {versions or '(none)'}")
        if stats.get("attempts") or stats.get("poisoned"):
            print(
                f"retry ledger   : {stats['attempts']} attempt marker(s), "
                f"{stats['poisoned']} poisoned cell(s)"
            )
        print(f"compiled graphs: {gstats['entries']}")
        print(f"workload graphs: {gstats['workloads']}")
        print(f"graph bytes    : {gstats['bytes']} ({format_bytes(gstats['bytes'])})")
        if gstats["unreadable"] or gstats["missing_arrays"]:
            print(
                f"graph damage   : {gstats['unreadable']} unreadable sidecar(s), "
                f"{gstats['missing_arrays']} missing array file(s)"
            )
        gversions = ", ".join(
            f"{v} x{n}" for v, n in sorted(gstats["code_versions"].items())
        )
        print(f"graph versions : {gversions or '(none)'}")
        ostats = obs_stats(store.root)
        print(
            f"obs trace      : {format_bytes(ostats['trace_bytes'])} live, "
            f"{ostats['rotated_segments']} rotated segment(s) "
            f"({format_bytes(ostats['rotated_bytes'])})"
        )
        print(
            f"obs metrics    : {ostats['metrics_snapshots']} snapshot(s) "
            f"({format_bytes(ostats['metrics_bytes'])})"
        )
        return 0
    if args.action == "gc":
        max_age = args.workload_max_age
        if max_age is None:
            max_age = workload_max_age_seconds()
        removed = store.gc()
        gremoved = graphs.gc(workload_max_age_s=max_age if max_age > 0 else None)
        print(
            f"gc: removed {removed['stale']} stale, {removed['corrupt']} corrupt, "
            f"{removed['tmp']} temp record(s) from {store.root}"
        )
        if removed["attempts"] or removed["poison_stale"] or removed["workers_stale"]:
            print(
                f"gc: removed {removed['attempts']} spent attempt marker(s), "
                f"{removed['poison_stale']} stale poison tombstone(s), "
                f"{removed['workers_stale']} stale worker liveness file(s)"
            )
        print(
            f"gc: removed {gremoved['stale']} stale, {gremoved['orphan']} orphan, "
            f"{gremoved['tmp']} temp, {gremoved['aged']} aged-workload compiled "
            f"graph(s) from {graphs.root}"
        )
        if gremoved["skipped"]:
            print(
                f"gc: WARNING: {gremoved['skipped']} unremovable path(s) skipped "
                f"in {graphs.root}"
            )
        oremoved = obs_gc(store.root, max_age_s=max_age if max_age > 0 else None)
        print(
            f"gc: removed {oremoved['rotated_segments']} rotated trace segment(s), "
            f"{oremoved['metrics_snapshots']} stale metrics snapshot(s) from obs/"
        )
        if oremoved["skipped"]:
            print(
                f"gc: WARNING: {oremoved['skipped']} unremovable obs path(s) skipped"
            )
        return 0
    removed = store.clear()
    gremoved = graphs.clear()
    oremoved = obs_clear(store.root)
    print(f"clear: removed {removed} record(s) from {store.root}")
    print(f"clear: removed {gremoved} compiled graph(s) from {graphs.root}")
    print(
        f"clear: removed {oremoved['trace'] + oremoved['rotated_segments']} trace "
        f"file(s), {oremoved['metrics_snapshots']} metrics snapshot(s) from obs/"
    )
    return 0


def _service_url(url: Optional[str]) -> str:
    """Resolve the service base URL: flag > ``REPRO_SERVE_URL`` > default bind."""
    if url:
        return url.rstrip("/")
    env = os.environ.get("REPRO_SERVE_URL")
    if env:
        return env.rstrip("/")
    from repro.serve.app import default_bind

    host, port = default_bind()
    return f"http://{host}:{port}"


class _TransientHTTPError(OSError):
    """A retryable client failure wrapping the original exception.

    The client collapses every transient shape — connection refused while the
    server is still binding, a chaos-injected connection reset, a 5xx — into
    this one type so the retry loop matches exactly these and nothing else
    (a 400 is an answer, not weather).  After the budget is spent the
    *original* exception is re-raised, so callers' ``except`` clauses never
    learn the retry layer exists.
    """

    def __init__(self, inner: BaseException) -> None:
        super().__init__(str(inner))
        self.inner = inner


def _http_call(fetch, url: str, retries: Optional[int], deadline: Optional[float]):
    """Run one HTTP fetch through the shared retry discipline."""
    import urllib.error
    from http.client import HTTPException

    from repro.util.retry import RetryPolicy, retry_call

    def _once():
        try:
            return fetch()
        except urllib.error.HTTPError as exc:
            if exc.code >= 500:
                raise _TransientHTTPError(exc)
            raise
        except (urllib.error.URLError, HTTPException, ConnectionError, TimeoutError) as exc:
            raise _TransientHTTPError(exc)

    policy = RetryPolicy(
        max_attempts=retries if retries is not None else 5,
        base_delay_s=0.1,
        max_delay_s=2.0,
        deadline_s=deadline,
    )
    try:
        return retry_call(
            _once,
            policy=policy,
            retryable=(_TransientHTTPError,),
            describe=f"request {url}",
        )
    except _TransientHTTPError as exc:
        raise exc.inner from exc


def _http_json(
    url: str,
    body: Optional[Dict[str, Any]] = None,
    retries: Optional[int] = None,
    retry_deadline: Optional[float] = None,
) -> Dict[str, Any]:
    """One GET (or POST, when a body is given) returning the parsed JSON."""
    import urllib.request

    def _fetch() -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"} if data else {}
        )
        with urllib.request.urlopen(request) as resp:
            return json.load(resp)

    return _http_call(_fetch, url, retries, retry_deadline)


def _http_bytes(
    url: str,
    retries: Optional[int] = None,
    retry_deadline: Optional[float] = None,
) -> bytes:
    """One GET returning the raw body (artifact downloads)."""
    import urllib.request

    def _fetch() -> bytes:
        with urllib.request.urlopen(url) as resp:
            return resp.read()

    return _http_call(_fetch, url, retries, retry_deadline)


def _run_serve(args: argparse.Namespace) -> int:
    """`repro serve`: the HTTP service, or (with --worker) one drain process."""
    from repro.serve.app import ReproServer
    from repro.serve.workers import SweepWorker

    configure_graph_cache(
        enabled=(False if args.no_graph_cache else env_graph_cache_enabled(True)),
        root=args.cache_dir,
    )
    configure_trace_root(args.cache_dir)
    if args.worker:
        # A worker *process* takes chaos kills as a genuine SIGKILL —
        # supervision (and the resulting lease expiry) is exercised for real.
        worker = SweepWorker(
            args.cache_dir, ttl_s=args.ttl, poll_interval_s=None, hard_kill=True
        )
        print(f"worker {worker.owner} draining {worker.store.root}", flush=True)
        try:
            worker.run_forever(poll_s=args.poll_interval, idle_exit=args.idle_exit)
        except KeyboardInterrupt:
            pass
        print(
            f"worker {worker.owner}: {worker.jobs_drained} job(s) drained, "
            f"{worker.cells_computed} cell(s) computed, "
            f"{worker.cells_cached} cached",
            flush=True,
        )
        return 0
    server = ReproServer(
        root=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=max(0, args.workers),
        ttl_s=args.ttl,
        max_restarts=args.max_restarts,
    )
    print(
        f"serving {server.store.root} at {server.url} "
        f"({max(0, args.workers)} supervised local worker(s))",
        flush=True,
    )
    server.serve_forever()
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    """`repro submit`: POST one job; optionally wait and fetch artifacts."""
    import urllib.error

    modes = [m for m in (args.target, args.workload, args.benchmarks) if m]
    if len(modes) != 1:
        print(
            "repro: submit needs exactly one of --target, --workload, --benchmarks",
            file=sys.stderr,
        )
        return 2
    request: Dict[str, Any] = {
        "scale": args.scale,
        "seed": args.seed,
        "n_seeds": args.n_seeds,
        "fast": not args.reference,
    }
    if args.target:
        request["target"] = args.target
    else:
        request["policies"] = list(args.policies)
        request["multipliers"] = list(args.multipliers)
        request["residual_fit_factor"] = args.residual_fit_factor
        if args.workload:
            request["workloads"] = list(args.workload)
            request["fault_rates"] = list(args.fault_rates)
        else:
            request["benchmarks"] = list(args.benchmarks)
    base = _service_url(args.url)
    try:
        submitted = _http_json(
            f"{base}/api/v1/jobs",
            body=request,
            retries=args.retries,
            retry_deadline=args.retry_deadline,
        )
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"repro: submit rejected ({exc.code}): {detail}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"repro: cannot reach {base}: {exc}", file=sys.stderr)
        return 1
    job = submitted["job"]
    if not args.quiet:
        print(f"submitted {job['id']} ({job['artifact']}) to {base}")
    if not args.wait:
        return 0
    from repro.util.retry import poll_delays

    deadline = time.monotonic() + args.timeout
    delays = poll_delays(base_delay_s=0.2, max_delay_s=2.0)
    status: Dict[str, Any] = {}
    while time.monotonic() < deadline:
        status = _http_json(
            f"{base}/api/v1/jobs/{job['id']}",
            retries=args.retries,
            retry_deadline=args.retry_deadline,
        )
        if status["state"] in ("done", "failed"):
            break
        # Jittered exponential backoff, not a fixed interval: many waiting
        # submitters must not poll the frontend in lockstep.
        time.sleep(min(next(delays), max(0.0, deadline - time.monotonic())))
    cells = status.get("cells", {})
    if not args.quiet:
        print(
            f"{job['id']}: {status.get('state', 'unknown')} "
            f"({cells.get('computed', 0)} computed, {cells.get('cached', 0)} cached "
            f"of {cells.get('total', '?')})"
        )
    if status.get("state") == "failed":
        print(f"repro: job failed: {status.get('error')}", file=sys.stderr)
        return 1
    if status.get("state") != "done":
        print(f"repro: timed out waiting for {job['id']}", file=sys.stderr)
        return 1
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for fmt in ("txt", "json", "csv"):
            blob = _http_bytes(
                f"{base}/api/v1/jobs/{job['id']}/artifacts/{fmt}",
                retries=args.retries,
                retry_deadline=args.retry_deadline,
            )
            path = os.path.join(args.out, f"{job['artifact']}.{fmt}")
            with open(path, "wb") as fh:
                fh.write(blob)
            if not args.quiet:
                print(f"  -> {path}")
    return 0


def _run_status(args: argparse.Namespace) -> int:
    """`repro status`: the queue summary, or one job's status document."""
    import urllib.error

    base = _service_url(args.url)
    try:
        if args.job:
            status = _http_json(
                f"{base}/api/v1/jobs/{args.job}",
                retries=args.retries,
                retry_deadline=args.retry_deadline,
            )
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        listing = _http_json(
            f"{base}/api/v1/jobs",
            retries=args.retries,
            retry_deadline=args.retry_deadline,
        )
    except urllib.error.HTTPError as exc:
        print(f"repro: {exc.code} from {base}: {exc.reason}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"repro: cannot reach {base}: {exc}", file=sys.stderr)
        return 1
    jobs = listing["jobs"]
    if not jobs:
        print(f"{base}: no jobs")
        return 0
    header = f"{'id':<14} {'state':<8} {'artifact':<26} {'done':>6} {'total':>6} {'computed':>9}"
    print(header)
    print("-" * len(header))
    for status in jobs:
        cells = status["cells"]
        total = "?" if cells["total"] is None else cells["total"]
        print(
            f"{status['id']:<14} {status['state']:<8} {status['artifact']:<26} "
            f"{cells['done']:>6} {total:>6} {cells['computed']:>9}"
        )
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """`repro trace summarize|export` over a cache root's trace log."""
    from repro.obs.report import (
        export_trace_file,
        read_trace,
        render_summary,
        summarize_trace,
    )
    from repro.obs.trace import trace_path

    root = ResultStore(args.cache_dir).root
    records = read_trace(root)
    if not records:
        print(f"no trace records at {trace_path(root)}")
        print("record some with REPRO_TRACE=light|full (see docs/architecture.md)")
        return 1
    if args.action == "summarize":
        print(f"trace: {len(records)} record(s) at {trace_path(root)}")
        print()
        print(render_summary(summarize_trace(records, top=args.top)), end="")
        return 0
    out = args.out or os.path.join(root, "obs", "trace_chrome.json")
    n_events = export_trace_file(root, out)
    print(f"wrote {n_events} trace event(s) to {out}")
    print("load it in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _run_list_targets() -> int:
    """`repro targets`: list the registry."""
    width = max(len(name) for name in TARGETS)
    for name, target in TARGETS.items():
        print(f"{name:<{width}}  {target.description}  [{target.artifact}.txt]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (the ``repro`` console script and ``python -m repro``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "version", False) and args.command is None:
        from repro import __version__

        print(__version__)
        return 0
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "run":
        return _run_targets(args)
    if args.command == "report":
        return _run_targets(args, strict=args.strict)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "workloads":
        return _run_workloads(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "targets":
        return _run_list_targets()
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
