"""repro — selective task replication for application-specific reliability targets.

A reproduction of Subasi et al., "A Runtime Heuristic to Selectively Replicate
Tasks for Application-Specific Reliability Targets" (IEEE CLUSTER 2016).

The package provides:

* a task-parallel dataflow runtime substrate (:mod:`repro.runtime`),
* a failure model and fault injector (:mod:`repro.faults`),
* the task replication protocol and the **App_FIT** selection heuristic
  (:mod:`repro.core`),
* a discrete-event machine simulator for overhead/scalability studies
  (:mod:`repro.simulator`) and a simulated cluster (:mod:`repro.distributed`),
* generators for the paper's nine benchmarks (:mod:`repro.apps`) plus a
  workload subsystem of seeded parametric DAG families and a JSON trace
  importer (:mod:`repro.workloads`) for studying replication policies on
  arbitrary task graphs,
* experiment drivers that regenerate every table and figure of the paper's
  evaluation (:mod:`repro.analysis`), executed by a parallel experiment
  engine (:mod:`repro.analysis.runner`) with a vectorized fault-evaluation
  fast path (:mod:`repro.core.vectorized`, :mod:`repro.simulator.fastpath`);
  every driver takes ``parallelism=``/``fast=`` knobs and ``fast=False``
  falls back to the scalar reference implementations,
* a content-addressed results store with cell-level caching and resume
  (:mod:`repro.analysis.store`) behind every driver,
* the unified ``repro`` CLI (:mod:`repro.cli`; also ``python -m repro``)
  with ``run`` / ``sweep`` / ``report`` / ``cache`` / ``workloads``
  subcommands,
* a sweep service (:mod:`repro.serve`; ``repro serve`` / ``submit`` /
  ``status``): an HTTP job queue over the results store whose workers
  shard each grid through atomic, expiring cell leases — N processes or
  machines on one shared cache root drain a sweep exactly once,
* an observability layer (:mod:`repro.obs`; ``repro trace``): structured
  span tracing (``REPRO_TRACE=light|full``), a process-local metrics
  registry behind the service's Prometheus ``GET /metrics``, and
  summarize/Chrome-trace-export tooling — all strictly observation-only.

Configuration environment variables (``REPRO_PARALLELISM``,
``REPRO_REFERENCE``, ``REPRO_BENCH_SCALE``, ``REPRO_CACHE_DIR``,
``REPRO_CODE_VERSION``) are documented in one place: the Configuration
section of the top-level README.

Quickstart::

    from repro import quickstart_appfit
    report = quickstart_appfit()
    print(report)

or, from a shell::

    python -m repro run fig3 --scale 0.1 --out results/
"""

from repro._lazy import lazy_exports

#: Package version.  Note: both on-disk caches hash this into every key — the
#: results store (:func:`repro.analysis.store.spec_key`) and the
#: compiled-graph store (:func:`repro.runtime.compiled.compiled_key`) — so
#: bumping it invalidates all cached cells and compiled graphs; run
#: ``repro cache gc`` to reclaim the old generation.
__version__ = "1.8.0"

#: Public name -> defining package, resolved lazily on first access (see
#: :mod:`repro._lazy`): ``repro run fig5`` never pays for the functional
#: runtime or the fault injector it does not use.
_EXPORTS = {
    "AppFit": "repro.core",
    "CompleteReplication": "repro.core",
    "NoReplication": "repro.core",
    "ReplicationConfig": "repro.core",
    "SelectiveReplicationEngine": "repro.core",
    "decide_for_graph": "repro.core",
    "FailureModel": "repro.faults",
    "FaultInjector": "repro.faults",
    "FitRateSpec": "repro.faults",
    "exascale_scenario": "repro.faults",
    "TaskGraph": "repro.runtime",
    "TaskRuntime": "repro.runtime",
}

__getattr__, __dir__ = lazy_exports(
    __name__,
    _EXPORTS,
    submodules=(
        "analysis",
        "apps",
        "cli",
        "core",
        "distributed",
        "faults",
        "obs",
        "runtime",
        "serve",
        "simulator",
        "util",
        "workloads",
    ),
)

__all__ = [
    "AppFit",
    "CompleteReplication",
    "FailureModel",
    "FaultInjector",
    "FitRateSpec",
    "NoReplication",
    "ReplicationConfig",
    "SelectiveReplicationEngine",
    "TaskGraph",
    "TaskRuntime",
    "decide_for_graph",
    "exascale_scenario",
    "quickstart_appfit",
    "__version__",
]


def quickstart_appfit(multiplier: float = 10.0, benchmark: str = "cholesky"):
    """Run App_FIT on one scaled-down benchmark and return a short text report.

    Convenience entry point used by the README and ``examples/quickstart.py``.
    """
    from repro.analysis.experiments import appfit_single_benchmark

    return appfit_single_benchmark(benchmark_name=benchmark, multiplier=multiplier)
