"""Baseline selection policies App_FIT is compared against.

The paper's evaluation uses two extremes — complete replication (Section V-A2)
and, implicitly, no replication (the fault-free baseline) — and notes that
optimal selection is a bounded-knapsack problem.  This module provides those
two extremes plus simple selective baselines (random, periodic, per-task FIT
threshold, offline top-FIT) used by the ablation benchmarks to show where a
budget-aware heuristic earns its keep.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.estimator import ArgumentSizeEstimator, FailureRateEstimator
from repro.core.heuristic import SelectionDecision, SelectionPolicy
from repro.runtime.task import TaskDescriptor
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_non_negative, check_positive_int


class _CountingPolicy(SelectionPolicy):
    """Shared bookkeeping: decision list and replication fraction."""

    def __init__(self) -> None:
        self.decisions: List[SelectionDecision] = []

    def _record(self, task: TaskDescriptor, replicate: bool, task_fit: float = 0.0) -> SelectionDecision:
        """Build the decision and update the running replication counters."""
        decision = SelectionDecision(
            task_id=task.task_id,
            replicate=replicate,
            task_fit=task_fit,
            current_fit_after=0.0,
            envelope=0.0,
            decision_index=len(self.decisions) + 1,
        )
        self.decisions.append(decision)
        return decision

    def replication_fraction(self) -> float:
        """Fraction of decided tasks that were replicated."""
        if not self.decisions:
            return 0.0
        return sum(1 for d in self.decisions if d.replicate) / len(self.decisions)


class CompleteReplication(_CountingPolicy):
    """Replicate every task (the paper's Section V-A2 configuration)."""

    name = "complete"

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Always replicate."""
        return self._record(task, True)


class NoReplication(_CountingPolicy):
    """Never replicate (the fault-free / unprotected baseline)."""

    name = "none"

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Never replicate."""
        return self._record(task, False)


class RandomReplication(_CountingPolicy):
    """Replicate each task independently with probability ``p``.

    A FIT-oblivious baseline: it reaches a target *count* of replicas but
    ignores which tasks actually carry reliability weight.
    """

    name = "random"

    def __init__(self, probability: float, rng: Optional[RngStream] = None) -> None:
        super().__init__()
        self.probability = check_fraction(probability, "probability")
        self.rng = rng if rng is not None else RngStream(11)

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Replicate with fixed probability."""
        return self._record(task, self.rng.bernoulli(self.probability))


class PeriodicReplication(_CountingPolicy):
    """Replicate every ``period``-th task (1 = complete replication)."""

    name = "periodic"

    def __init__(self, period: int) -> None:
        super().__init__()
        self.period = check_positive_int(period, "period")
        self._count = 0

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Replicate tasks whose arrival index is a multiple of the period."""
        self._count += 1
        return self._record(task, self._count % self.period == 0)


class FitThresholdPolicy(_CountingPolicy):
    """Replicate tasks whose own FIT exceeds a fixed per-task threshold.

    Unlike App_FIT this policy has no notion of an application budget: it needs
    the per-task threshold tuned by hand for every application and error rate.
    """

    name = "fit_threshold"

    def __init__(
        self,
        per_task_fit_threshold: float,
        estimator: Optional[FailureRateEstimator] = None,
    ) -> None:
        super().__init__()
        self.per_task_fit_threshold = check_non_negative(
            per_task_fit_threshold, "per_task_fit_threshold"
        )
        self.estimator = estimator if estimator is not None else ArgumentSizeEstimator()

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Replicate iff the task's estimated FIT exceeds the fixed threshold."""
        fit = self.estimator.estimate(task).total_fit
        return self._record(task, fit > self.per_task_fit_threshold, task_fit=fit)


class TopFitReplication(_CountingPolicy):
    """Offline baseline: replicate the ``fraction`` of tasks with highest FIT.

    Requires the whole task list up front (via :meth:`prepare`), i.e. exactly
    the profiling knowledge App_FIT is designed to avoid needing.
    """

    name = "top_fit"

    def __init__(
        self,
        fraction: float,
        estimator: Optional[FailureRateEstimator] = None,
    ) -> None:
        super().__init__()
        self.fraction = check_fraction(fraction, "fraction")
        self.estimator = estimator if estimator is not None else ArgumentSizeEstimator()
        self._selected: set = set()
        self._prepared = False

    def prepare(self, tasks: List[TaskDescriptor]) -> None:
        """Pick the top-FIT fraction of the task list."""
        from repro.core.estimator import estimate_total_fits

        fits = estimate_total_fits(self.estimator, tasks)
        ranked = sorted(zip(tasks, fits.tolist()), key=lambda tf: tf[1], reverse=True)
        k = int(round(self.fraction * len(ranked)))
        self._selected = {t.task_id for t, _fit in ranked[:k]}
        self._prepared = True

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Replicate iff the task was selected during :meth:`prepare`."""
        if not self._prepared:
            raise RuntimeError("TopFitReplication.prepare() must be called first")
        fit = self.estimator.estimate(task).total_fit
        return self._record(task, task.task_id in self._selected, task_fit=fit)
