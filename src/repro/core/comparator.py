"""Output comparators and majority voting (steps 3-5 of the paper's design).

The original task and its replica are synchronised once, at the end of their
execution, where their results are compared.  Inequality signals an SDC; the
task is then re-executed from its checkpoint and the majority of the three
results wins.  The paper uses bitwise comparison but notes that other
comparators (e.g. residue checkers) can be deployed — hence the pluggable
interface here.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

import numpy as np


class ComparisonResult(enum.Enum):
    """Outcome of comparing two executions' outputs."""

    MATCH = "match"
    MISMATCH = "mismatch"


class OutputComparator(Protocol):
    """Compares two sets of output arrays produced by redundant executions."""

    def compare(self, a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> ComparisonResult:
        """Return MATCH when the outputs are considered equal."""
        ...  # pragma: no cover - protocol definition

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Whether two single arrays are considered equal."""
        ...  # pragma: no cover - protocol definition


class _BaseComparator:
    """Shared sequence-comparison logic for concrete comparators."""

    def compare(self, a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> ComparisonResult:
        """Compare output sets element-wise; any mismatch fails the whole set."""
        if len(a) != len(b):
            return ComparisonResult.MISMATCH
        for x, y in zip(a, b):
            if not self.equal(x, y):
                return ComparisonResult.MISMATCH
        return ComparisonResult.MATCH

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:  # pragma: no cover - abstract
        """Whether two arrays are considered equal (subclass contract)."""
        raise NotImplementedError


class BitwiseComparator(_BaseComparator):
    """Exact byte-for-byte equality (the paper's default)."""

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Byte-level equality of the two buffers."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape or a.dtype != b.dtype:
            return False
        return bool(np.array_equal(a.view(np.uint8), b.view(np.uint8)))


class ToleranceComparator(_BaseComparator):
    """Approximate equality within absolute/relative tolerances.

    Useful when replicas may legitimately differ in the last bits (e.g.
    non-deterministic reduction orders); NaNs are treated as equal to NaNs so a
    corrupted NaN still differs from a finite value.
    """

    def __init__(self, rtol: float = 1e-12, atol: float = 0.0) -> None:
        if rtol < 0 or atol < 0:
            raise ValueError("tolerances must be non-negative")
        self.rtol = rtol
        self.atol = atol

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Element-wise closeness within the configured tolerances."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            return False
        if not (np.issubdtype(a.dtype, np.inexact) or np.issubdtype(b.dtype, np.inexact)):
            return bool(np.array_equal(a, b))
        return bool(np.allclose(a, b, rtol=self.rtol, atol=self.atol, equal_nan=True))


class ChecksumComparator(_BaseComparator):
    """Residue-style comparison via CRC32 checksums of the raw bytes.

    Cheaper to transport than full buffers (only the checksum needs to cross
    the node boundary in a distributed setting); detection strength is that of
    CRC32.
    """

    @staticmethod
    def checksum(a: np.ndarray) -> int:
        """CRC32 of the array's raw bytes (shape/dtype included via a header)."""
        a = np.ascontiguousarray(a)
        header = f"{a.dtype.str}:{a.shape}".encode()
        return zlib.crc32(a.tobytes(), zlib.crc32(header))

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Checksum equality."""
        return self.checksum(np.asarray(a)) == self.checksum(np.asarray(b))


@dataclass
class VoteResult:
    """Outcome of a majority vote across redundant executions."""

    winner_index: Optional[int]
    agreeing_indices: List[int]

    @property
    def resolved(self) -> bool:
        """Whether a majority was found."""
        return self.winner_index is not None


def majority_vote(
    candidates: Sequence[Sequence[np.ndarray]],
    comparator: Optional[OutputComparator] = None,
) -> VoteResult:
    """Majority vote over candidate output sets (step 5 of the paper's design).

    Each candidate is the list of output arrays produced by one execution.
    Returns the index of a candidate that agrees with a strict majority, or an
    unresolved result when every candidate disagrees with every other.
    """
    comparator = comparator if comparator is not None else BitwiseComparator()
    n = len(candidates)
    if n == 0:
        raise ValueError("majority_vote needs at least one candidate")
    majority = n // 2 + 1
    for i in range(n):
        agreeing = [i]
        for j in range(n):
            if i == j:
                continue
            if comparator.compare(candidates[i], candidates[j]) is ComparisonResult.MATCH:
                agreeing.append(j)
        if len(agreeing) >= majority:
            return VoteResult(winner_index=i, agreeing_indices=sorted(agreeing))
    return VoteResult(winner_index=None, agreeing_indices=[])
