"""The App_FIT selection heuristic (paper Section IV-B, Equation 1).

When a task is about to execute, App_FIT atomically checks

    current_fit + (λF(T) + λSDC(T)) > (threshold / N) * (i + 1)

and replicates the task when the condition holds: leaving the task unprotected
would push the accumulated FIT past the pro-rated share of the threshold
allotted to the tasks decided so far.  App_FIT only ever *adds* tasks to the
replicated set — replicas are never removed — so the reliability already paid
for is never lost.

The heuristic uses only information the dataflow runtime already has (argument
sizes, the total task count supplied by the user) and therefore needs no
profiling pre-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.estimator import ArgumentSizeEstimator, FailureRateEstimator
from repro.core.fit import FitAccount, FitAudit
from repro.runtime.task import TaskDescriptor
from repro.util.validation import check_non_negative, check_positive_int


@dataclass
class SelectionDecision:
    """The outcome of one selection decision."""

    task_id: int
    replicate: bool
    task_fit: float
    current_fit_after: float
    envelope: float
    decision_index: int


class SelectionPolicy:
    """Base class for task-selection policies.

    A policy is consulted once per task, in the order tasks reach the point of
    execution, via :meth:`decide`.  Policies that need the full graph up front
    (offline baselines) override :meth:`prepare`.
    """

    #: Human-readable policy name used in reports.
    name: str = "base"

    def prepare(self, tasks: List[TaskDescriptor]) -> None:
        """Offline hook called with all tasks before execution starts."""

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Decide whether ``task`` must be replicated."""
        raise NotImplementedError

    def notify_completion(self, task: TaskDescriptor, replicated: bool) -> None:
        """Optional hook called when a task finishes (unused by most policies)."""


class AppFit(SelectionPolicy):
    """The paper's heuristic: keep the application under a FIT threshold.

    Parameters
    ----------
    threshold:
        The user-specified application FIT target.
    total_tasks:
        ``N``, the total number of tasks, which the paper assumes the user
        knows and passes to the runtime.
    estimator:
        Failure-rate estimator; defaults to the argument-size estimator of
        Section IV-A.
    residual_fit_factor:
        FIT fraction still charged for replicated tasks (see
        :class:`~repro.core.config.ReplicationConfig`).
    """

    name = "app_fit"

    def __init__(
        self,
        threshold: float,
        total_tasks: int,
        estimator: Optional[FailureRateEstimator] = None,
        residual_fit_factor: float = 0.0,
    ) -> None:
        check_non_negative(threshold, "threshold")
        check_positive_int(total_tasks, "total_tasks")
        self.estimator = estimator if estimator is not None else ArgumentSizeEstimator()
        self.account = FitAccount(threshold=threshold, total_tasks=total_tasks)
        self.residual_fit_factor = residual_fit_factor
        self.decisions: List[SelectionDecision] = []

    @property
    def threshold(self) -> float:
        """The configured application FIT threshold."""
        return self.account.threshold

    @property
    def total_tasks(self) -> int:
        """``N`` — the task count the envelope is pro-rated over."""
        return self.account.total_tasks

    def decide(self, task: TaskDescriptor) -> SelectionDecision:
        """Apply Equation 1 atomically and record the decision."""
        rates = self.estimator.estimate(task)
        envelope_before = self.account.envelope()
        replicate = self.account.decide(
            rates.total_fit, residual_fit_factor=self.residual_fit_factor
        )
        decision = SelectionDecision(
            task_id=task.task_id,
            replicate=replicate,
            task_fit=rates.total_fit,
            current_fit_after=self.account.current_fit,
            envelope=envelope_before,
            decision_index=self.account.decisions,
        )
        self.decisions.append(decision)
        return decision

    def audit(self) -> FitAudit:
        """Snapshot of the FIT account for threshold-respected verification."""
        return self.account.audit()

    def replicated_task_ids(self) -> List[int]:
        """Ids of tasks the heuristic chose to replicate so far."""
        return [d.task_id for d in self.decisions if d.replicate]

    def replication_fraction(self) -> float:
        """Fraction of decided tasks that were replicated."""
        if not self.decisions:
            return 0.0
        return sum(1 for d in self.decisions if d.replicate) / len(self.decisions)
