"""The task replication protocol of the paper's Figure 2.

For a task selected for protection the replicator:

1. checkpoints the task's inputs into the safe store,
2. creates a replica (a duplicate descriptor) and executes original and
   replica,
3. compares their results at the single end-of-task synchronisation point,
4. on inequality (an SDC), restores the checkpointed inputs and re-executes,
5. selects the majority of the three results as the task's result.

A crash (DUE) of one execution is tolerated because the other replica carries
on; if both crash, the task is restarted from its checkpoint.

In functional mode the "parallel" executions run back-to-back inside one
worker, each against the restored input state, which is behaviourally
equivalent at the task boundary (the only synchronisation point the protocol
has).  The timing consequences of true parallel replicas on spare cores are
modelled by the machine simulator instead.

Everything the protocol snapshots, compares, restores or commits is scoped to
the task's *argument regions* — never the whole backing arrays.  Together
with the injector's keyed per-execution fault streams this makes multi-worker
functional runs deterministic: concurrent tasks operating on disjoint blocks
of one registered array recover independently, and replay of a
non-idempotent ``inout`` kernel always re-runs from its restored region
bytes, so in-place updates cannot be double-applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkpoint import CheckpointStore
from repro.core.comparator import (
    BitwiseComparator,
    ComparisonResult,
    OutputComparator,
    majority_vote,
)
from repro.core.config import ReplicationConfig
from repro.faults.corruption import corrupt_array
from repro.faults.errors import ErrorClass, FaultEvent
from repro.faults.injector import FaultInjector
from repro.runtime.events import EventKind, EventLog
from repro.runtime.executor import task_write_views
from repro.runtime.task import Direction, TaskDescriptor
from repro.util.rng import RngStream


@dataclass
class ReplicationOutcome:
    """What happened while executing one task (protected or not)."""

    task_id: int
    protected: bool
    executions: int = 0
    crashes_seen: int = 0
    sdc_injected: int = 0
    sdc_detected: bool = False
    sdc_corrected: bool = False
    sdc_escaped: bool = False
    crash_recovered: bool = False
    fatal_crash: bool = False
    vote_performed: bool = False
    unrecovered: bool = False
    faults: List[FaultEvent] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the task completed with a correct, committed result."""
        return not self.fatal_crash and not self.sdc_escaped and not self.unrecovered


class TaskReplicator:
    """Executes tasks with (or without) the replication protocol."""

    def __init__(
        self,
        injector: Optional[FaultInjector] = None,
        comparator: Optional[OutputComparator] = None,
        checkpoints: Optional[CheckpointStore] = None,
        config: Optional[ReplicationConfig] = None,
        events: Optional[EventLog] = None,
        corruption_rng: Optional[RngStream] = None,
    ) -> None:
        self.injector = injector if injector is not None else FaultInjector()
        self.comparator = comparator if comparator is not None else BitwiseComparator()
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointStore()
        self.config = config if config is not None else ReplicationConfig()
        self.events = events if events is not None else EventLog()
        self.corruption_rng = corruption_rng if corruption_rng is not None else RngStream(7)

    # -- low-level helpers -----------------------------------------------------

    @staticmethod
    def _output_views(task: TaskDescriptor) -> List[np.ndarray]:
        """Views of exactly the byte ranges the task writes (deduplicated).

        Region-scoped on purpose: snapshots, comparisons and commits must not
        read or write bytes owned by other tasks that may run concurrently on
        different blocks of the same backing array.
        """
        return task_write_views(task)

    def _snapshot_outputs(self, task: TaskDescriptor) -> List[np.ndarray]:
        """Copies of the task's current output region bytes."""
        return [np.copy(view) for view in self._output_views(task)]

    def _commit_outputs(self, task: TaskDescriptor, snapshot: Sequence[np.ndarray]) -> None:
        """Write a snapshot back into the task's output regions."""
        for dst, src in zip(self._output_views(task), snapshot):
            np.copyto(dst, src)

    def _execute_once(
        self,
        task: TaskDescriptor,
        invoke: Callable[[TaskDescriptor], Any],
        execution_index: int,
        outcome: ReplicationOutcome,
    ) -> Tuple[Optional[List[np.ndarray]], bool]:
        """Run the task body once with fault injection.

        Returns ``(output_snapshot, crashed)``.  A crashed execution produces no
        snapshot.  An SDC corrupts the produced outputs (storage and snapshot).
        """
        faults = self.injector.draw(task, execution_index=execution_index)
        outcome.faults.extend(faults)
        outcome.executions += 1
        crash = any(f.error_class is ErrorClass.DUE for f in faults)
        sdc = any(f.error_class is ErrorClass.SDC for f in faults)
        if crash:
            outcome.crashes_seen += 1
            self.events.record(
                EventKind.CRASH_DETECTED, task_id=task.task_id, execution=execution_index
            )
            return None, True
        invoke(task)
        if sdc:
            outcome.sdc_injected += 1
            outputs = self._output_views(task)
            if outputs:
                # Corruption content comes from the keyed per-execution lane of
                # the injector, so *which bits* an escaped SDC flips is as
                # deterministic as whether the SDC was injected.  The shared
                # sequential ``corruption_rng`` remains only as a fallback for
                # custom injectors without keyed streams.
                stream_for = getattr(self.injector, "corruption_stream", None)
                rng = (
                    stream_for(task.task_id, execution_index)
                    if stream_for is not None
                    else self.corruption_rng
                )
                target = outputs[rng.integers(0, len(outputs))]
                if target.size:
                    corrupt_array(target, rng)
        return self._snapshot_outputs(task), False

    # -- unprotected execution --------------------------------------------------

    def execute_unprotected(
        self, task: TaskDescriptor, invoke: Callable[[TaskDescriptor], Any]
    ) -> ReplicationOutcome:
        """Run the task once with no protection (no checkpoint, no replica)."""
        outcome = ReplicationOutcome(task_id=task.task_id, protected=False)
        snapshot, crashed = self._execute_once(task, invoke, 0, outcome)
        if crashed:
            # Without replication or a checkpoint the failure is not masked:
            # it would take the application down (a DUE) — record it as fatal.
            outcome.fatal_crash = True
            self.events.record(EventKind.CRASH_FATAL, task_id=task.task_id)
        elif outcome.sdc_injected:
            # The corruption goes unnoticed: silent wrong results.
            outcome.sdc_escaped = True
            self.events.record(EventKind.SDC_UNDETECTED, task_id=task.task_id)
        return outcome

    # -- protected execution -----------------------------------------------------

    def execute_protected(
        self, task: TaskDescriptor, invoke: Callable[[TaskDescriptor], Any]
    ) -> ReplicationOutcome:
        """Run the task under the full replication protocol."""
        outcome = ReplicationOutcome(task_id=task.task_id, protected=True)

        if self.config.checkpoint_inputs:
            self.checkpoints.capture(task)
            self.events.record(
                EventKind.CHECKPOINT_TAKEN, task_id=task.task_id, bytes=task.input_bytes
            )

        self.events.record(EventKind.TASK_REPLICATED, task_id=task.task_id)

        # Original execution.
        snap0, crash0 = self._execute_once(task, invoke, 0, outcome)
        # Restore pristine inputs for the replica (the real runtime gives the
        # replica its own argument copies; restoring is the sequential analogue).
        self._restore(task)
        snap1, crash1 = self._execute_once(task, invoke, 1, outcome)
        self.events.record(EventKind.REPLICA_FINISHED, task_id=task.task_id)

        candidates: List[List[np.ndarray]] = []
        if snap0 is not None:
            candidates.append(snap0)
        if snap1 is not None:
            candidates.append(snap1)

        if not candidates:
            # Both executions crashed: restart from the checkpoint.
            recovered = self._reexecute_until_success(task, invoke, outcome)
            if recovered is None:
                outcome.unrecovered = True
                outcome.fatal_crash = True
                self.events.record(EventKind.CRASH_FATAL, task_id=task.task_id)
            else:
                outcome.crash_recovered = True
                self._commit_outputs(task, recovered)
                self.events.record(EventKind.CRASH_RECOVERED, task_id=task.task_id)
            self._finish(task)
            return outcome

        if len(candidates) == 1:
            # One replica crashed; the survivor's result is the task's result.
            outcome.crash_recovered = outcome.crashes_seen > 0
            if outcome.crash_recovered:
                self.events.record(EventKind.CRASH_RECOVERED, task_id=task.task_id)
            self._commit_outputs(task, candidates[0])
            # A surviving single execution cannot be cross-checked: an SDC in it
            # escapes (matches the protocol: comparison needs two results).
            if outcome.sdc_injected and not crash0 and snap0 is candidates[0]:
                outcome.sdc_escaped = True
                self.events.record(EventKind.SDC_UNDETECTED, task_id=task.task_id)
            elif outcome.sdc_injected and not crash1 and snap1 is candidates[0]:
                outcome.sdc_escaped = True
                self.events.record(EventKind.SDC_UNDETECTED, task_id=task.task_id)
            self._finish(task)
            return outcome

        # Both executions completed: the single synchronisation point.
        if not self.config.compare_outputs:
            self._commit_outputs(task, candidates[1])
            if outcome.sdc_injected:
                outcome.sdc_escaped = True
                self.events.record(EventKind.SDC_UNDETECTED, task_id=task.task_id)
            self._finish(task)
            return outcome

        result = self.comparator.compare(candidates[0], candidates[1])
        self.events.record(
            EventKind.COMPARISON_PERFORMED,
            task_id=task.task_id,
            result=result.value,
        )
        if result is ComparisonResult.MATCH:
            self._commit_outputs(task, candidates[1])
            # Identical corruption of both executions is the (vanishingly rare)
            # escape mode of duplex comparison.
            if outcome.sdc_injected >= 2:
                outcome.sdc_escaped = True
                self.events.record(EventKind.SDC_UNDETECTED, task_id=task.task_id)
            self._finish(task)
            return outcome

        # Mismatch: an SDC occurred in one of the executions.
        outcome.sdc_detected = True
        self.events.record(EventKind.SDC_DETECTED, task_id=task.task_id)

        if not self.config.vote_on_mismatch:
            outcome.unrecovered = True
            self._finish(task)
            return outcome

        reexec = self._reexecute_until_success(task, invoke, outcome)
        if reexec is None:
            outcome.unrecovered = True
            self._finish(task)
            return outcome
        candidates.append(reexec)

        vote = majority_vote(candidates, self.comparator)
        outcome.vote_performed = True
        self.events.record(
            EventKind.VOTE_PERFORMED,
            task_id=task.task_id,
            resolved=vote.resolved,
        )
        if vote.resolved:
            self._commit_outputs(task, candidates[vote.winner_index])
            outcome.sdc_corrected = True
            self.events.record(EventKind.SDC_CORRECTED, task_id=task.task_id)
        else:
            outcome.unrecovered = True
        self._finish(task)
        return outcome

    # -- recovery helpers ---------------------------------------------------------

    def _restore(self, task: TaskDescriptor) -> None:
        """Roll the task's inputs back from their checkpoints before a re-run."""
        if self.config.checkpoint_inputs:
            restored = self.checkpoints.restore(task)
            if restored:
                self.events.record(EventKind.CHECKPOINT_RESTORED, task_id=task.task_id)

    def _reexecute_until_success(
        self,
        task: TaskDescriptor,
        invoke: Callable[[TaskDescriptor], Any],
        outcome: ReplicationOutcome,
    ) -> Optional[List[np.ndarray]]:
        """Restore + re-execute, tolerating crashes up to the configured limit."""
        for attempt in range(self.config.max_reexecutions + 1):
            self._restore(task)
            self.events.record(
                EventKind.REEXECUTION, task_id=task.task_id, attempt=attempt
            )
            snapshot, crashed = self._execute_once(
                task, invoke, execution_index=2 + attempt, outcome=outcome
            )
            if not crashed and snapshot is not None:
                return snapshot
        return None

    def _finish(self, task: TaskDescriptor) -> None:
        """Release the task's checkpoints once its result is accepted."""
        if self.config.checkpoint_inputs:
            self.checkpoints.release(task.task_id)
