"""Offline knapsack oracle for selective replication.

The paper observes that *optimal* selective replication is NP-hard and can be
formalised as a bounded knapsack problem; practical solutions must therefore be
heuristics.  This module implements that offline formulation as an oracle
baseline for the ablation benchmarks:

    choose the set U of tasks left unprotected so that
        sum of FIT(T) for T in U  <=  threshold
    maximising the replication cost avoided (the summed duration of U),

which is a 0/1 knapsack with capacity ``threshold``, item weight ``FIT(T)`` and
item value ``duration(T)`` (falling back to FIT as the value when durations are
unknown).  Everything *not* in the knapsack is replicated.

Two solvers are provided: an exact dynamic program over a discretised FIT grid
(for modest task counts) and a greedy density heuristic (for the Table I-sized
graphs, tens of thousands of tasks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.estimator import (
    ArgumentSizeEstimator,
    FailureRateEstimator,
    estimate_total_fits,
)
from repro.runtime.task import TaskDescriptor
from repro.util.validation import check_non_negative, check_positive_int


@dataclass
class KnapsackSolution:
    """Result of the oracle: which tasks to replicate."""

    replicate_ids: Set[int]
    unprotected_ids: Set[int]
    unprotected_fit: float
    threshold: float
    replicated_duration_s: float
    total_duration_s: float

    @property
    def replication_task_fraction(self) -> float:
        """Fraction of tasks selected for replication."""
        total = len(self.replicate_ids) + len(self.unprotected_ids)
        return len(self.replicate_ids) / total if total else 0.0

    @property
    def replication_time_fraction(self) -> float:
        """Fraction of computation time selected for replication."""
        if self.total_duration_s <= 0:
            return self.replication_task_fraction
        return self.replicated_duration_s / self.total_duration_s

    @property
    def feasible(self) -> bool:
        """Whether the unprotected FIT respects the threshold."""
        return self.unprotected_fit <= self.threshold + 1e-12


class KnapsackOracle:
    """Offline near-optimal selective replication baseline."""

    def __init__(
        self,
        threshold: float,
        estimator: Optional[FailureRateEstimator] = None,
        exact_limit: int = 64,
        grid_size: int = 2048,
    ) -> None:
        self.threshold = check_non_negative(threshold, "threshold")
        self.estimator = estimator if estimator is not None else ArgumentSizeEstimator()
        self.exact_limit = check_positive_int(exact_limit, "exact_limit")
        self.grid_size = check_positive_int(grid_size, "grid_size")

    # -- public API --------------------------------------------------------------

    def solve(self, tasks: Sequence[TaskDescriptor]) -> KnapsackSolution:
        """Choose the tasks to replicate for the given task list."""
        items = self._items(tasks)
        if len(items) <= self.exact_limit:
            keep = self._solve_exact(items)
        else:
            keep = self._solve_greedy(items)
        self._enforce_feasible(items, keep)
        return self._solution(items, keep)

    # -- internals ----------------------------------------------------------------

    def _items(self, tasks: Sequence[TaskDescriptor]) -> List[Tuple[int, float, float]]:
        """(task_id, fit_weight, value) triples; value defaults to FIT when no durations."""
        have_durations = any(t.duration_s > 0 for t in tasks)
        fits = estimate_total_fits(self.estimator, tasks).tolist()
        items: List[Tuple[int, float, float]] = []
        for t, fit in zip(tasks, fits):
            value = t.duration_s if have_durations else fit
            items.append((t.task_id, fit, value))
        return items

    def _solve_greedy(self, items: List[Tuple[int, float, float]]) -> Set[int]:
        """Greedy by value density: pack high value-per-FIT tasks as unprotected."""
        budget = self.threshold
        keep: Set[int] = set()
        # Zero-FIT items are free to leave unprotected.
        ranked = sorted(
            items,
            key=lambda it: (it[2] / it[1]) if it[1] > 0 else float("inf"),
            reverse=True,
        )
        for task_id, fit, _value in ranked:
            if fit <= 0.0:
                keep.add(task_id)
            elif fit <= budget:
                keep.add(task_id)
                budget -= fit
        return keep

    def _solve_exact(self, items: List[Tuple[int, float, float]]) -> Set[int]:
        """Exact DP over a discretised FIT grid (ceil-rounded weights stay feasible)."""
        positive = [it for it in items if it[1] > 0]
        free = {it[0] for it in items if it[1] <= 0}
        if not positive or self.threshold <= 0:
            return free
        import math

        scale = self.grid_size / self.threshold
        if not math.isfinite(scale):
            # The threshold is so small (denormal) that the grid degenerates:
            # no positive-FIT task fits, so only the zero-FIT ones stay bare.
            return free
        weights: List[int] = []
        for it in positive:
            w = it[1] * scale
            # NaN/inf/oversized weights can never be packed; clamp instead of
            # letting ``int(ceil(inf))`` overflow.
            weights.append(int(math.ceil(w)) if w <= self.grid_size else self.grid_size + 1)
        values = [it[2] for it in positive]
        capacity = self.grid_size
        n = len(positive)
        # dp[c] = best value using capacity c; choice tracking for reconstruction.
        dp = [0.0] * (capacity + 1)
        take = [[False] * (capacity + 1) for _ in range(n)]
        for i in range(n):
            w, v = weights[i], values[i]
            if w > capacity:
                continue
            for c in range(capacity, w - 1, -1):
                cand = dp[c - w] + v
                if cand > dp[c]:
                    dp[c] = cand
                    take[i][c] = True
        # Reconstruct.
        keep: Set[int] = set(free)
        c = capacity
        for i in range(n - 1, -1, -1):
            if take[i][c]:
                keep.add(positive[i][0])
                c -= weights[i]
        return keep

    def _enforce_feasible(self, items: List[Tuple[int, float, float]], keep: Set[int]) -> None:
        """Repair ``keep`` in place so the unprotected FIT respects the threshold.

        Both solvers work on rounded/decremented weights, so accumulated
        floating-point error can leave the chosen set a hair over the budget
        (the hypothesis suite found a denormal-threshold case).  Evicting the
        lowest value-density items first restores feasibility while giving up
        the least replication cost avoided.
        """
        kept = [it for it in items if it[0] in keep and it[1] > 0]
        unprotected_fit = sum(it[1] for it in kept)
        if unprotected_fit <= self.threshold:
            return
        kept.sort(key=lambda it: (it[2] / it[1]) if it[1] > 0 else float("inf"))
        for task_id, fit, _value in kept:
            keep.discard(task_id)
            unprotected_fit = sum(it[1] for it in items if it[0] in keep)
            if unprotected_fit <= self.threshold:
                return

    def _solution(
        self, items: List[Tuple[int, float, float]], keep: Set[int]
    ) -> KnapsackSolution:
        """Assemble the solution record for the kept (replicated) item set."""
        unprotected_fit = sum(fit for tid, fit, _ in items if tid in keep)
        replicate_ids = {tid for tid, _, _ in items if tid not in keep}
        total_duration = sum(v for _, _, v in items)
        replicated_duration = sum(v for tid, _, v in items if tid in replicate_ids)
        return KnapsackSolution(
            replicate_ids=replicate_ids,
            unprotected_ids=set(keep),
            unprotected_fit=unprotected_fit,
            threshold=self.threshold,
            replicated_duration_s=replicated_duration,
            total_duration_s=total_duration,
        )
