"""Pluggable per-task failure-rate estimators (paper Section IV-A).

The paper estimates λF(T) and λSDC(T) from argument sizes and stresses that the
framework is *orthogonal* to how the rates are obtained: vulnerability
analyses, system logs or application-specific studies can refine them and the
heuristic consumes the refined numbers unchanged.  This module provides the
argument-size estimator (the paper's default) plus two refinement hooks that
demonstrate that orthogonality and are exercised by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Protocol, Sequence

import numpy as np

from repro.faults.model import FailureModel, TaskFailureRates
from repro.faults.rates import FitRateSpec
from repro.runtime.task import TaskDescriptor
from repro.util.validation import check_non_negative


class FailureRateEstimator(Protocol):
    """Anything that can attribute crash/SDC FIT rates to a task."""

    def estimate(self, task: TaskDescriptor) -> TaskFailureRates:
        """Return the estimated rates for ``task``."""
        ...  # pragma: no cover - protocol definition


def estimate_total_fits(
    estimator: "FailureRateEstimator", tasks: Sequence[TaskDescriptor]
) -> np.ndarray:
    """Total FIT (crash + SDC) per task, using the batch API when available.

    Estimators may provide ``estimate_batch(tasks) -> np.ndarray`` as a
    vectorized fast path; anything else falls back to the scalar protocol.
    Both paths return the same values — the batch implementations mirror the
    scalar arithmetic exactly.
    """
    batch = getattr(estimator, "estimate_batch", None)
    if batch is not None:
        return np.asarray(batch(tasks), dtype=np.float64)
    return np.fromiter(
        (estimator.estimate(t).total_fit for t in tasks),
        dtype=np.float64,
        count=len(tasks),
    )


class ArgumentSizeEstimator:
    """The paper's estimator: node FIT scaled by task argument size."""

    def __init__(self, rate_spec: Optional[FitRateSpec] = None) -> None:
        self.model = FailureModel(rate_spec)

    @property
    def rate_spec(self) -> FitRateSpec:
        """The underlying rate specification."""
        return self.model.rate_spec

    def estimate(self, task: TaskDescriptor) -> TaskFailureRates:
        """λF(T), λSDC(T) proportional to the task's total argument bytes."""
        return self.model.task_rates(task)

    def estimate_batch(self, tasks: Sequence[TaskDescriptor]) -> np.ndarray:
        """Vectorized total FIT for every task (bit-identical to :meth:`estimate`)."""
        return self.model.task_total_fit_array(tasks)

    def estimate_batch_bytes(self, arg_bytes: np.ndarray) -> np.ndarray:
        """Vectorized total FIT from per-task argument-byte totals.

        The compiled-graph fast path stores each task's total argument size
        as a flat array; this maps it straight to FITs without descriptors,
        bit-identical to :meth:`estimate_batch` on the original tasks.
        """
        return self.model.fit_array_for_bytes(arg_bytes)


class VulnerabilityWeightedEstimator:
    """Refines a base estimator with per-task-type vulnerability weights.

    A weight below 1 models task types that mask errors (e.g. tasks dominated
    by silent stores, the paper's example); above 1 models types whose outputs
    are unusually critical.  Unknown task types use ``default_weight``.
    """

    def __init__(
        self,
        base: FailureRateEstimator,
        weights: Mapping[str, float],
        default_weight: float = 1.0,
    ) -> None:
        self.base = base
        self.weights: Dict[str, float] = {
            k: check_non_negative(v, f"weight[{k}]") for k, v in weights.items()
        }
        self.default_weight = check_non_negative(default_weight, "default_weight")

    def estimate(self, task: TaskDescriptor) -> TaskFailureRates:
        """Base rates scaled by the task type's vulnerability weight."""
        base = self.base.estimate(task)
        w = self.weights.get(task.task_type, self.default_weight)
        return TaskFailureRates(
            task_id=base.task_id,
            crash_fit=base.crash_fit * w,
            sdc_fit=base.sdc_fit * w,
        )


@dataclass
class TraceBasedEstimator:
    """Rates measured externally (e.g. from system failure logs), per task type.

    ``rates`` maps a task type to ``(crash_fit, sdc_fit)``.  Task types absent
    from the trace fall back to ``fallback`` when provided, else zero rates
    (the conservative choice would be a large rate; zero matches the "no
    evidence of failures for this code" reading of a log-derived model and is
    what the unit tests pin down).
    """

    rates: Dict[str, tuple] = field(default_factory=dict)
    fallback: Optional[FailureRateEstimator] = None

    def estimate(self, task: TaskDescriptor) -> TaskFailureRates:
        """Look the task type up in the trace, falling back when unknown."""
        if task.task_type in self.rates:
            crash, sdc = self.rates[task.task_type]
            return TaskFailureRates(
                task_id=task.task_id,
                crash_fit=check_non_negative(crash, "crash_fit"),
                sdc_fit=check_non_negative(sdc, "sdc_fit"),
            )
        if self.fallback is not None:
            return self.fallback.estimate(task)
        return TaskFailureRates(task_id=task.task_id, crash_fit=0.0, sdc_fit=0.0)
