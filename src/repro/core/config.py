"""Configuration of the selective replication machinery."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_probability


@dataclass
class ReplicationConfig:
    """Tunables shared by the replication protocol and the FIT accounting.

    Attributes
    ----------
    residual_fit_factor:
        Fraction of a task's FIT still charged to ``current_fit`` when the task
        *is* replicated.  The paper's accounting is only self-consistent if a
        replicated (and checkpointed) task contributes ~nothing, so the default
        is 0; setting a small value models imperfect coverage (e.g. faults in
        the comparator) and is swept by an ablation benchmark.
    max_reexecutions:
        How many times a task may be re-executed during SDC recovery before the
        engine gives up and reports an unrecovered error.
    compare_outputs:
        Whether replica outputs are compared at all (disabling this models a
        crash-only replication scheme).
    vote_on_mismatch:
        Whether a third execution plus majority vote is performed on mismatch
        (the paper's design); when disabled a mismatch only raises detection.
    checkpoint_inputs:
        Whether task inputs are checkpointed before execution (step 1 of the
        paper's Figure 2).  Required for SDC recovery.
    """

    residual_fit_factor: float = 0.0
    max_reexecutions: int = 2
    compare_outputs: bool = True
    vote_on_mismatch: bool = True
    checkpoint_inputs: bool = True

    def __post_init__(self) -> None:
        check_probability(self.residual_fit_factor, "residual_fit_factor")
        if self.max_reexecutions < 0:
            raise ValueError(
                f"max_reexecutions must be >= 0, got {self.max_reexecutions}"
            )
        if self.vote_on_mismatch and not self.checkpoint_inputs:
            raise ValueError(
                "vote_on_mismatch requires checkpoint_inputs: the re-execution "
                "needs the task's original inputs restored"
            )
