"""Vectorized fault-evaluation fast path for the App_FIT sweep.

The scalar path (:class:`~repro.core.heuristic.AppFit` driven by
:func:`~repro.core.engine.decide_for_graph`) consults the estimator once per
task, taking a lock and materialising a :class:`TaskFailureRates` and a
:class:`SelectionDecision` per decision.  That is the right shape for the
runtime hook, but the experiment drivers evaluate Equation 1 over tens of
thousands of tasks per figure cell, where the object churn dominates.

This module batches the expensive part — per-task FIT estimation — into one
NumPy array pass (:func:`repro.core.estimator.estimate_total_fits`) and runs
the inherently sequential Equation-1 scan over primitive floats.  Every
arithmetic operation mirrors the scalar implementation exactly, so the fast
path produces bit-identical fractions and audits; the scalar path remains the
reference implementation and the equivalence test suite pins the two together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set

import numpy as np

from repro.core.engine import ReplicationDecisions
from repro.core.estimator import FailureRateEstimator, estimate_total_fits
from repro.core.fit import FitAudit
from repro.runtime.compiled import CompiledGraph
from repro.runtime.graph import TaskGraph
from repro.util.validation import check_non_negative, check_positive_int


@dataclass
class AppFitSweepResult:
    """Outcome of one vectorized Equation-1 sweep."""

    replicate: np.ndarray  #: boolean decision per task, in input order
    current_fit: float  #: accumulated FIT after the last decision
    max_envelope_excess: float  #: worst ``current_fit - envelope(i)`` observed
    threshold: float
    total_tasks: int

    @property
    def replicated_count(self) -> int:
        """Number of tasks selected for replication."""
        return int(np.count_nonzero(self.replicate))

    def audit(self) -> FitAudit:
        """A :class:`FitAudit` equivalent to the scalar account's snapshot."""
        n = len(self.replicate)
        replicated = self.replicated_count
        return FitAudit(
            threshold=self.threshold,
            total_tasks=self.total_tasks,
            decisions=n,
            current_fit=self.current_fit,
            replicated=replicated,
            unprotected=n - replicated,
            max_envelope_excess=self.max_envelope_excess if n else 0.0,
        )


def appfit_sweep(
    fits: np.ndarray,
    threshold: float,
    total_tasks: Optional[int] = None,
    residual_fit_factor: float = 0.0,
) -> AppFitSweepResult:
    """Evaluate Equation 1 over an array of per-task FIT rates.

    ``fits`` is the total FIT (crash + SDC) of every task in decision order;
    ``total_tasks`` is the ``N`` the envelope is pro-rated over (defaults to
    ``len(fits)``).  The scan is sequential by definition — each decision
    charges the account the next one checks — but it runs over primitive
    floats, which is what makes the batch path fast.
    """
    check_non_negative(threshold, "threshold")
    n = len(fits)
    if total_tasks is None:
        total_tasks = n
    check_positive_int(total_tasks, "total_tasks")
    per_task = threshold / total_tasks
    replicate = np.empty(n, dtype=bool)
    current = 0.0
    max_excess = float("-inf")
    i = 0
    for fit in fits.tolist():
        envelope = per_task * (i + 1)
        rep = current + fit > envelope
        current += residual_fit_factor * fit if rep else fit
        replicate[i] = rep
        excess = current - envelope
        if excess > max_excess:
            max_excess = excess
        i += 1
    return AppFitSweepResult(
        replicate=replicate,
        current_fit=current,
        max_envelope_excess=max_excess,
        threshold=threshold,
        total_tasks=total_tasks,
    )


def decide_for_graph_fast(
    graph: TaskGraph,
    threshold: float,
    estimator: FailureRateEstimator,
    residual_fit_factor: float = 0.0,
) -> ReplicationDecisions:
    """Batch equivalent of ``decide_for_graph(graph, AppFit(...))``.

    Returns the same aggregate :class:`ReplicationDecisions` (fractions, ids,
    audit) without materialising per-decision objects, which is why the
    ``decisions`` list is left empty.
    """
    tasks = graph.tasks()
    fits = estimate_total_fits(estimator, tasks)
    sweep = appfit_sweep(
        fits, threshold, total_tasks=len(tasks), residual_fit_factor=residual_fit_factor
    )
    return _decisions_from_sweep(
        sweep,
        [t.task_id for t in tasks],
        [t.duration_s for t in tasks],
    )


def _decisions_from_sweep(
    sweep: AppFitSweepResult,
    task_ids: Sequence[int],
    durations: Sequence[float],
) -> ReplicationDecisions:
    """Fold one sweep plus per-task (id, duration) streams into decisions.

    The duration accumulations run in task order with plain float adds,
    mirroring the scalar path's per-decision bookkeeping exactly.
    """
    replicated_ids: Set[int] = set()
    replicated_duration = 0.0
    total_duration = 0.0
    for tid, duration, rep in zip(task_ids, durations, sweep.replicate.tolist()):
        total_duration += duration
        if rep:
            replicated_ids.add(tid)
            replicated_duration += duration
    return ReplicationDecisions(
        policy_name="app_fit",
        total_tasks=sweep.total_tasks,
        replicated_tasks=len(replicated_ids),
        total_duration_s=total_duration,
        replicated_duration_s=replicated_duration,
        replicated_ids=replicated_ids,
        decisions=[],
        audit=sweep.audit(),
    )


def compiled_total_fits(
    estimator: FailureRateEstimator, compiled: CompiledGraph
) -> np.ndarray:
    """Per-task total FITs straight from a compiled graph's byte arrays.

    Requires an estimator with the ``estimate_batch_bytes`` extension (the
    argument-size estimator has one); estimators that need full descriptors
    (type weights, traces) raise ``TypeError`` so callers fall back to the
    object-graph path.
    """
    batch_bytes = getattr(estimator, "estimate_batch_bytes", None)
    if batch_bytes is None:
        raise TypeError(
            f"{type(estimator).__name__} cannot estimate from compiled byte "
            "arrays; use the TaskGraph path"
        )
    return np.asarray(batch_bytes(compiled.arg_bytes), dtype=np.float64)


def decide_for_compiled(
    compiled: CompiledGraph,
    threshold: float,
    estimator: FailureRateEstimator,
    residual_fit_factor: float = 0.0,
) -> ReplicationDecisions:
    """:func:`decide_for_graph_fast` over a compiled graph — no descriptors.

    Worker processes use this with memory-mapped compiled graphs: the FIT
    estimates come from the stored argument-byte array and the duration
    bookkeeping from the stored duration array, each bit-identical to the
    object-graph equivalents, so the resulting decisions (ids, fractions,
    audit) are exactly those of the reference path.
    """
    fits = compiled_total_fits(estimator, compiled)
    sweep = appfit_sweep(
        fits, threshold, total_tasks=compiled.n, residual_fit_factor=residual_fit_factor
    )
    return _decisions_from_sweep(
        sweep, compiled.task_ids.tolist(), compiled.durations.tolist()
    )
