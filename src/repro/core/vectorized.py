"""Vectorized fault-evaluation fast path for the App_FIT sweep.

The scalar path (:class:`~repro.core.heuristic.AppFit` driven by
:func:`~repro.core.engine.decide_for_graph`) consults the estimator once per
task, taking a lock and materialising a :class:`TaskFailureRates` and a
:class:`SelectionDecision` per decision.  That is the right shape for the
runtime hook, but the experiment drivers evaluate Equation 1 over tens of
thousands of tasks per figure cell, where the object churn dominates.

This module batches the expensive part — per-task FIT estimation — into one
NumPy array pass (:func:`repro.core.estimator.estimate_total_fits`) and runs
the inherently sequential Equation-1 scan over primitive floats.  Every
arithmetic operation mirrors the scalar implementation exactly, so the fast
path produces bit-identical fractions and audits; the scalar path remains the
reference implementation and the equivalence test suite pins the two together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set

import numpy as np

from repro.core.engine import ReplicationDecisions
from repro.core.estimator import FailureRateEstimator, estimate_total_fits
from repro.core.fit import FitAudit
from repro.runtime.graph import TaskGraph
from repro.util.validation import check_non_negative, check_positive_int


@dataclass
class AppFitSweepResult:
    """Outcome of one vectorized Equation-1 sweep."""

    replicate: np.ndarray  #: boolean decision per task, in input order
    current_fit: float  #: accumulated FIT after the last decision
    max_envelope_excess: float  #: worst ``current_fit - envelope(i)`` observed
    threshold: float
    total_tasks: int

    @property
    def replicated_count(self) -> int:
        """Number of tasks selected for replication."""
        return int(np.count_nonzero(self.replicate))

    def audit(self) -> FitAudit:
        """A :class:`FitAudit` equivalent to the scalar account's snapshot."""
        n = len(self.replicate)
        replicated = self.replicated_count
        return FitAudit(
            threshold=self.threshold,
            total_tasks=self.total_tasks,
            decisions=n,
            current_fit=self.current_fit,
            replicated=replicated,
            unprotected=n - replicated,
            max_envelope_excess=self.max_envelope_excess if n else 0.0,
        )


def appfit_sweep(
    fits: np.ndarray,
    threshold: float,
    total_tasks: Optional[int] = None,
    residual_fit_factor: float = 0.0,
) -> AppFitSweepResult:
    """Evaluate Equation 1 over an array of per-task FIT rates.

    ``fits`` is the total FIT (crash + SDC) of every task in decision order;
    ``total_tasks`` is the ``N`` the envelope is pro-rated over (defaults to
    ``len(fits)``).  The scan is sequential by definition — each decision
    charges the account the next one checks — but it runs over primitive
    floats, which is what makes the batch path fast.
    """
    check_non_negative(threshold, "threshold")
    n = len(fits)
    if total_tasks is None:
        total_tasks = n
    check_positive_int(total_tasks, "total_tasks")
    per_task = threshold / total_tasks
    replicate = np.empty(n, dtype=bool)
    current = 0.0
    max_excess = float("-inf")
    i = 0
    for fit in fits.tolist():
        envelope = per_task * (i + 1)
        rep = current + fit > envelope
        current += residual_fit_factor * fit if rep else fit
        replicate[i] = rep
        excess = current - envelope
        if excess > max_excess:
            max_excess = excess
        i += 1
    return AppFitSweepResult(
        replicate=replicate,
        current_fit=current,
        max_envelope_excess=max_excess,
        threshold=threshold,
        total_tasks=total_tasks,
    )


def decide_for_graph_fast(
    graph: TaskGraph,
    threshold: float,
    estimator: FailureRateEstimator,
    residual_fit_factor: float = 0.0,
) -> ReplicationDecisions:
    """Batch equivalent of ``decide_for_graph(graph, AppFit(...))``.

    Returns the same aggregate :class:`ReplicationDecisions` (fractions, ids,
    audit) without materialising per-decision objects, which is why the
    ``decisions`` list is left empty.
    """
    tasks = graph.tasks()
    fits = estimate_total_fits(estimator, tasks)
    sweep = appfit_sweep(
        fits, threshold, total_tasks=len(tasks), residual_fit_factor=residual_fit_factor
    )
    replicated_ids: Set[int] = set()
    replicated_duration = 0.0
    total_duration = 0.0
    flags = sweep.replicate.tolist()
    for task, rep in zip(tasks, flags):
        total_duration += task.duration_s
        if rep:
            replicated_ids.add(task.task_id)
            replicated_duration += task.duration_s
    return ReplicationDecisions(
        policy_name="app_fit",
        total_tasks=len(tasks),
        replicated_tasks=len(replicated_ids),
        total_duration_s=total_duration,
        replicated_duration_s=replicated_duration,
        replicated_ids=replicated_ids,
        decisions=[],
        audit=sweep.audit(),
    )
