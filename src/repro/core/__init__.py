"""The paper's primary contribution: selective task replication with App_FIT.

Layering (bottom to top):

* :mod:`repro.core.fit` — FIT budget accounting (``current_fit``, thresholds,
  the per-decision envelope of Equation 1, audits).
* :mod:`repro.core.estimator` — pluggable per-task failure-rate estimators
  (argument-size based by default, as in the paper; vulnerability-weighted and
  trace-based refinements as the orthogonality hooks of Section IV-A).
* :mod:`repro.core.checkpoint` / :mod:`repro.core.comparator` — the safe
  checkpoint store and the output comparators used by the replication protocol.
* :mod:`repro.core.replication` — the task replication protocol of Figure 2
  (checkpoint, replica, compare, restore + re-execute + majority vote).
* :mod:`repro.core.heuristic` / :mod:`repro.core.policies` /
  :mod:`repro.core.knapsack` — App_FIT (Equation 1) and the baseline selection
  policies it is compared against.
* :mod:`repro.core.engine` — the selective-replication engine that ties policy,
  protocol and accounting together, both as a runtime execution hook
  (functional mode) and as a decision driver over task graphs (simulation
  mode, used by the Figure 3 harness).
"""

from repro._lazy import lazy_exports

#: Public name -> defining module, resolved lazily on first access (see
#: :mod:`repro._lazy`): decision-only consumers never import the checkpoint
#: store, comparators or the replication protocol they do not touch.
_EXPORTS = {
    "ReplicationConfig": "repro.core.config",
    "FitAccount": "repro.core.fit",
    "FitAudit": "repro.core.fit",
    "ArgumentSizeEstimator": "repro.core.estimator",
    "FailureRateEstimator": "repro.core.estimator",
    "TraceBasedEstimator": "repro.core.estimator",
    "VulnerabilityWeightedEstimator": "repro.core.estimator",
    "CheckpointStore": "repro.core.checkpoint",
    "TaskCheckpoint": "repro.core.checkpoint",
    "BitwiseComparator": "repro.core.comparator",
    "ChecksumComparator": "repro.core.comparator",
    "ComparisonResult": "repro.core.comparator",
    "OutputComparator": "repro.core.comparator",
    "ToleranceComparator": "repro.core.comparator",
    "majority_vote": "repro.core.comparator",
    "ReplicationOutcome": "repro.core.replication",
    "TaskReplicator": "repro.core.replication",
    "AppFit": "repro.core.heuristic",
    "SelectionDecision": "repro.core.heuristic",
    "SelectionPolicy": "repro.core.heuristic",
    "CompleteReplication": "repro.core.policies",
    "FitThresholdPolicy": "repro.core.policies",
    "NoReplication": "repro.core.policies",
    "PeriodicReplication": "repro.core.policies",
    "RandomReplication": "repro.core.policies",
    "TopFitReplication": "repro.core.policies",
    "KnapsackOracle": "repro.core.knapsack",
    "KnapsackSolution": "repro.core.knapsack",
    "ReplicationDecisions": "repro.core.engine",
    "SelectiveReplicationEngine": "repro.core.engine",
    "decide_for_graph": "repro.core.engine",
}

__getattr__, __dir__ = lazy_exports(
    __name__,
    _EXPORTS,
    submodules=(
        "checkpoint",
        "comparator",
        "config",
        "engine",
        "estimator",
        "fit",
        "heuristic",
        "knapsack",
        "policies",
        "replication",
        "vectorized",
    ),
)

__all__ = [
    "AppFit",
    "ArgumentSizeEstimator",
    "BitwiseComparator",
    "ChecksumComparator",
    "CheckpointStore",
    "CompleteReplication",
    "ComparisonResult",
    "FailureRateEstimator",
    "FitAccount",
    "FitAudit",
    "FitThresholdPolicy",
    "KnapsackOracle",
    "KnapsackSolution",
    "NoReplication",
    "OutputComparator",
    "PeriodicReplication",
    "RandomReplication",
    "ReplicationConfig",
    "ReplicationDecisions",
    "ReplicationOutcome",
    "SelectionDecision",
    "SelectionPolicy",
    "SelectiveReplicationEngine",
    "TaskCheckpoint",
    "TaskReplicator",
    "ToleranceComparator",
    "TopFitReplication",
    "TraceBasedEstimator",
    "VulnerabilityWeightedEstimator",
    "decide_for_graph",
    "majority_vote",
]
