"""The paper's primary contribution: selective task replication with App_FIT.

Layering (bottom to top):

* :mod:`repro.core.fit` — FIT budget accounting (``current_fit``, thresholds,
  the per-decision envelope of Equation 1, audits).
* :mod:`repro.core.estimator` — pluggable per-task failure-rate estimators
  (argument-size based by default, as in the paper; vulnerability-weighted and
  trace-based refinements as the orthogonality hooks of Section IV-A).
* :mod:`repro.core.checkpoint` / :mod:`repro.core.comparator` — the safe
  checkpoint store and the output comparators used by the replication protocol.
* :mod:`repro.core.replication` — the task replication protocol of Figure 2
  (checkpoint, replica, compare, restore + re-execute + majority vote).
* :mod:`repro.core.heuristic` / :mod:`repro.core.policies` /
  :mod:`repro.core.knapsack` — App_FIT (Equation 1) and the baseline selection
  policies it is compared against.
* :mod:`repro.core.engine` — the selective-replication engine that ties policy,
  protocol and accounting together, both as a runtime execution hook
  (functional mode) and as a decision driver over task graphs (simulation
  mode, used by the Figure 3 harness).
"""

from repro.core.config import ReplicationConfig
from repro.core.fit import FitAccount, FitAudit
from repro.core.estimator import (
    ArgumentSizeEstimator,
    FailureRateEstimator,
    TraceBasedEstimator,
    VulnerabilityWeightedEstimator,
)
from repro.core.checkpoint import CheckpointStore, TaskCheckpoint
from repro.core.comparator import (
    BitwiseComparator,
    ChecksumComparator,
    ComparisonResult,
    OutputComparator,
    ToleranceComparator,
    majority_vote,
)
from repro.core.replication import ReplicationOutcome, TaskReplicator
from repro.core.heuristic import AppFit, SelectionDecision, SelectionPolicy
from repro.core.policies import (
    CompleteReplication,
    FitThresholdPolicy,
    NoReplication,
    PeriodicReplication,
    RandomReplication,
    TopFitReplication,
)
from repro.core.knapsack import KnapsackOracle, KnapsackSolution
from repro.core.engine import (
    ReplicationDecisions,
    SelectiveReplicationEngine,
    decide_for_graph,
)

__all__ = [
    "AppFit",
    "ArgumentSizeEstimator",
    "BitwiseComparator",
    "ChecksumComparator",
    "CheckpointStore",
    "CompleteReplication",
    "ComparisonResult",
    "FailureRateEstimator",
    "FitAccount",
    "FitAudit",
    "FitThresholdPolicy",
    "KnapsackOracle",
    "KnapsackSolution",
    "NoReplication",
    "OutputComparator",
    "PeriodicReplication",
    "RandomReplication",
    "ReplicationConfig",
    "ReplicationDecisions",
    "ReplicationOutcome",
    "SelectionDecision",
    "SelectionPolicy",
    "SelectiveReplicationEngine",
    "TaskCheckpoint",
    "TaskReplicator",
    "ToleranceComparator",
    "TopFitReplication",
    "TraceBasedEstimator",
    "VulnerabilityWeightedEstimator",
    "decide_for_graph",
    "majority_vote",
]
