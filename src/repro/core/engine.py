"""The selective-replication engine.

Two entry points serve the two execution modes described in DESIGN.md:

* **Execution hook** (functional mode): :class:`SelectiveReplicationEngine`
  implements the executor's hook protocol.  Right before a task runs, the
  selection policy is consulted; replicated tasks go through the full
  protocol of :class:`~repro.core.replication.TaskReplicator`, unprotected
  tasks run bare (but still under fault injection).
* **Decision driver** (simulation mode): :func:`decide_for_graph` walks a task
  graph in submission order, applies a policy to every task and returns the
  aggregate :class:`ReplicationDecisions` — the exact quantities Figure 3
  plots (fraction of tasks replicated and fraction of computation time
  replicated), plus the FIT audit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.core.config import ReplicationConfig
from repro.core.heuristic import AppFit, SelectionDecision, SelectionPolicy
from repro.core.replication import ReplicationOutcome, TaskReplicator
from repro.runtime.events import EventKind, EventLog
from repro.runtime.graph import TaskGraph
from repro.runtime.task import TaskDescriptor


@dataclass
class ReplicationDecisions:
    """Aggregate outcome of applying a selection policy to a set of tasks."""

    policy_name: str
    total_tasks: int
    replicated_tasks: int
    total_duration_s: float
    replicated_duration_s: float
    replicated_ids: Set[int] = field(default_factory=set)
    decisions: List[SelectionDecision] = field(default_factory=list)
    audit: Optional[object] = None

    @property
    def task_fraction(self) -> float:
        """Fraction of tasks replicated (the paper's "% of tasks replicated")."""
        return self.replicated_tasks / self.total_tasks if self.total_tasks else 0.0

    @property
    def time_fraction(self) -> float:
        """Fraction of computation time replicated ("% computation time replicated")."""
        if self.total_duration_s <= 0:
            return self.task_fraction
        return self.replicated_duration_s / self.total_duration_s


def decide_for_graph(
    graph: TaskGraph,
    policy: SelectionPolicy,
) -> ReplicationDecisions:
    """Apply ``policy`` to every task of ``graph`` in submission order."""
    tasks = graph.tasks()
    policy.prepare(tasks)
    replicated_ids: Set[int] = set()
    decisions: List[SelectionDecision] = []
    replicated_duration = 0.0
    total_duration = 0.0
    for task in tasks:
        decision = policy.decide(task)
        decisions.append(decision)
        total_duration += task.duration_s
        if decision.replicate:
            replicated_ids.add(task.task_id)
            replicated_duration += task.duration_s
    audit = policy.audit() if isinstance(policy, AppFit) else None
    return ReplicationDecisions(
        policy_name=policy.name,
        total_tasks=len(tasks),
        replicated_tasks=len(replicated_ids),
        total_duration_s=total_duration,
        replicated_duration_s=replicated_duration,
        replicated_ids=replicated_ids,
        decisions=decisions,
        audit=audit,
    )


class SelectiveReplicationEngine:
    """Execution hook: consult the policy, then run protected or unprotected."""

    def __init__(
        self,
        policy: SelectionPolicy,
        replicator: Optional[TaskReplicator] = None,
        config: Optional[ReplicationConfig] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.policy = policy
        self.config = config if config is not None else ReplicationConfig()
        self.events = events if events is not None else EventLog()
        self.replicator = (
            replicator
            if replicator is not None
            else TaskReplicator(config=self.config, events=self.events)
        )
        self._lock = threading.Lock()
        self.outcomes: Dict[int, ReplicationOutcome] = {}
        self.decisions: Dict[int, SelectionDecision] = {}

    # -- executor hook protocol ---------------------------------------------------

    def prepare_graph(self, graph: TaskGraph) -> None:
        """Pre-decide every task of ``graph`` in submission order.

        The executor calls this before dispatching any task.  Selection
        policies may be order-sensitive (App_FIT accumulates a FIT account, so
        *which* tasks it protects depends on the order it is consulted);
        deciding in submission order up front makes the protected set — and
        with keyed fault streams, the injected-fault multiset — a pure
        function of the graph, independent of worker count and scheduling.
        Only information the policy would have at execution time is used
        (argument sizes and the task count), so the decisions themselves are
        unchanged; only their order is pinned.  Every task of ``graph`` is
        decided afresh — an engine reused across several runs (each building
        its own graph, possibly with colliding task ids) must never serve a
        previous graph's decision for a new task.
        """
        with self._lock:
            for task in graph.tasks():
                self.decisions[task.task_id] = self.policy.decide(task)

    def execute(self, task: TaskDescriptor, invoke: Callable[[TaskDescriptor], Any]) -> Any:
        """Execute the task with or without the replication protocol.

        Uses the decision taken by :meth:`prepare_graph` when available and
        falls back to deciding on the spot (callers driving the hook directly,
        without an executor, never see ``prepare_graph``).
        """
        with self._lock:
            decision = self.decisions.get(task.task_id)
            if decision is None:
                decision = self.policy.decide(task)
                self.decisions[task.task_id] = decision
        if decision.replicate:
            outcome = self.replicator.execute_protected(task, invoke)
        else:
            outcome = self.replicator.execute_unprotected(task, invoke)
        with self._lock:
            self.outcomes[task.task_id] = outcome
        self.policy.notify_completion(task, decision.replicate)
        return outcome

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> ReplicationDecisions:
        """Aggregate decisions taken so far (for functional-mode runs)."""
        with self._lock:
            decisions = list(self.decisions.values())
            outcomes = dict(self.outcomes)
        replicated_ids = {d.task_id for d in decisions if d.replicate}
        audit = self.policy.audit() if isinstance(self.policy, AppFit) else None
        return ReplicationDecisions(
            policy_name=self.policy.name,
            total_tasks=len(decisions),
            replicated_tasks=len(replicated_ids),
            total_duration_s=0.0,
            replicated_duration_s=0.0,
            replicated_ids=replicated_ids,
            decisions=decisions,
            audit=audit,
        )

    def recovery_counts(self) -> Dict[str, int]:
        """Histogram of recovery-relevant outcomes across executed tasks."""
        with self._lock:
            outcomes = list(self.outcomes.values())
        counts = {
            "tasks": len(outcomes),
            "protected": sum(1 for o in outcomes if o.protected),
            "sdc_detected": sum(1 for o in outcomes if o.sdc_detected),
            "sdc_corrected": sum(1 for o in outcomes if o.sdc_corrected),
            "sdc_escaped": sum(1 for o in outcomes if o.sdc_escaped),
            "crash_recovered": sum(1 for o in outcomes if o.crash_recovered),
            "fatal_crashes": sum(1 for o in outcomes if o.fatal_crash),
            "unrecovered": sum(1 for o in outcomes if o.unrecovered),
        }
        return counts
