"""FIT budget accounting for App_FIT (Equation 1).

The account tracks:

* ``current_fit`` — the accumulated FIT of tasks that ran without protection
  (plus the configured residual for protected tasks),
* ``decisions`` — ``i``, the number of tasks decided so far,
* the *envelope* ``(threshold / N) * (i + 1)`` that the next unprotected task
  must not push ``current_fit`` beyond.

All mutation happens under a lock because, in the real runtime as in our
functional executor, decisions are taken concurrently by worker threads; the
paper stresses that the check is performed atomically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.util.validation import check_non_negative, check_positive_int


@dataclass
class FitAudit:
    """A snapshot of the account used to verify the threshold was honoured."""

    threshold: float
    total_tasks: int
    decisions: int
    current_fit: float
    replicated: int
    unprotected: int
    #: Largest value of ``current_fit - envelope(i)`` observed right after a
    #: decision; <= 0 means the pro-rated threshold was never exceeded.
    max_envelope_excess: float

    @property
    def threshold_respected(self) -> bool:
        """Whether ``current_fit`` stayed within the final threshold."""
        return self.current_fit <= self.threshold + 1e-12

    @property
    def envelope_respected(self) -> bool:
        """Whether the pro-rated envelope was respected after every decision."""
        return self.max_envelope_excess <= 1e-12


class FitAccount:
    """Thread-safe FIT bookkeeping for one application run."""

    def __init__(self, threshold: float, total_tasks: int) -> None:
        self.threshold = check_non_negative(threshold, "threshold")
        self.total_tasks = check_positive_int(total_tasks, "total_tasks")
        self._lock = threading.Lock()
        self._current_fit = 0.0
        self._decisions = 0
        self._replicated = 0
        self._unprotected = 0
        self._max_excess = float("-inf")
        self._history: List[Tuple[int, float, bool]] = []

    # -- inspection ------------------------------------------------------------

    @property
    def current_fit(self) -> float:
        """The accumulated FIT of unprotected work so far."""
        with self._lock:
            return self._current_fit

    @property
    def decisions(self) -> int:
        """Number of tasks decided so far (``i`` in Equation 1)."""
        with self._lock:
            return self._decisions

    def envelope(self, i: Optional[int] = None) -> float:
        """The pro-rated threshold ``(threshold / N) * (i + 1)``.

        With ``i`` omitted, uses the current decision count, i.e. the envelope
        the *next* decision is checked against.
        """
        if i is None:
            i = self.decisions
        return (self.threshold / self.total_tasks) * (i + 1)

    @property
    def per_task_budget(self) -> float:
        """``threshold / N`` — the average FIT each task may contribute."""
        return self.threshold / self.total_tasks

    # -- the atomic decision (Equation 1) --------------------------------------

    def would_exceed(self, task_fit: float) -> bool:
        """Evaluate Equation 1 for a task with rate ``task_fit`` (no mutation)."""
        with self._lock:
            envelope = (self.threshold / self.total_tasks) * (self._decisions + 1)
            return self._current_fit + task_fit > envelope

    def decide(self, task_fit: float, residual_fit_factor: float = 0.0) -> bool:
        """Atomically evaluate Equation 1 and charge the account.

        Returns ``True`` when the task must be replicated.  A replicated task
        charges ``residual_fit_factor * task_fit``; an unprotected task charges
        its full FIT.  The decision counter advances either way.
        """
        check_non_negative(task_fit, "task_fit")
        with self._lock:
            envelope = (self.threshold / self.total_tasks) * (self._decisions + 1)
            replicate = self._current_fit + task_fit > envelope
            if replicate:
                charge = residual_fit_factor * task_fit
                self._replicated += 1
            else:
                charge = task_fit
                self._unprotected += 1
            self._current_fit += charge
            self._decisions += 1
            excess = self._current_fit - envelope
            self._max_excess = max(self._max_excess, excess)
            self._history.append((self._decisions, self._current_fit, replicate))
            return replicate

    def charge_external(self, fit: float) -> None:
        """Charge FIT that bypassed the decision path (e.g. unrecovered errors)."""
        check_non_negative(fit, "fit")
        with self._lock:
            self._current_fit += fit

    # -- reporting --------------------------------------------------------------

    def audit(self) -> FitAudit:
        """Produce an auditable snapshot of the account."""
        with self._lock:
            max_excess = self._max_excess if self._decisions else 0.0
            return FitAudit(
                threshold=self.threshold,
                total_tasks=self.total_tasks,
                decisions=self._decisions,
                current_fit=self._current_fit,
                replicated=self._replicated,
                unprotected=self._unprotected,
                max_envelope_excess=max_excess,
            )

    def history(self) -> List[Tuple[int, float, bool]]:
        """Per-decision history: (decision index, current_fit after, replicated)."""
        with self._lock:
            return list(self._history)
