"""Task-input checkpointing (step 1 of the paper's replication design).

Before a protected task runs, copies of its input data are stored in a "safe
memory region" (the paper assumes checkpoint storage failure rates are
negligible).  When an SDC is detected by output comparison, the task's initial
state is restored from the checkpoint and the task is re-executed.

Checkpoints are **region-scoped**: exactly the byte ranges of the task's
``in``/``inout`` regions are saved and restored, never the whole backing
arrays.  Early versions copied whole handles, which was simpler but unsafe
with concurrent workers — a task restoring its checkpoint would clobber the
bytes a neighbouring task was concurrently writing into a *different* block
of the same registered array.  Region scoping makes restore local to the
restoring task, so crash replay can never double-apply or overwrite in-place
updates of disjoint regions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.executor import region_key, region_view
from repro.runtime.task import Direction, TaskDescriptor


@dataclass
class TaskCheckpoint:
    """Saved pre-execution state of one task's read/written data."""

    task_id: int
    #: Copies of the byte ranges of every region the task reads (``in`` and
    #: ``inout``), keyed by ``(handle_id, offset, size)``.
    saved_regions: Dict[Tuple[int, int, int], np.ndarray] = field(default_factory=dict)
    #: Total checkpointed bytes (for cost accounting).
    n_bytes: float = 0.0


class CheckpointStore:
    """An in-memory safe store of task checkpoints."""

    def __init__(self, capacity_bytes: Optional[float] = None) -> None:
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._checkpoints: Dict[int, TaskCheckpoint] = {}
        self._bytes_stored = 0.0
        self.total_checkpoints_taken = 0
        self.total_restores = 0

    # -- capture ---------------------------------------------------------------

    def capture(self, task: TaskDescriptor) -> TaskCheckpoint:
        """Checkpoint the task's argument data (inputs and in-place outputs).

        Only region arguments with backing storage are copied — and only the
        bytes of each region, not its whole backing array (see the module
        docstring for why).  Simulation-only tasks produce an (empty)
        checkpoint that still tracks byte volume so cost models remain
        meaningful.
        """
        saved: Dict[Tuple[int, int, int], np.ndarray] = {}
        n_bytes = 0.0
        for arg in task.args:
            if arg.direction is Direction.VALUE or arg.region is None:
                continue
            # Output-only data need not be saved for correctness, but inout and
            # in regions must be.  (OUT regions are excluded: restoring them is
            # unnecessary and they may be uninitialised.)
            if not arg.direction.reads:
                continue
            n_bytes += arg.size_bytes
            view = region_view(arg.region)
            key = region_key(arg.region)
            if view is not None and key not in saved:
                saved[key] = np.copy(view)
        ckpt = TaskCheckpoint(task_id=task.task_id, saved_regions=saved, n_bytes=n_bytes)
        with self._lock:
            if self.capacity_bytes is not None:
                if self._bytes_stored + n_bytes > self.capacity_bytes:
                    raise MemoryError(
                        f"checkpoint store capacity exceeded: "
                        f"{self._bytes_stored + n_bytes:.0f} > {self.capacity_bytes:.0f} bytes"
                    )
            self._checkpoints[task.task_id] = ckpt
            self._bytes_stored += n_bytes
            self.total_checkpoints_taken += 1
        return ckpt

    # -- restore ----------------------------------------------------------------

    def restore(self, task: TaskDescriptor) -> bool:
        """Restore the task's input regions from its checkpoint.

        Only the checkpointed byte ranges are written back — bytes outside the
        task's own regions (e.g. neighbouring blocks of the same array, owned
        by concurrently running tasks) are never touched.  Returns ``False``
        when no checkpoint exists for the task.
        """
        with self._lock:
            ckpt = self._checkpoints.get(task.task_id)
        if ckpt is None:
            return False
        for arg in task.args:
            if arg.direction is Direction.VALUE or arg.region is None:
                continue
            view = region_view(arg.region)
            if view is None:
                continue
            saved = ckpt.saved_regions.get(region_key(arg.region))
            if saved is not None:
                np.copyto(view, saved)
        with self._lock:
            self.total_restores += 1
        return True

    # -- lifecycle ---------------------------------------------------------------

    def release(self, task_id: int) -> None:
        """Discard the checkpoint of a task that completed successfully."""
        with self._lock:
            ckpt = self._checkpoints.pop(task_id, None)
            if ckpt is not None:
                self._bytes_stored -= ckpt.n_bytes

    def has_checkpoint(self, task_id: int) -> bool:
        """Whether a checkpoint is currently stored for ``task_id``."""
        with self._lock:
            return task_id in self._checkpoints

    @property
    def bytes_stored(self) -> float:
        """Bytes currently held in the safe store."""
        with self._lock:
            return self._bytes_stored

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)
