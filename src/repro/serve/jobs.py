"""The sweep-service job queue: submitted grids, progress events, markers.

A *job* is one submitted sweep — a named figure/table target or an arbitrary
benchmark/workload grid — persisted as a small JSON document under
``<cache root>/serve/jobs/``.  Everything else about a job is **derived**
state: which cells are done is answered by the shared
:class:`~repro.analysis.store.ResultStore`, who is computing what by the
lease files (:mod:`repro.serve.leases`), and per-cell history by an
append-only events journal next to the job document.  That keeps the queue
crash-safe with no database and no coordinator: any number of workers (local
threads or ``repro serve --worker`` processes on other machines) discover
jobs by listing one directory and drain them through the lease protocol.

Files of one job (all under ``serve/jobs/``):

* ``<id>.job.json``    — the submission: normalized request + artifact stem.
* ``<id>.events.jsonl``— append-only progress: ``plan`` events announce the
  cell grid (emitted by each drain as it learns it), ``cell`` events record
  one finished cell (computed or cache hit) with its owner.
* ``<id>.done.json``   — completion marker, written once (``O_EXCL``) by the
  first worker whose drain finishes; later finishers are no-ops.
* ``<id>.failed.json`` — failure marker with the first error.

Requests never carry timestamps or ids into artifact metadata, so a job's
artifacts are byte-identical across submissions, workers, and machines.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.runner import ExperimentEngine, ExperimentSpec
from repro.analysis.store import ResultStore, StoreRecord, code_version
from repro.analysis.targets import (
    TARGETS,
    TargetOutput,
    render_artifact_texts,
    workload_sweep_recorded_text,
)
from repro.util.retry import RetryPolicy, retry_call

#: Job files live here, under the shared cache root.
JOBS_SUBDIR = os.path.join("serve", "jobs")

#: Worker liveness files live here (see :mod:`repro.serve.workers`).
WORKERS_SUBDIR = os.path.join("serve", "workers")

#: Policies accepted by grid requests (mirrors ``experiments.SWEEP_POLICIES``
#: lazily — importing the driver module here would defeat the lazy CLI).
_MAX_EVENT_KEYS_PER_LINE = 100


class JobValidationError(ValueError):
    """A submitted request is malformed (unknown target, bad grid, ...)."""


class JobIncompleteError(RuntimeError):
    """Artifacts were requested for a job whose cells are not all computed."""


class _ComposeStore(ResultStore):
    """A read-only store view for artifact composition: misses are errors.

    Artifact requests must never trigger computation in the serving process —
    a miss means the job is simply not done yet, reported as
    :class:`JobIncompleteError` (the HTTP layer maps it to 409).
    """

    def get(self, spec: ExperimentSpec) -> Optional[StoreRecord]:
        """Like the parent, but a miss raises :class:`JobIncompleteError`."""
        record = super().get(spec)
        if record is None:
            raise JobIncompleteError(
                f"cell not yet computed: kind={spec.kind} benchmark={spec.benchmark}"
            )
        return record

    def put(self, spec, payload, elapsed_s=None):  # pragma: no cover - guarded by get
        """Composition never writes; get() raises before any compute."""
        raise JobIncompleteError("artifact composition attempted to compute a cell")


# ---------------------------------------------------------------------------------
# request normalisation
# ---------------------------------------------------------------------------------


def _number(doc: Dict[str, Any], name: str, default: float, minimum: float) -> float:
    """One validated numeric request field."""
    value = doc.get(name, default)
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise JobValidationError(f"{name} must be a number, got {value!r}")
    if value < minimum:
        raise JobValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def _float_list(doc: Dict[str, Any], name: str, default: List[float]) -> List[float]:
    """One validated list-of-numbers request field."""
    values = doc.get(name, default)
    if not isinstance(values, (list, tuple)) or not values:
        raise JobValidationError(f"{name} must be a non-empty list of numbers")
    try:
        return [float(v) for v in values]
    except (TypeError, ValueError):
        raise JobValidationError(f"{name} must be a non-empty list of numbers")


def _str_list(doc: Dict[str, Any], name: str) -> List[str]:
    """One validated list-of-strings request field."""
    values = doc.get(name)
    if not isinstance(values, (list, tuple)) or not values:
        raise JobValidationError(f"{name} must be a non-empty list of strings")
    if not all(isinstance(v, str) for v in values):
        raise JobValidationError(f"{name} must be a non-empty list of strings")
    return list(values)


def normalize_request(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a submission and return its canonical request document.

    Three request shapes are accepted (``type`` is inferred when omitted):

    * ``{"target": "fig5", ...}`` — one registry target;
    * ``{"workloads": [SPEC, ...], ...}`` — a workload sweep grid
      (policies x multipliers x fault rates over canonical workload specs);
    * ``{"benchmarks": [NAME, ...], ...}`` — a Table-I policy sweep grid.

    Shared knobs: ``scale`` (default 1.0), ``seed`` (0), ``n_seeds`` (1),
    ``fast`` (true), plus the grid-specific lists.  Workload specs are
    canonicalised here so differently spelled but identical sweeps share
    cells — and therefore cache hits — with each other and with the CLI.
    """
    if not isinstance(doc, dict):
        raise JobValidationError("request body must be a JSON object")
    kind = doc.get("type")
    if kind is None:
        if "target" in doc:
            kind = "target"
        elif "workloads" in doc:
            kind = "workload_sweep"
        elif "benchmarks" in doc:
            kind = "sweep"
        else:
            raise JobValidationError(
                "request needs one of: target, workloads, benchmarks"
            )
    request: Dict[str, Any] = {
        "type": kind,
        "scale": _number(doc, "scale", 1.0, minimum=1e-6),
        "seed": int(_number(doc, "seed", 0, minimum=-(2**62))),
        "n_seeds": int(_number(doc, "n_seeds", 1, minimum=1)),
        "fast": bool(doc.get("fast", True)),
    }
    if kind == "target":
        name = doc.get("target")
        if name not in TARGETS:
            raise JobValidationError(
                f"unknown target {name!r}; known: {', '.join(sorted(TARGETS))}"
            )
        request["target"] = name
        return request

    from repro.analysis.experiments import SWEEP_POLICIES

    policies = doc.get("policies", ["app_fit"])
    if not isinstance(policies, (list, tuple)) or not policies:
        raise JobValidationError("policies must be a non-empty list")
    for policy in policies:
        if policy not in SWEEP_POLICIES:
            raise JobValidationError(
                f"unknown policy {policy!r}; known: {sorted(SWEEP_POLICIES)}"
            )
    request["policies"] = list(policies)
    request["multipliers"] = _float_list(doc, "multipliers", [10.0, 5.0])
    request["residual_fit_factor"] = _number(doc, "residual_fit_factor", 0.0, 0.0)

    if kind == "workload_sweep":
        from repro.workloads.spec import parse_workload

        try:
            request["workloads"] = [
                parse_workload(w).canonical for w in _str_list(doc, "workloads")
            ]
        except (KeyError, ValueError) as exc:
            raise JobValidationError(str(exc.args[0]))
        request["fault_rates"] = _float_list(doc, "fault_rates", [0.0, 0.01])
        return request

    if kind == "sweep":
        from repro.apps.registry import all_benchmark_names

        known = set(all_benchmark_names())
        benchmarks = _str_list(doc, "benchmarks")
        unknown = [b for b in benchmarks if b not in known]
        if unknown:
            raise JobValidationError(
                f"unknown benchmarks {unknown}; known: {sorted(known)}"
            )
        request["benchmarks"] = benchmarks
        return request

    raise JobValidationError(f"unknown request type {kind!r}")


def artifact_stem(request: Dict[str, Any]) -> str:
    """The artifact file stem of a request (mirrors the CLI's naming)."""
    if request["type"] == "target":
        return TARGETS[request["target"]].artifact
    return "workload_sweep" if request["type"] == "workload_sweep" else "sweep"


# ---------------------------------------------------------------------------------
# request execution (drain and compose share this)
# ---------------------------------------------------------------------------------


def execute_request(
    request: Dict[str, Any], engine: ExperimentEngine
) -> Tuple[TargetOutput, Dict[str, Any]]:
    """Run a normalized request on an engine; return (output, artifact meta).

    This is the *only* place requests are turned into cell grids — workers
    drain through it with a lease-aware engine, and the artifact endpoint
    re-runs it with a read-only engine over the warm store (zero computed
    cells by construction) — so there is no separately maintained grid
    enumeration to drift out of sync with the experiment drivers.

    ``meta`` carries only deterministic provenance, never timestamps or job
    ids, so artifacts are byte-identical across submissions and workers.
    """
    meta: Dict[str, Any] = {
        "scale": request["scale"],
        "seed": request["seed"],
        "n_seeds": request["n_seeds"],
        "fast": engine.fast,
        "code_version": code_version(),
    }
    if request["type"] == "target":
        target = TARGETS[request["target"]]
        output = target.build(
            request["scale"], request["seed"], engine, n_seeds=request["n_seeds"]
        )
        return output, {**meta, "target": target.name, **output.meta}

    if request["type"] == "workload_sweep":
        from repro.analysis.experiments import workload_sweep

        result = workload_sweep(
            workloads=request["workloads"],
            policies=request["policies"],
            multipliers=request["multipliers"],
            fault_rates=request["fault_rates"],
            scale=request["scale"],
            seed=request["seed"],
            n_seeds=request["n_seeds"],
            residual_fit_factor=request["residual_fit_factor"],
            engine=engine,
        )
        output = TargetOutput(
            result=result,
            text=workload_sweep_recorded_text(result),
            rows=list(result.rows),
        )
        return output, {
            **meta,
            "target": "workload-sweep",
            "workloads": sorted({str(r["workload"]) for r in result.rows}),
            "policies": list(request["policies"]),
            "multipliers": list(request["multipliers"]),
            "fault_rates": list(request["fault_rates"]),
        }

    from repro.analysis.experiments import sweep_policies

    result = sweep_policies(
        benchmarks=request["benchmarks"],
        policies=request["policies"],
        multipliers=request["multipliers"],
        scale=request["scale"],
        seed=request["seed"],
        residual_fit_factor=request["residual_fit_factor"],
        engine=engine,
    )
    output = TargetOutput(result=result, text=result.render(), rows=list(result.rows))
    return output, {
        **meta,
        "target": "sweep",
        "benchmarks": list(request["benchmarks"]),
        "policies": list(request["policies"]),
        "multipliers": list(request["multipliers"]),
    }


def compose_artifacts(
    request: Dict[str, Any], root: Optional[str] = None
) -> Dict[str, str]:
    """Render a finished job's txt/json/csv artifacts from the warm store.

    Raises :class:`JobIncompleteError` if any cell is missing — composition
    is strictly read-only, so it is cheap enough to run per HTTP request.
    """
    engine = ExperimentEngine(
        parallelism=1, fast=request["fast"], store=_ComposeStore(root)
    )
    output, meta = execute_request(request, engine)
    return render_artifact_texts(output, meta)


# ---------------------------------------------------------------------------------
# the on-disk job queue
# ---------------------------------------------------------------------------------


def new_job_id() -> str:
    """A fresh job id: every submission is its own job (dedup happens at the
    *cell* level through the content-addressed store, which is what makes a
    warm resubmission drain with zero computed cells)."""
    return "j" + secrets.token_hex(6)


class JobStore:
    """The ``serve/jobs`` directory: submissions, events, and state markers."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.store = ResultStore(root)
        self.root = self.store.root
        self.jobs_dir = os.path.join(self.root, JOBS_SUBDIR)

    # -- paths ----------------------------------------------------------------

    def job_path(self, job_id: str) -> str:
        """The submission document of a job."""
        return os.path.join(self.jobs_dir, f"{job_id}.job.json")

    def events_path(self, job_id: str) -> str:
        """The append-only events journal of a job."""
        return os.path.join(self.jobs_dir, f"{job_id}.events.jsonl")

    def done_path(self, job_id: str) -> str:
        """The completion marker of a job."""
        return os.path.join(self.jobs_dir, f"{job_id}.done.json")

    def failed_path(self, job_id: str) -> str:
        """The failure marker of a job."""
        return os.path.join(self.jobs_dir, f"{job_id}.failed.json")

    # -- submission ------------------------------------------------------------

    def submit(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and enqueue one request; returns the job document."""
        request = normalize_request(doc)
        job = {
            "id": new_job_id(),
            "created_at": time.time(),
            "request": request,
            "artifact": artifact_stem(request),
        }
        path = self.job_path(job["id"])
        os.makedirs(self.jobs_dir, exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(job, fh, sort_keys=True)
        os.replace(tmp, path)
        return job

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Load one job document, or ``None``."""
        try:
            with open(self.job_path(job_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Every job document, oldest first."""
        jobs: List[Dict[str, Any]] = []
        if not os.path.isdir(self.jobs_dir):
            return jobs
        for name in os.listdir(self.jobs_dir):
            if not name.endswith(".job.json"):
                continue
            job = self.get(name[: -len(".job.json")])
            if job is not None:
                jobs.append(job)
        jobs.sort(key=lambda j: (j.get("created_at", 0.0), j.get("id", "")))
        return jobs

    def pending_jobs(self) -> List[Dict[str, Any]]:
        """Jobs with no done/failed marker, oldest first (the drain order)."""
        return [
            job
            for job in self.list_jobs()
            if not os.path.exists(self.done_path(job["id"]))
            and not os.path.exists(self.failed_path(job["id"]))
        ]

    # -- events ----------------------------------------------------------------

    def append_event(self, job_id: str, event: Dict[str, Any]) -> None:
        """Append one progress event (one JSON line).

        Lines are kept far under the POSIX atomic-append pipe-buffer bound
        (plan events chunk their key lists), so concurrent workers appending
        to the same journal never interleave bytes.  The append is retried
        with a short backoff: losing a progress event to a transient
        fd-exhaustion blip would silently skew the status accounting.
        """
        line = json.dumps(event, sort_keys=True)

        def _append() -> None:
            with open(self.events_path(job_id), "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

        retry_call(
            _append,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.1),
            retryable=(OSError,),
            describe=f"append event to job {job_id}",
        )

    def append_plan_event(self, job_id: str, keys: List[str], owner: str) -> None:
        """Announce one engine grid: total cell count plus (chunked) keys."""
        for i in range(0, len(keys), _MAX_EVENT_KEYS_PER_LINE):
            chunk = keys[i : i + _MAX_EVENT_KEYS_PER_LINE]
            self.append_event(
                job_id,
                {"type": "plan", "keys": chunk, "total": len(keys), "owner": owner},
            )

    def events(
        self, job_id: str, offset: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Events from ``offset`` (a line index) plus the next offset."""
        events: List[Dict[str, Any]] = []
        next_offset = offset
        try:
            with open(self.events_path(job_id), "r", encoding="utf-8") as fh:
                for i, line in enumerate(fh):
                    if i < offset or not line.endswith("\n"):
                        continue
                    try:
                        events.append(json.loads(line))
                        next_offset = i + 1
                    except ValueError:  # pragma: no cover - torn line, skip
                        continue
        except OSError:
            pass
        return events, next_offset

    # -- markers ---------------------------------------------------------------

    def _mark(self, path: str, doc: Dict[str, Any]) -> bool:
        """Write a marker exactly once; ``False`` if someone else already did."""
        os.makedirs(self.jobs_dir, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        return True

    def mark_done(self, job_id: str, summary: Dict[str, Any]) -> bool:
        """Record completion (first finishing worker wins; others no-op)."""
        return self._mark(
            self.done_path(job_id), {**summary, "finished_at": time.time()}
        )

    def mark_failed(
        self,
        job_id: str,
        owner: str,
        message: str,
        quarantined: Optional[List[Dict[str, Any]]] = None,
    ) -> bool:
        """Record failure with the first error (and any quarantined cells)."""
        doc: Dict[str, Any] = {
            "owner": owner, "error": message, "failed_at": time.time()
        }
        if quarantined:
            doc["quarantined"] = quarantined
        return self._mark(self.failed_path(job_id), doc)

    def _marker(self, path: str) -> Optional[Dict[str, Any]]:
        """Load one marker document, or ``None``."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- derived status --------------------------------------------------------

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The aggregate state of one job, derived from markers and events.

        Cell accounting comes from the journal: ``total`` is the union of all
        announced plan keys, ``computed`` counts computed-cell events (each
        cell is computed exactly once globally, so this equals the number of
        distinct computed keys unless a lease was reclaimed from a paused
        worker — a genuine duplicate, deliberately visible here), ``cached``
        counts cells that only ever hit the cache.
        """
        job = self.get(job_id)
        if job is None:
            return None
        events, _ = self.events(job_id)
        plan_keys: set = set()
        computed_keys: set = set()
        seen_keys: set = set()
        computed_events = 0
        retry_events = 0
        compute_s = 0.0
        workers: Dict[str, Dict[str, int]] = {}
        quarantined: Dict[str, Dict[str, Any]] = {}
        for event in events:
            owner = str(event.get("owner", "?"))
            if event.get("type") == "plan":
                plan_keys.update(event.get("keys", ()))
            elif event.get("type") == "cell":
                key = event.get("key", "?")
                seen_keys.add(key)
                # Cached cells carry the *original* compute cost from their
                # store record, so compute_s reflects the grid's true cost
                # even on a fully warm re-run.
                try:
                    compute_s += float(event.get("elapsed_s", 0.0) or 0.0)
                except (TypeError, ValueError):
                    pass
                stats = workers.setdefault(owner, {"computed": 0, "cached": 0})
                if event.get("cached"):
                    stats["cached"] += 1
                else:
                    stats["computed"] += 1
                    computed_events += 1
                    computed_keys.add(key)
            elif event.get("type") == "retry":
                retry_events += 1
                stats = workers.setdefault(owner, {"computed": 0, "cached": 0})
                stats["retries"] = stats.get("retries", 0) + 1
            elif event.get("type") == "quarantine":
                # Several drains may report the same poisoned cell; the
                # tombstone is write-once, so any copy of the document works.
                quarantined[str(event.get("key", "?"))] = {
                    "key": event.get("key"),
                    "attempts": event.get("attempts"),
                    "errors": event.get("errors", []),
                }
        done = self._marker(self.done_path(job_id))
        failed = self._marker(self.failed_path(job_id))
        if failed is not None:
            state = "failed"
        elif done is not None:
            state = "done"
        elif events:
            state = "running"
        else:
            state = "pending"
        total = len(plan_keys) if plan_keys else None
        return {
            "id": job_id,
            "state": state,
            "created_at": job.get("created_at"),
            "artifact": job.get("artifact"),
            "request": job.get("request"),
            "cells": {
                "total": total,
                "done": len(seen_keys),
                "computed": computed_events,
                "cached": len(seen_keys - computed_keys),
                "retries": retry_events,
                "compute_s": round(compute_s, 6),
            },
            "workers": workers,
            "quarantined": sorted(quarantined.values(), key=lambda q: str(q["key"])),
            "finished_at": (done or {}).get("finished_at"),
            "error": (failed or {}).get("error"),
        }
