"""Deterministic, replayable fault injection for the sweep service.

The simulated fault plane (PR 5) draws every fault from a stream keyed by
*what* is failing, never by *when* — this module turns the same discipline
on the serving stack itself.  A **chaos profile** is a spec string in the
workload grammar style (``profile:key=value,...``, canonicalised the same
way), selected via the ``REPRO_CHAOS`` environment variable::

    REPRO_CHAOS="light:seed=7,p_kill=0.1" repro serve --workers 2

Every injection decision is a pure function of ``(seed, site, key, n)`` —
``site`` names the boundary (``kill``, ``store_put_io``, ``lease_torn``,
``stall``, ``slow``, ``cell_fail``, ``http``), ``key`` is the result-store
key (or URL path) under attack, and ``n`` is a per-``(site, key)`` ordinal:
the cell's on-disk attempt index where one exists, otherwise a counter.
Two runs with the same profile over the same grid therefore inject the
same fault multiset, regardless of thread/process scheduling — which is
what lets CI assert "this chaos schedule completed with byte-identical
artifacts" and re-run it.

Injected faults and the machinery that must survive them:

============== ==================================== ===========================
site           what is injected                      what must absorb it
============== ==================================== ===========================
``lease_torn``  a lease published half-written       mtime+TTL grace, reclaim
``store_put_io`` EIO/ENOSPC mid-record-write         bounded retry, attempt
                                                     budget, quarantine
``rename_delay`` a stalled ``os.replace``            atomic publication
``stall``       heartbeat stops renewing one lease   expiry, single-winner
                                                     reclaim, duplicate count
``slow``        a cell that dawdles                  lease renewal under guard
``kill``        worker death at a cell boundary      supervisor restart,
                                                     lease expiry, attempts
``cell_fail``   the cell computation raises          retry budget, poison
                                                     tombstone, ``failed`` job
``http``        5xx / connection reset from the      client retry/backoff
                frontend
============== ==================================== ===========================

Every injection is appended (single atomic line) to
``<cache root>/serve/chaos/injected.jsonl`` so a chaos run leaves a
replayable fault log; :func:`injected_multiset` reads it back as the
order-free ``(site, key, n)`` set the soak harness compares across runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.compiled import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

#: Environment variable selecting the chaos profile (unset/empty = no chaos).
CHAOS_ENV = "REPRO_CHAOS"

#: Where injections are journalled, under the cache root.
CHAOS_SUBDIR = os.path.join("serve", "chaos")
CHAOS_LOG_NAME = "injected.jsonl"


class ChaosInjectedIOError(OSError):
    """An injected EIO/ENOSPC-style store-write failure (retryable)."""


class ChaosInjectedCellError(RuntimeError):
    """An injected cell-computation failure (consumes one retry attempt)."""


class WorkerKilled(BaseException):
    """Simulated ``kill -9`` of a worker thread.

    Deliberately a ``BaseException``: it must sail through every
    ``except Exception`` on the way out — a killed worker runs *no* cleanup,
    releases *no* leases, and removes *no* liveness file, exactly like a real
    SIGKILL.  Worker processes (``repro serve --worker``) take the real
    signal instead; thread workers raise this and the supervisor restarts
    them.
    """


#: Profile parameters: name -> (type, default, doc).  All probabilities are
#: per *draw* (one decision at one (site, key, n)), not per second.
_PARAMS: Dict[str, Tuple[type, Any, str]] = {
    "seed": (int, 0, "root seed of the keyed injection draws"),
    "p_torn_lease": (float, 0.0, "P(truncate a just-published lease document)"),
    "p_io": (float, 0.0, "P(EIO mid result-record write)"),
    "p_rename_delay": (float, 0.0, "P(delay a record's atomic rename)"),
    "rename_delay_ms": (float, 20.0, "rename delay magnitude"),
    "p_stall": (float, 0.0, "P(heartbeat stops renewing one cell's lease)"),
    "p_slow": (float, 0.0, "P(a cell computation dawdles)"),
    "slow_ms": (float, 50.0, "slow-cell sleep magnitude"),
    "p_kill": (float, 0.0, "P(worker dies at a cell-start boundary)"),
    "max_kills": (int, -1, "total kill budget per run (-1 = unlimited)"),
    "p_cell_fail": (float, 0.0, "P(a cell attempt raises)"),
    "p_http": (float, 0.0, "P(frontend answers 5xx or resets the connection)"),
}

#: Named profiles (overrides over the all-zero defaults).  ``off`` exists so
#: ``REPRO_CHAOS=off`` is an explicit, greppable no-op.
PROFILES: Dict[str, Dict[str, Any]] = {
    "off": {},
    "light": {
        "p_torn_lease": 0.05,
        "p_io": 0.05,
        "p_rename_delay": 0.05,
        "p_stall": 0.05,
        "p_slow": 0.10,
        "p_kill": 0.02,
    },
    "heavy": {
        "p_torn_lease": 0.15,
        "p_io": 0.15,
        "p_rename_delay": 0.10,
        "p_stall": 0.10,
        "p_slow": 0.20,
        "slow_ms": 100.0,
        "p_kill": 0.08,
    },
}


@dataclass(frozen=True)
class ChaosProfile:
    """One fully resolved chaos profile: name plus every parameter value."""

    name: str
    params: Tuple[Tuple[str, Any], ...]

    def param(self, name: str) -> Any:
        """Look up one parameter value."""
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    @property
    def canonical(self) -> str:
        """The canonical spec string (defaults filled, sorted, repr-rendered).

        Two spellings of the same chaos schedule canonicalise identically —
        the same trick :mod:`repro.workloads.spec` plays with benchmark
        names, so a chaos run's identity is one unambiguous string.
        """
        rendered = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}:{rendered}"

    @property
    def active(self) -> bool:
        """Whether any fault has non-zero probability."""
        return any(
            k.startswith("p_") and v > 0.0 for k, v in self.params
        )


def parse_chaos(text: str) -> ChaosProfile:
    """Parse (and canonicalise) a chaos spec string.

    Raises ``KeyError`` for an unknown profile and ``ValueError`` for bad
    parameters — a misconfigured ``REPRO_CHAOS`` must fail loudly, not
    silently run without chaos.
    """
    text = text.strip()
    name, _, rest = text.partition(":")
    if name not in PROFILES:
        raise KeyError(
            f"unknown chaos profile {name!r}; known: {', '.join(PROFILES)}"
        )
    values: Dict[str, Any] = {k: default for k, (_, default, _) in _PARAMS.items()}
    values.update(PROFILES[name])
    if rest:
        for item in rest.split(","):
            pname, eq, raw = item.partition("=")
            pname = pname.strip()
            if not eq or not pname:
                raise ValueError(f"malformed chaos parameter {item!r} in {text!r}")
            if pname not in _PARAMS:
                raise ValueError(
                    f"unknown chaos parameter {pname!r}; known: {', '.join(_PARAMS)}"
                )
            kind = _PARAMS[pname][0]
            try:
                value = kind(raw.strip())
            except (TypeError, ValueError):
                raise ValueError(
                    f"chaos parameter {pname}={raw!r} is not a valid {kind.__name__}"
                )
            if pname.startswith("p_") and not 0.0 <= value <= 1.0:
                raise ValueError(f"chaos probability {pname}={value} not in [0, 1]")
            values[pname] = value
    return ChaosProfile(name=name, params=tuple(sorted(values.items())))


def _keyed_uniform(seed: int, site: str, key: str, n: int) -> float:
    """A uniform [0, 1) draw keyed by (seed, site, key, n) — never by time."""
    blob = f"{seed}|{site}|{key}|{n}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ChaosEngine:
    """Injects one profile's faults, deterministically, under one cache root.

    Per-``(site, key)`` ordinal counters make repeated decisions at the same
    boundary draw distinct (but replayable) uniforms; where a durable ordinal
    exists — the cell's on-disk attempt index — callers pass it explicitly so
    the schedule survives process restarts too.
    """

    def __init__(self, profile: ChaosProfile, root: Optional[str] = None) -> None:
        self.profile = profile
        self.root = os.path.abspath(root) if root else None
        self.seed = int(profile.param("seed"))
        self._counters: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self._kills = 0
        #: Injection counts per site (cheap observability for /stats).
        self.injected: Dict[str, int] = {}

    # -- draw machinery --------------------------------------------------------

    def uniform(self, site: str, key: str, n: int) -> float:
        """The keyed uniform for one decision (exposed for tests)."""
        return _keyed_uniform(self.seed, site, key, n)

    def _next(self, site: str, key: str) -> int:
        """Claim the next ordinal for a (site, key) pair."""
        with self._lock:
            n = self._counters.get((site, key), 0)
            self._counters[(site, key)] = n + 1
            return n

    def _hit(self, site: str, key: str, p: float, n: Optional[int] = None) -> Optional[int]:
        """One decision: returns the ordinal when the fault fires, else None."""
        if p <= 0.0:
            return None
        if n is None:
            n = self._next(site, key)
        if self.uniform(site, key, n) >= p:
            return None
        self._log(site, key, n)
        return n

    def _log(self, site: str, key: str, n: int) -> None:
        """Record one injection (atomic single-line append) and count it."""
        with self._lock:
            self.injected[site] = self.injected.get(site, 0) + 1
        try:
            from repro.obs.metrics import inc as _metrics_inc

            _metrics_inc("repro_chaos_injections_total", site=site)
        except ImportError:  # pragma: no cover - metrics layer absent
            pass
        if self.root is None:
            return
        line = json.dumps(
            {"site": site, "key": key, "n": n, "pid": os.getpid(), "t": time.time()},
            sort_keys=True,
        )
        path = os.path.join(self.root, CHAOS_SUBDIR, CHAOS_LOG_NAME)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:  # pragma: no cover - the log is observability only
            pass

    # -- boundary hooks --------------------------------------------------------

    def torn_lease(self, key: str) -> bool:
        """Whether to truncate the lease document just published for ``key``."""
        return self._hit("lease_torn", key, self.profile.param("p_torn_lease")) is not None

    def store_put_fails(self, key: str) -> bool:
        """Whether this record write dies with an injected EIO."""
        return self._hit("store_put_io", key, self.profile.param("p_io")) is not None

    def rename_delay(self, key: str) -> None:
        """Maybe stall before the record's atomic rename."""
        if self._hit("rename_delay", key, self.profile.param("p_rename_delay")) is not None:
            time.sleep(self.profile.param("rename_delay_ms") / 1000.0)

    def stall_heartbeat(self, key: str, attempt: int) -> bool:
        """Whether the heartbeat abandons this cell's lease (forced expiry)."""
        return self._hit("stall", key, self.profile.param("p_stall"), n=attempt) is not None

    def slow_cell(self, key: str, attempt: int) -> None:
        """Maybe dawdle at the start of a cell computation."""
        if self._hit("slow", key, self.profile.param("p_slow"), n=attempt) is not None:
            time.sleep(self.profile.param("slow_ms") / 1000.0)

    def cell_fails(self, key: str, attempt: int) -> bool:
        """Whether this cell attempt raises an injected exception."""
        return self._hit("cell_fail", key, self.profile.param("p_cell_fail"), n=attempt) is not None

    def maybe_kill(self, key: str, attempt: int, hard: bool = False) -> None:
        """Maybe die at a cell-start boundary.

        ``hard=True`` (worker *processes*) delivers a genuine ``SIGKILL`` —
        the injection is logged first, then nothing else runs.  Thread
        workers raise :class:`WorkerKilled` instead, which skips lease
        release and liveness cleanup on its way out (the closest a thread
        can come to ``kill -9``) and lets the supervisor restart them.
        """
        p = self.profile.param("p_kill")
        if p <= 0.0:
            return
        budget = int(self.profile.param("max_kills"))
        with self._lock:
            if 0 <= budget <= self._kills:
                return
        if self._hit("kill", key, p, n=attempt) is None:
            return
        with self._lock:
            self._kills += 1
        if hard:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here
        raise WorkerKilled(f"chaos kill at cell {key[:12]} attempt {attempt}")

    def http_failure(self, route: str) -> Optional[int]:
        """Whether (and how) to sabotage one HTTP request.

        Returns the draw ordinal on a hit — callers alternate 5xx and
        connection-reset on its parity — or ``None`` to serve normally.
        """
        return self._hit("http", route, self.profile.param("p_http"))


# ---------------------------------------------------------------------------------
# process-wide activation (one engine per (profile, cache root))
# ---------------------------------------------------------------------------------

_engines: Dict[Tuple[str, str], ChaosEngine] = {}
_engines_lock = threading.Lock()


def active_chaos(root: Optional[str] = None) -> Optional[ChaosEngine]:
    """The process's chaos engine for a cache root, or ``None`` (no chaos).

    Activation is purely environmental (``REPRO_CHAOS``), so worker
    subprocesses inherit the exact schedule from their parent.  Engines are
    cached per (canonical profile, root): counters are shared by every
    thread in the process, and a fresh root — each soak phase uses one —
    gets fresh counters, which is what makes replay comparisons exact.
    """
    text = os.environ.get(CHAOS_ENV, "").strip()
    if not text:
        return None
    profile = parse_chaos(text)
    if not profile.active:
        return None
    if root is None:
        root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    cache_key = (profile.canonical, os.path.abspath(root))
    with _engines_lock:
        engine = _engines.get(cache_key)
        if engine is None:
            engine = ChaosEngine(profile, root=root)
            _engines[cache_key] = engine
        return engine


def read_injected_log(root: str) -> List[Dict[str, Any]]:
    """Every injection journalled under a cache root (order of appearance)."""
    path = os.path.join(os.path.abspath(root), CHAOS_SUBDIR, CHAOS_LOG_NAME)
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:  # pragma: no cover - torn tail line
                    continue
    except OSError:
        pass
    return events


def injected_multiset(root: str) -> List[Tuple[str, str, int]]:
    """The order-free injection schedule of a run: sorted (site, key, n).

    Duplicates are collapsed: when two workers race the same decision (both
    redo a reclaimed cell, say) each logs the same keyed draw, and the
    *schedule* — which faults fired where — is identical either way.
    """
    return sorted(
        {(e["site"], e["key"], int(e["n"])) for e in read_injected_log(root)}
    )
