"""Sweep-as-a-service: an HTTP frontend plus lease-sharded sweep workers.

The package layers a small service on top of the experiment engine and the
content-addressed result store:

* :mod:`repro.serve.leases` — atomic, expiring per-cell claims; the entire
  multi-worker coordination plane is lease files in the shared cache root.
* :mod:`repro.serve.jobs` — the on-disk job queue: normalized sweep requests,
  an append-only progress journal, derived status, artifact composition.
* :mod:`repro.serve.workers` — the drain loop: a lease-aware engine that
  shards any job's cell grid across N workers, exactly once per cell.
* :mod:`repro.serve.app` — the stdlib HTTP server (``repro serve``) exposing
  submit/status/events/artifacts/health/stats.
* :mod:`repro.serve.chaos` — seeded, replayable fault injection over all of
  the above (``REPRO_CHAOS``): torn writes, EIO, stalled heartbeats, worker
  kills, HTTP failures — the proof harness for the exactly-once claim.

Exports resolve lazily (PEP 562) so ``import repro.serve`` stays cheap.
"""

from repro._lazy import lazy_exports

__getattr__, __dir__ = lazy_exports(
    __name__,
    exports={
        "ReproServer": "repro.serve.app",
        "default_bind": "repro.serve.app",
        "JobStore": "repro.serve.jobs",
        "JobValidationError": "repro.serve.jobs",
        "JobIncompleteError": "repro.serve.jobs",
        "normalize_request": "repro.serve.jobs",
        "compose_artifacts": "repro.serve.jobs",
        "LeaseStore": "repro.serve.leases",
        "LeaseHeartbeat": "repro.serve.leases",
        "LeaseRecord": "repro.serve.leases",
        "default_owner_id": "repro.serve.leases",
        "LeaseDrainEngine": "repro.serve.workers",
        "SweepWorker": "repro.serve.workers",
        "WorkerSupervisor": "repro.serve.workers",
        "CellQuarantinedError": "repro.serve.workers",
        "list_workers": "repro.serve.workers",
        "ChaosEngine": "repro.serve.chaos",
        "WorkerKilled": "repro.serve.chaos",
        "parse_chaos": "repro.serve.chaos",
        "active_chaos": "repro.serve.chaos",
        "injected_multiset": "repro.serve.chaos",
    },
    submodules=("app", "chaos", "jobs", "leases", "workers"),
)
