"""Sweep workers: lease-coordinated drain of job grids over the shared store.

A worker — an in-process thread of ``repro serve --workers N`` or a separate
``repro serve --worker`` process, possibly on another machine — repeatedly
scans the job queue and *drains* each unfinished job: it runs the job's
request through the ordinary experiment drivers, but on a
:class:`LeaseDrainEngine` whose ``map`` claims each missing cell through the
lease protocol before computing it.  N workers pointed at one cache root
therefore shard a grid automatically: every cell is computed by exactly the
worker that won its lease, everyone else observes the result as a cache hit,
and a crashed worker's claims expire and are recomputed by the survivors.

The drain makes no assumptions about which worker started first, how many
there are, or whether they share a machine — the shared filesystem is the
entire coordination plane.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.runner import ExperimentEngine, ExperimentSpec, run_cell
from repro.analysis.store import ResultStore, cell_attempt_budget, lease_ttl_seconds
from repro.obs.metrics import inc as metrics_inc
from repro.obs.metrics import observe as metrics_observe
from repro.obs.metrics import write_snapshot
from repro.obs.trace import trace_span
from repro.serve.chaos import ChaosInjectedCellError, WorkerKilled, active_chaos
from repro.serve.jobs import WORKERS_SUBDIR, JobStore, execute_request
from repro.serve.leases import LeaseHeartbeat, LeaseStore, default_owner_id
from repro.util.retry import RetryPolicy, retry_call

#: How often a worker republishes its liveness file (seconds).
LIVENESS_INTERVAL_S: float = 2.0

#: Environment override for the per-worker-slot restart budget.
RESTARTS_ENV: str = "REPRO_WORKER_RESTARTS"

#: Default crash-loop cap: a worker slot is restarted at most this many times.
DEFAULT_MAX_RESTARTS: int = 5

#: An event sink: receives plan/cell/error dicts (the job journal appender).
EventSink = Callable[[Dict[str, Any]], None]


class CellQuarantinedError(RuntimeError):
    """A cell exhausted its attempt budget and is poisoned.

    Raised by the drain when it meets (or writes) a poison tombstone; it
    carries the cell's collected failure chain so the job's ``failed`` marker
    — and therefore ``repro status`` — shows *why* the cell kept dying, not
    just that it did.
    """

    def __init__(self, key: str, poison: Dict[str, Any]) -> None:
        errors = "; ".join(
            str(e.get("error", "?")) for e in poison.get("errors", [])
        ) or "no recorded errors"
        super().__init__(
            f"cell {key[:12]} quarantined after "
            f"{poison.get('attempts', '?')} failed attempt(s): {errors}"
        )
        self.key = key
        self.poison = poison


class LeaseDrainEngine(ExperimentEngine):
    """An :class:`ExperimentEngine` whose grid execution is lease-sharded.

    Drop-in for the experiment drivers: ``map`` still returns payloads in
    spec order and the ``cells_computed`` / ``cells_cached`` counters keep
    their meaning — but a miss is only computed after winning the cell's
    lease, and a cell leased elsewhere is awaited (poll the store; reclaim
    and compute it ourselves if the lease expires unrenewed).

    Exactly-once argument, per cell: the store is re-checked *after* the
    lease is won (a previous holder may have committed between our miss and
    our acquire), so a compute happens only under a held lease on a key with
    no record; lease acquisition is single-winner; and the heartbeat renews
    the lease for as long as the compute runs.  Only a holder paused beyond
    its TTL can duplicate work — detected via the heartbeat's lost set and
    harmless, since cells are deterministic and record writes atomic.
    """

    def __init__(
        self,
        store: ResultStore,
        leases: LeaseStore,
        heartbeat: LeaseHeartbeat,
        emit: Optional[EventSink] = None,
        plan: Optional[Callable[[List[str]], None]] = None,
        fast: Optional[bool] = None,
        poll_interval_s: Optional[float] = None,
        stop: Optional[threading.Event] = None,
        hard_kill: bool = False,
    ) -> None:
        super().__init__(parallelism=1, fast=fast, store=store, force=False)
        self.leases = leases
        self.heartbeat = heartbeat
        self.emit = emit
        self.plan = plan
        #: How long to sleep when every remaining cell is leased elsewhere.
        self.poll_interval_s = (
            float(poll_interval_s)
            if poll_interval_s is not None
            else min(0.25, leases.ttl_s / 4.0)
        )
        self._stop = stop if stop is not None else threading.Event()
        #: Cells this engine computed although the lease was lost mid-compute
        #: (duplicate work after a pause beyond the TTL; counted, not hidden).
        self.cells_duplicated = 0
        #: Cell attempts that failed and were left for a later claim.
        self.cells_retried = 0
        #: Whether injected worker kills should be delivered as a genuine
        #: SIGKILL (worker processes) or a :class:`WorkerKilled` raise
        #: (worker threads, restartable by the supervisor).
        self.hard_kill = hard_kill
        self._chaos = active_chaos(store.root)

    def map(self, specs: Sequence[ExperimentSpec]) -> List[Any]:
        """Drain one grid: claim-compute-release misses, await foreign leases."""
        specs = list(specs)
        total = len(specs)
        keys = [self.store.key(spec) for spec in specs]
        if self.plan is not None:
            self.plan(keys)
        computed0, cached0 = self.cells_computed, self.cells_cached
        payloads: List[Any] = [None] * total
        pending = set(range(total))
        while pending:
            if self._stop.is_set():
                raise RuntimeError("drain interrupted by shutdown")
            progressed = False
            for i in sorted(pending):
                if self._fill(specs[i], keys[i], payloads, i):
                    pending.discard(i)
                    progressed = True
            if pending and not progressed:
                # Every remaining cell is leased by another worker: wait for
                # results to land (or leases to expire) instead of spinning.
                time.sleep(self.poll_interval_s)
        self.last_stats = (
            self.cells_computed - computed0,
            self.cells_cached - cached0,
        )
        return payloads

    def _fill(
        self, spec: ExperimentSpec, key: str, payloads: List[Any], i: int
    ) -> bool:
        """Try to finish one cell; ``True`` when ``payloads[i]`` is set.

        The failure path per attempt: the attempt is first *claimed* in the
        on-disk registry (single-winner, crash-persistent — a killed worker's
        attempt still counts), an attempt that raises records its error and
        returns the cell to the pending pool, and the attempt that exhausts
        the budget writes the poison tombstone and raises
        :class:`CellQuarantinedError` so the job fails fast instead of
        hanging its pollers.  Chaos faults (kill / stall / slow / injected
        failure) key off the durable attempt ordinal, which is what makes an
        injected schedule identical across retries, restarts, and replays.
        """
        record = self.store.get(spec)
        if record is not None:
            payloads[i] = record.payload
            self._count_cached(spec, key, record.elapsed_s)
            return True
        poison = self.store.read_poison(key)
        if poison is not None:
            raise CellQuarantinedError(key, poison)
        owner = self.leases.owner
        with trace_span(self._tracer, "cell.claim", key, worker=owner) as claim_span:
            if not self.leases.acquire(key):
                # A lost claim race is a non-event: it happens once per poll
                # for every foreign-leased cell, so the span is discarded.
                claim_span.cancel()
                return False  # live foreign lease: poll again later
        skip_release = False
        with trace_span(
            self._tracer,
            "cell",
            key,
            worker=owner,
            cell_kind=spec.kind,
            benchmark=spec.benchmark,
        ) as cell_span:
            try:
                # Re-check under the lease: the previous holder may have
                # committed (or poisoned) between our store miss and our acquire.
                record = self.store.get(spec)
                if record is not None:
                    payloads[i] = record.payload
                    self._count_cached(spec, key, record.elapsed_s)
                    cell_span.set(outcome="cached")
                    return True
                poison = self.store.read_poison(key)
                if poison is not None:
                    raise CellQuarantinedError(key, poison)
                attempt = self.store.claim_attempt(key, owner)
                if attempt is None:
                    self._quarantine(key)
                cell_span.set(attempt=attempt)
                stall = False
                if self._chaos is not None:
                    try:
                        self._chaos.maybe_kill(key, attempt, hard=self.hard_kill)
                    except WorkerKilled:
                        skip_release = True  # a killed worker releases nothing
                        raise
                    stall = self._chaos.stall_heartbeat(key, attempt)
                try:
                    with trace_span(
                        self._tracer,
                        "cell.compute",
                        key,
                        cell_kind=spec.kind,
                        benchmark=spec.benchmark,
                        attempt=attempt,
                        worker=owner,
                    ):
                        with self.heartbeat.guard(key, stall=stall):
                            t0 = time.perf_counter()
                            if self._chaos is not None:
                                self._chaos.slow_cell(key, attempt)
                                if self._chaos.cell_fails(key, attempt):
                                    raise ChaosInjectedCellError(
                                        f"injected failure at cell {key[:12]} "
                                        f"attempt {attempt}"
                                    )
                            payload = run_cell(spec)
                            elapsed = time.perf_counter() - t0
                    if key in self.heartbeat.lost:
                        self.cells_duplicated += 1
                        metrics_inc("repro_cells_duplicated_total")
                    with trace_span(self._tracer, "cell.put", key, worker=owner):
                        retry_call(
                            lambda: self.store.put(spec, payload, elapsed_s=elapsed),
                            policy=RetryPolicy(
                                max_attempts=4, base_delay_s=0.01, max_delay_s=0.1
                            ),
                            retryable=(OSError,),
                            describe=f"store put {key[:12]}",
                        )
                except WorkerKilled:
                    skip_release = True
                    raise
                except Exception as exc:
                    message = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    self.store.record_attempt_failure(key, attempt, message)
                    self.cells_retried += 1
                    metrics_inc("repro_cell_retries_total")
                    cell_span.set(outcome="retry")
                    if self._tracer is not None:
                        self._tracer.mark(
                            "cell.retry", key, attempt=attempt, worker=owner
                        )
                    if self.emit is not None:
                        self.emit(
                            {
                                "type": "retry",
                                "key": key,
                                "attempt": attempt,
                                "error": message,
                                "t": time.time(),
                            }
                        )
                    if attempt + 1 >= cell_attempt_budget():
                        self._quarantine(key)
                    return False  # back to pending; the next claim takes attempt+1
                self.store.clear_attempts(key)
                payloads[i] = payload
                self.cells_computed += 1
                metrics_inc("repro_cells_computed_total")
                metrics_observe("repro_cell_compute_seconds", elapsed)
                cell_span.set(outcome="computed")
                self._emit_cell(spec, key, cached=False, elapsed_s=elapsed)
                return True
            finally:
                if not skip_release:
                    self.leases.release(key)

    def _quarantine(self, key: str) -> None:
        """Poison a cell whose attempt budget is spent; always raises.

        The tombstone write is single-winner; a loser adopts the winner's
        document so every drain reports the same exception chain.
        """
        attempts = self.store.attempts(key)
        doc = {
            "attempts": len(attempts),
            "errors": [
                {
                    "attempt": a.get("attempt"),
                    "owner": a.get("owner"),
                    "error": a.get("error", "worker died mid-attempt"),
                }
                for a in attempts
            ],
        }
        if not self.store.write_poison(key, doc):
            doc = self.store.read_poison(key) or doc
        metrics_inc("repro_cells_quarantined_total")
        if self.emit is not None:
            self.emit(
                {
                    "type": "quarantine",
                    "key": key,
                    "attempts": doc.get("attempts"),
                    "errors": doc.get("errors", []),
                    "t": time.time(),
                }
            )
        raise CellQuarantinedError(key, doc)

    def _count_cached(
        self, spec: ExperimentSpec, key: str, elapsed_s: Optional[float] = None
    ) -> None:
        """Account one cache hit (computed here earlier, elsewhere, or ever).

        ``elapsed_s`` is the *original* compute cost carried by the store
        record, so job status can report total compute seconds even when
        every cell of a re-run is warm.
        """
        self.cells_cached += 1
        metrics_inc("repro_cells_cached_total")
        self._emit_cell(spec, key, cached=True, elapsed_s=elapsed_s)

    def _emit_cell(
        self,
        spec: ExperimentSpec,
        key: str,
        cached: bool,
        elapsed_s: Optional[float] = None,
    ) -> None:
        """Report one finished cell to the event sink, if any."""
        if self.emit is None:
            return
        event = {
            "type": "cell",
            "key": key,
            "kind": spec.kind,
            "benchmark": spec.benchmark,
            "cached": cached,
            "t": time.time(),
        }
        if elapsed_s is not None:
            event["elapsed_s"] = round(elapsed_s, 6)
        self.emit(event)


class _LivenessWriter(threading.Thread):
    """A daemon thread republishing one worker's liveness file.

    The health endpoint reads these files to report worker liveness; a file
    older than a few intervals means the worker is gone (the lease protocol
    already handles its cells, this is purely observability).
    """

    def __init__(self, worker: "SweepWorker", interval_s: float) -> None:
        super().__init__(name=f"liveness-{worker.owner}", daemon=True)
        self.worker = worker
        self.interval_s = interval_s
        # Not named _stop: threading.Thread uses a private method of that name.
        self._halt = threading.Event()

    def run(self) -> None:
        """Write the liveness file every interval until stopped."""
        while True:
            self.worker.write_liveness()
            if self._halt.wait(self.interval_s):
                return

    def stop(self) -> None:
        """Stop the thread and remove the liveness file (clean shutdown)."""
        self.halt()
        try:
            os.remove(self.worker.liveness_path)
        except OSError:
            pass

    def halt(self) -> None:
        """Stop the thread but *leave* the liveness file behind.

        The simulated-SIGKILL path: a worker killed by chaos must look
        exactly like one killed by the OS, and a real SIGKILL never unlinks
        the liveness file — that is what the gc staleness sweep is for.
        """
        self._halt.set()
        self.join(timeout=5.0)


class SweepWorker:
    """One queue-draining worker bound to a shared cache root."""

    def __init__(
        self,
        root: Optional[str] = None,
        owner: Optional[str] = None,
        ttl_s: Optional[float] = None,
        poll_interval_s: Optional[float] = None,
        liveness_interval_s: float = LIVENESS_INTERVAL_S,
        hard_kill: bool = False,
    ) -> None:
        self.owner = owner if owner is not None else default_owner_id()
        self.hard_kill = hard_kill
        self.store = ResultStore(root)
        self.jobs = JobStore(self.store.root)
        self.leases = LeaseStore(self.store.root, owner=self.owner, ttl_s=ttl_s)
        self.heartbeat = LeaseHeartbeat(self.leases)
        self.poll_interval_s = poll_interval_s
        self.liveness_interval_s = liveness_interval_s
        self.started_at = time.time()
        self.jobs_drained = 0
        self.jobs_failed = 0
        self.cells_computed = 0
        self.cells_cached = 0
        self._liveness: Optional[_LivenessWriter] = None

    # -- liveness --------------------------------------------------------------

    @property
    def liveness_path(self) -> str:
        """This worker's liveness file under ``serve/workers/``."""
        return os.path.join(self.store.root, WORKERS_SUBDIR, f"{self.owner}.json")

    def write_liveness(self) -> None:
        """Atomically republish the liveness document."""
        path = self.liveness_path
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {
            "owner": self.owner,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": time.time(),
            "interval_s": self.liveness_interval_s,
            "jobs_drained": self.jobs_drained,
            "jobs_failed": self.jobs_failed,
            "cells_computed": self.cells_computed,
            "cells_cached": self.cells_cached,
        }
        tmp = path + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - liveness is best-effort
            pass
        # Piggyback the metrics snapshot on the liveness cadence so the
        # frontend's /metrics merge sees this worker's counters even when the
        # worker runs in a separate process (or on another machine).
        write_snapshot(self.store.root, self.owner)

    # -- draining --------------------------------------------------------------

    def drain_job(
        self, job: Dict[str, Any], stop: Optional[threading.Event] = None
    ) -> Dict[str, Any]:
        """Drain one job to completion (or failure); returns this drain's stats.

        Several workers may drain the same job concurrently — that is the
        sharding mechanism, not a conflict.  Whichever drain finishes first
        writes the done marker; every drain finishing at all implies every
        cell of the job is in the store.
        """
        job_id = job["id"]
        request = job["request"]
        engine = LeaseDrainEngine(
            store=self.store,
            leases=self.leases,
            heartbeat=self.heartbeat,
            emit=lambda e: self.jobs.append_event(job_id, {**e, "owner": self.owner}),
            plan=lambda keys: self.jobs.append_plan_event(job_id, keys, self.owner),
            fast=request.get("fast", True),
            poll_interval_s=self.poll_interval_s,
            stop=stop,
            hard_kill=self.hard_kill,
        )
        try:
            execute_request(request, engine)
        except Exception as exc:
            message = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            quarantined = None
            if isinstance(exc, CellQuarantinedError):
                quarantined = [{"key": exc.key, **exc.poison}]
            self.jobs.append_event(
                job_id,
                {"type": "error", "owner": self.owner, "message": message, "t": time.time()},
            )
            self.jobs.mark_failed(job_id, self.owner, message, quarantined=quarantined)
            self.jobs_failed += 1
            raise
        summary = {
            "owner": self.owner,
            "cells_total": engine.cells_computed + engine.cells_cached,
            "cells_computed": engine.cells_computed,
            "cells_cached": engine.cells_cached,
            "cells_duplicated": engine.cells_duplicated,
            "cells_retried": engine.cells_retried,
        }
        self.jobs.mark_done(job_id, summary)
        self.jobs_drained += 1
        self.cells_computed += engine.cells_computed
        self.cells_cached += engine.cells_cached
        return summary

    def run_once(self, stop: Optional[threading.Event] = None) -> int:
        """Drain every currently pending job once; returns how many finished."""
        drained = 0
        for job in self.jobs.pending_jobs():
            if stop is not None and stop.is_set():
                break
            try:
                self.drain_job(job, stop=stop)
                drained += 1
            except Exception:
                # The job is marked failed (or the shutdown interrupted us);
                # move on so one poisoned job cannot wedge the queue.
                continue
        return drained

    def run_forever(
        self,
        stop: Optional[threading.Event] = None,
        poll_s: float = 0.5,
        idle_exit: bool = False,
    ) -> None:
        """The worker main loop: heartbeats on, drain, sleep, repeat.

        ``idle_exit=True`` returns as soon as the queue has no pending jobs
        (used by tests and the CI smoke); otherwise the loop runs until
        ``stop`` is set.
        """
        stop = stop if stop is not None else threading.Event()
        self.heartbeat.start()
        self._liveness = _LivenessWriter(self, self.liveness_interval_s)
        self._liveness.start()
        try:
            while not stop.is_set():
                self.run_once(stop=stop)
                if idle_exit and not self.jobs.pending_jobs():
                    return
                stop.wait(poll_s)
        except WorkerKilled:
            # Simulated kill -9: no cleanup at all.  Leases stay on disk and
            # expire, the liveness file lingers until the gc staleness sweep,
            # and the supervisor (if any) sees the corpse and restarts us.
            if self._liveness is not None:
                self._liveness.halt()
                self._liveness = None
            self.heartbeat.stop()
            raise
        finally:
            self.heartbeat.stop()
            if self._liveness is not None:
                self._liveness.stop()
                self._liveness = None


def max_worker_restarts() -> int:
    """Per-slot restart budget: ``REPRO_WORKER_RESTARTS`` or the default of 5."""
    env = os.environ.get(RESTARTS_ENV)
    if env:
        try:
            cap = int(env)
            if cap >= 0:
                return cap
        except ValueError:
            pass
    return DEFAULT_MAX_RESTARTS


class WorkerSupervisor:
    """Run N worker threads and restart the ones that die.

    Each *slot* owns one :class:`SweepWorker` thread.  A thread that exits
    with an exception — a chaos :class:`WorkerKilled`, or a genuine bug — is
    replaced with a **fresh** worker (new owner identity, new lease store)
    after an exponential backoff, up to a per-slot crash-loop cap
    (``REPRO_WORKER_RESTARTS``); a slot over its cap is abandoned and counted
    in ``crash_looped`` so ``/health`` shows the degradation instead of the
    service silently running under-strength.  A thread that *returns* is
    simply finished (idle-exit), never restarted.
    """

    def __init__(
        self,
        root: str,
        count: int,
        ttl_s: Optional[float] = None,
        poll_s: float = 0.2,
        max_restarts: Optional[int] = None,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 5.0,
    ) -> None:
        self.root = root
        self.count = int(count)
        self.ttl_s = ttl_s
        self.poll_s = float(poll_s)
        self.max_restarts = (
            int(max_restarts) if max_restarts is not None else max_worker_restarts()
        )
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.restarts = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._slots: List[Dict[str, Any]] = []
        self._monitor: Optional[threading.Thread] = None

    @property
    def workers(self) -> List[SweepWorker]:
        """The currently installed worker of every slot."""
        with self._lock:
            return [slot["worker"] for slot in self._slots]

    def _spawn(self, slot: Dict[str, Any]) -> None:
        """Install a fresh worker + thread into a slot (caller holds no lock)."""
        worker = SweepWorker(self.root, ttl_s=self.ttl_s)
        crashed = threading.Event()

        def _run() -> None:
            try:
                worker.run_forever(stop=self._stop, poll_s=self.poll_s)
            except BaseException:  # noqa: BLE001 - a dead worker, whatever killed it
                crashed.set()

        thread = threading.Thread(
            target=_run, name=f"sweep-worker-{worker.owner}", daemon=True
        )
        with self._lock:
            slot["worker"] = worker
            slot["thread"] = thread
            slot["crashed"] = crashed
        thread.start()

    def start(self) -> None:
        """Start every slot plus the monitor thread (idempotent)."""
        if self._monitor is not None and self._monitor.is_alive():
            return
        self._stop.clear()
        if not self._slots:
            self._slots = [
                {"worker": None, "thread": None, "crashed": None,
                 "restarts": 0, "next_restart_at": 0.0, "gave_up": False}
                for _ in range(self.count)
            ]
        for slot in self._slots:
            self._spawn(slot)
        self._monitor = threading.Thread(
            target=self._watch, name="worker-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        """Stop the monitor and every worker thread."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for slot in list(self._slots):
            thread = slot.get("thread")
            if thread is not None:
                thread.join(timeout=5.0)

    def _watch(self) -> None:
        """Monitor loop: restart crashed slots with backoff, respect the cap."""
        while not self._stop.wait(0.1):
            now = time.monotonic()
            for slot in self._slots:
                thread = slot["thread"]
                crashed = slot["crashed"]
                if thread is None or thread.is_alive() or slot["gave_up"]:
                    continue
                if crashed is None or not crashed.is_set():
                    continue  # clean return (idle exit): nothing to revive
                if slot["next_restart_at"] == 0.0:
                    if slot["restarts"] >= self.max_restarts:
                        slot["gave_up"] = True
                        continue
                    delay = min(
                        self.backoff_max_s,
                        self.backoff_base_s * (2.0 ** slot["restarts"]),
                    )
                    slot["next_restart_at"] = now + delay
                    continue
                if now < slot["next_restart_at"]:
                    continue
                slot["next_restart_at"] = 0.0
                slot["restarts"] += 1
                self.restarts += 1
                metrics_inc("repro_worker_restarts_total")
                self._spawn(slot)

    def stats(self) -> Dict[str, int]:
        """Supervision counters for the health/stats endpoints."""
        with self._lock:
            alive = sum(
                1
                for slot in self._slots
                if slot["thread"] is not None and slot["thread"].is_alive()
            )
            crash_looped = sum(1 for slot in self._slots if slot["gave_up"])
        return {
            "alive": alive,
            "restarts": self.restarts,
            "crash_looped": crash_looped,
        }


def list_workers(
    root: Optional[str] = None, now: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Every known worker's liveness document, annotated with ``alive``/``stale``.

    A worker is reported alive while its liveness file is younger than three
    republish intervals — the same "missed a few heartbeats" rule the lease
    TTL applies to cell claims.  A file older than three lease TTLs is
    ``stale``: its worker was SIGKILLed (or the host died) and never cleaned
    up after itself; ``ResultStore.gc`` removes such files.
    """
    store = ResultStore(root)
    workers_dir = os.path.join(store.root, WORKERS_SUBDIR)
    if now is None:
        now = time.time()
    stale_after_s = 3.0 * lease_ttl_seconds()
    rows: List[Dict[str, Any]] = []
    if not os.path.isdir(workers_dir):
        return rows
    for name in sorted(os.listdir(workers_dir)):
        if not name.endswith(".json") or ".tmp." in name:
            continue
        try:
            with open(os.path.join(workers_dir, name), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        age = now - float(doc.get("updated_at", 0.0))
        interval = float(doc.get("interval_s", LIVENESS_INTERVAL_S))
        rows.append(
            {
                **doc,
                "age_s": round(age, 3),
                "alive": age < 3.0 * interval,
                "stale": age >= stale_after_s,
            }
        )
    return rows
