"""Sweep workers: lease-coordinated drain of job grids over the shared store.

A worker — an in-process thread of ``repro serve --workers N`` or a separate
``repro serve --worker`` process, possibly on another machine — repeatedly
scans the job queue and *drains* each unfinished job: it runs the job's
request through the ordinary experiment drivers, but on a
:class:`LeaseDrainEngine` whose ``map`` claims each missing cell through the
lease protocol before computing it.  N workers pointed at one cache root
therefore shard a grid automatically: every cell is computed by exactly the
worker that won its lease, everyone else observes the result as a cache hit,
and a crashed worker's claims expire and are recomputed by the survivors.

The drain makes no assumptions about which worker started first, how many
there are, or whether they share a machine — the shared filesystem is the
entire coordination plane.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.runner import ExperimentEngine, ExperimentSpec, run_cell
from repro.analysis.store import ResultStore
from repro.serve.jobs import WORKERS_SUBDIR, JobStore, execute_request
from repro.serve.leases import LeaseHeartbeat, LeaseStore, default_owner_id

#: How often a worker republishes its liveness file (seconds).
LIVENESS_INTERVAL_S: float = 2.0

#: An event sink: receives plan/cell/error dicts (the job journal appender).
EventSink = Callable[[Dict[str, Any]], None]


class LeaseDrainEngine(ExperimentEngine):
    """An :class:`ExperimentEngine` whose grid execution is lease-sharded.

    Drop-in for the experiment drivers: ``map`` still returns payloads in
    spec order and the ``cells_computed`` / ``cells_cached`` counters keep
    their meaning — but a miss is only computed after winning the cell's
    lease, and a cell leased elsewhere is awaited (poll the store; reclaim
    and compute it ourselves if the lease expires unrenewed).

    Exactly-once argument, per cell: the store is re-checked *after* the
    lease is won (a previous holder may have committed between our miss and
    our acquire), so a compute happens only under a held lease on a key with
    no record; lease acquisition is single-winner; and the heartbeat renews
    the lease for as long as the compute runs.  Only a holder paused beyond
    its TTL can duplicate work — detected via the heartbeat's lost set and
    harmless, since cells are deterministic and record writes atomic.
    """

    def __init__(
        self,
        store: ResultStore,
        leases: LeaseStore,
        heartbeat: LeaseHeartbeat,
        emit: Optional[EventSink] = None,
        plan: Optional[Callable[[List[str]], None]] = None,
        fast: Optional[bool] = None,
        poll_interval_s: Optional[float] = None,
        stop: Optional[threading.Event] = None,
    ) -> None:
        super().__init__(parallelism=1, fast=fast, store=store, force=False)
        self.leases = leases
        self.heartbeat = heartbeat
        self.emit = emit
        self.plan = plan
        #: How long to sleep when every remaining cell is leased elsewhere.
        self.poll_interval_s = (
            float(poll_interval_s)
            if poll_interval_s is not None
            else min(0.25, leases.ttl_s / 4.0)
        )
        self._stop = stop if stop is not None else threading.Event()
        #: Cells this engine computed although the lease was lost mid-compute
        #: (duplicate work after a pause beyond the TTL; counted, not hidden).
        self.cells_duplicated = 0

    def map(self, specs: Sequence[ExperimentSpec]) -> List[Any]:
        """Drain one grid: claim-compute-release misses, await foreign leases."""
        specs = list(specs)
        total = len(specs)
        keys = [self.store.key(spec) for spec in specs]
        if self.plan is not None:
            self.plan(keys)
        computed0, cached0 = self.cells_computed, self.cells_cached
        payloads: List[Any] = [None] * total
        pending = set(range(total))
        while pending:
            if self._stop.is_set():
                raise RuntimeError("drain interrupted by shutdown")
            progressed = False
            for i in sorted(pending):
                if self._fill(specs[i], keys[i], payloads, i):
                    pending.discard(i)
                    progressed = True
            if pending and not progressed:
                # Every remaining cell is leased by another worker: wait for
                # results to land (or leases to expire) instead of spinning.
                time.sleep(self.poll_interval_s)
        self.last_stats = (
            self.cells_computed - computed0,
            self.cells_cached - cached0,
        )
        return payloads

    def _fill(
        self, spec: ExperimentSpec, key: str, payloads: List[Any], i: int
    ) -> bool:
        """Try to finish one cell; ``True`` when ``payloads[i]`` is set."""
        record = self.store.get(spec)
        if record is not None:
            payloads[i] = record.payload
            self._count_cached(spec, key)
            return True
        if not self.leases.acquire(key):
            return False  # live foreign lease: poll again later
        try:
            # Re-check under the lease: the previous holder may have
            # committed between our store miss and our acquire.
            record = self.store.get(spec)
            if record is not None:
                payloads[i] = record.payload
                self._count_cached(spec, key)
                return True
            with self.heartbeat.guard(key):
                t0 = time.perf_counter()
                payload = run_cell(spec)
                elapsed = time.perf_counter() - t0
            if key in self.heartbeat.lost:
                self.cells_duplicated += 1
            self.store.put(spec, payload, elapsed_s=elapsed)
            payloads[i] = payload
            self.cells_computed += 1
            self._emit_cell(spec, key, cached=False, elapsed_s=elapsed)
            return True
        finally:
            self.leases.release(key)

    def _count_cached(self, spec: ExperimentSpec, key: str) -> None:
        """Account one cache hit (computed here earlier, elsewhere, or ever)."""
        self.cells_cached += 1
        self._emit_cell(spec, key, cached=True)

    def _emit_cell(
        self,
        spec: ExperimentSpec,
        key: str,
        cached: bool,
        elapsed_s: Optional[float] = None,
    ) -> None:
        """Report one finished cell to the event sink, if any."""
        if self.emit is None:
            return
        event = {
            "type": "cell",
            "key": key,
            "kind": spec.kind,
            "benchmark": spec.benchmark,
            "cached": cached,
            "t": time.time(),
        }
        if elapsed_s is not None:
            event["elapsed_s"] = round(elapsed_s, 6)
        self.emit(event)


class _LivenessWriter(threading.Thread):
    """A daemon thread republishing one worker's liveness file.

    The health endpoint reads these files to report worker liveness; a file
    older than a few intervals means the worker is gone (the lease protocol
    already handles its cells, this is purely observability).
    """

    def __init__(self, worker: "SweepWorker", interval_s: float) -> None:
        super().__init__(name=f"liveness-{worker.owner}", daemon=True)
        self.worker = worker
        self.interval_s = interval_s
        # Not named _stop: threading.Thread uses a private method of that name.
        self._halt = threading.Event()

    def run(self) -> None:
        """Write the liveness file every interval until stopped."""
        while True:
            self.worker.write_liveness()
            if self._halt.wait(self.interval_s):
                return

    def stop(self) -> None:
        """Stop the thread and remove the liveness file (clean shutdown)."""
        self._halt.set()
        self.join(timeout=5.0)
        try:
            os.remove(self.worker.liveness_path)
        except OSError:
            pass


class SweepWorker:
    """One queue-draining worker bound to a shared cache root."""

    def __init__(
        self,
        root: Optional[str] = None,
        owner: Optional[str] = None,
        ttl_s: Optional[float] = None,
        poll_interval_s: Optional[float] = None,
        liveness_interval_s: float = LIVENESS_INTERVAL_S,
    ) -> None:
        self.owner = owner if owner is not None else default_owner_id()
        self.store = ResultStore(root)
        self.jobs = JobStore(self.store.root)
        self.leases = LeaseStore(self.store.root, owner=self.owner, ttl_s=ttl_s)
        self.heartbeat = LeaseHeartbeat(self.leases)
        self.poll_interval_s = poll_interval_s
        self.liveness_interval_s = liveness_interval_s
        self.started_at = time.time()
        self.jobs_drained = 0
        self.jobs_failed = 0
        self.cells_computed = 0
        self.cells_cached = 0
        self._liveness: Optional[_LivenessWriter] = None

    # -- liveness --------------------------------------------------------------

    @property
    def liveness_path(self) -> str:
        """This worker's liveness file under ``serve/workers/``."""
        return os.path.join(self.store.root, WORKERS_SUBDIR, f"{self.owner}.json")

    def write_liveness(self) -> None:
        """Atomically republish the liveness document."""
        path = self.liveness_path
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {
            "owner": self.owner,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": time.time(),
            "interval_s": self.liveness_interval_s,
            "jobs_drained": self.jobs_drained,
            "jobs_failed": self.jobs_failed,
            "cells_computed": self.cells_computed,
            "cells_cached": self.cells_cached,
        }
        tmp = path + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - liveness is best-effort
            pass

    # -- draining --------------------------------------------------------------

    def drain_job(
        self, job: Dict[str, Any], stop: Optional[threading.Event] = None
    ) -> Dict[str, Any]:
        """Drain one job to completion (or failure); returns this drain's stats.

        Several workers may drain the same job concurrently — that is the
        sharding mechanism, not a conflict.  Whichever drain finishes first
        writes the done marker; every drain finishing at all implies every
        cell of the job is in the store.
        """
        job_id = job["id"]
        request = job["request"]
        engine = LeaseDrainEngine(
            store=self.store,
            leases=self.leases,
            heartbeat=self.heartbeat,
            emit=lambda e: self.jobs.append_event(job_id, {**e, "owner": self.owner}),
            plan=lambda keys: self.jobs.append_plan_event(job_id, keys, self.owner),
            fast=request.get("fast", True),
            poll_interval_s=self.poll_interval_s,
            stop=stop,
        )
        try:
            execute_request(request, engine)
        except Exception as exc:
            message = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            self.jobs.append_event(
                job_id,
                {"type": "error", "owner": self.owner, "message": message, "t": time.time()},
            )
            self.jobs.mark_failed(job_id, self.owner, message)
            self.jobs_failed += 1
            raise
        summary = {
            "owner": self.owner,
            "cells_total": engine.cells_computed + engine.cells_cached,
            "cells_computed": engine.cells_computed,
            "cells_cached": engine.cells_cached,
            "cells_duplicated": engine.cells_duplicated,
        }
        self.jobs.mark_done(job_id, summary)
        self.jobs_drained += 1
        self.cells_computed += engine.cells_computed
        self.cells_cached += engine.cells_cached
        return summary

    def run_once(self, stop: Optional[threading.Event] = None) -> int:
        """Drain every currently pending job once; returns how many finished."""
        drained = 0
        for job in self.jobs.pending_jobs():
            if stop is not None and stop.is_set():
                break
            try:
                self.drain_job(job, stop=stop)
                drained += 1
            except Exception:
                # The job is marked failed (or the shutdown interrupted us);
                # move on so one poisoned job cannot wedge the queue.
                continue
        return drained

    def run_forever(
        self,
        stop: Optional[threading.Event] = None,
        poll_s: float = 0.5,
        idle_exit: bool = False,
    ) -> None:
        """The worker main loop: heartbeats on, drain, sleep, repeat.

        ``idle_exit=True`` returns as soon as the queue has no pending jobs
        (used by tests and the CI smoke); otherwise the loop runs until
        ``stop`` is set.
        """
        stop = stop if stop is not None else threading.Event()
        self.heartbeat.start()
        self._liveness = _LivenessWriter(self, self.liveness_interval_s)
        self._liveness.start()
        try:
            while not stop.is_set():
                self.run_once(stop=stop)
                if idle_exit and not self.jobs.pending_jobs():
                    return
                stop.wait(poll_s)
        finally:
            self.heartbeat.stop()
            if self._liveness is not None:
                self._liveness.stop()
                self._liveness = None


def list_workers(
    root: Optional[str] = None, now: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Every known worker's liveness document, annotated with ``alive``.

    A worker is reported alive while its liveness file is younger than three
    republish intervals — the same "missed a few heartbeats" rule the lease
    TTL applies to cell claims.
    """
    store = ResultStore(root)
    workers_dir = os.path.join(store.root, WORKERS_SUBDIR)
    if now is None:
        now = time.time()
    rows: List[Dict[str, Any]] = []
    if not os.path.isdir(workers_dir):
        return rows
    for name in sorted(os.listdir(workers_dir)):
        if not name.endswith(".json") or ".tmp." in name:
            continue
        try:
            with open(os.path.join(workers_dir, name), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        age = now - float(doc.get("updated_at", 0.0))
        interval = float(doc.get("interval_s", LIVENESS_INTERVAL_S))
        rows.append({**doc, "age_s": round(age, 3), "alive": age < 3.0 * interval})
    return rows
