"""The sweep service HTTP layer: submit grids, watch progress, fetch artifacts.

A deliberately small stdlib server (``http.server.ThreadingHTTPServer`` —
the repo adds no dependencies) over the job queue in
:mod:`repro.serve.jobs`.  The server itself never computes cells: submission
writes a job document, progress is derived from the shared store and the
events journal, and artifacts are composed read-only from the warm cache.
All computation happens in workers — embedded threads
(``ReproServer(workers=N)``), separate ``repro serve --worker`` processes,
or both — coordinating purely through the shared cache root.

API (all JSON unless noted)::

    POST /api/v1/jobs                    submit a request -> 202 {job}
    GET  /api/v1/jobs                    all job statuses, oldest first
    GET  /api/v1/jobs/<id>               one job's derived status
    GET  /api/v1/jobs/<id>/events?offset=N   incremental journal tail
    GET  /api/v1/jobs/<id>/artifacts/<fmt>   txt | json | csv (409 until done)
    GET  /api/v1/health                  liveness + worker heartbeats
    GET  /api/v1/stats                   store/queue/lease counters
    GET  /metrics                        Prometheus text exposition (not JSON)

Errors are ``{"error": ...}`` with conventional codes: 400 invalid request,
404 unknown job/route/format, 409 artifacts requested before the job's cells
are all computed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.analysis.store import ResultStore, lease_ttl_seconds
from repro.obs.metrics import PROM_CONTENT_TYPE, metrics_enabled, render_merged
from repro.obs.metrics import inc as metrics_inc
from repro.obs.trace import active_tracer, trace_mode, trace_span
from repro.serve.chaos import active_chaos
from repro.serve.jobs import JobIncompleteError, JobStore, JobValidationError, compose_artifacts
from repro.serve.workers import SweepWorker, WorkerSupervisor, list_workers
from repro.util.retry import RetryPolicy, retry_call

#: Bind address override: ``host:port`` (CLI flags win over the env).
BIND_ENV = "REPRO_SERVE_BIND"

#: Default bind address of ``repro serve``.
DEFAULT_BIND = "127.0.0.1:8765"

#: Artifact formats the service renders, with their content types.
ARTIFACT_TYPES: Dict[str, str] = {
    "txt": "text/plain; charset=utf-8",
    "json": "application/json; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
}

#: Maximum accepted request body (a request document is tiny).
_MAX_BODY_BYTES = 1 << 20


def default_bind(host: Optional[str] = None, port: Optional[int] = None) -> Tuple[str, int]:
    """Resolve the bind address: explicit args > ``REPRO_SERVE_BIND`` > default."""
    env = os.environ.get(BIND_ENV, DEFAULT_BIND)
    env_host, _, env_port = env.rpartition(":")
    try:
        parsed_port = int(env_port)
    except ValueError:
        env_host, parsed_port = DEFAULT_BIND.rsplit(":", 1)[0], int(
            DEFAULT_BIND.rsplit(":", 1)[1]
        )
    if not env_host:
        env_host = DEFAULT_BIND.rsplit(":", 1)[0]
    return (host if host is not None else env_host,
            port if port is not None else parsed_port)


class _Handler(BaseHTTPRequestHandler):
    """Route one HTTP request against the server's job store."""

    # Set by ReproServer on the server object; typed here for clarity.
    server: "ReproServer"

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (the service is test-driven)."""

    # -- plumbing --------------------------------------------------------------

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        """Write one complete response."""
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, doc: Any) -> None:
        """Write one JSON response."""
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self._send(code, body, "application/json; charset=utf-8")

    def _error(self, code: int, message: str) -> None:
        """Write one JSON error response."""
        self._json(code, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        """Parse the request body as a JSON object (``None`` -> 400 sent)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._error(400, "request body required (a JSON object)")
            return None
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(doc, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return doc

    def _chaos_preempt(self) -> bool:
        """Maybe sabotage this request (injected frontend failure).

        Alternates by draw ordinal between a 503 (the retryable-status path
        of the client's backoff) and an abrupt connection close (the
        connection-reset path).  Both are exactly what the
        ``util/retry``-routed CLI client must absorb.
        """
        chaos = getattr(self.server, "chaos", None)
        if chaos is None:
            return False
        n = chaos.http_failure(urlparse(self.path).path)
        if n is None:
            return False
        if n % 2 == 0:
            self._error(503, "injected server error (chaos)")
        else:
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
        return True

    # -- methods ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """POST entry: count the request, maybe trace it, then route."""
        metrics_inc("repro_http_requests_total", method="POST")
        if self._chaos_preempt():
            return
        with trace_span(
            getattr(self.server, "tracer", None),
            "http.request",
            method="POST",
            path=urlparse(self.path).path,
        ):
            self._route_post()

    def _route_post(self) -> None:
        """POST router: job submission only."""
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["api", "v1", "jobs"]:
            doc = self._read_body()
            if doc is None:
                return
            try:
                job = self.server.jobs.submit(doc)
            except JobValidationError as exc:
                self._error(400, str(exc))
                return
            self._json(202, {"job": job, "status_url": f"/api/v1/jobs/{job['id']}"})
            return
        self._error(404, f"no such route: POST {self.path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """GET entry: count the request, maybe trace it, then route."""
        metrics_inc("repro_http_requests_total", method="GET")
        if self._chaos_preempt():
            return
        with trace_span(
            getattr(self.server, "tracer", None),
            "http.request",
            method="GET",
            path=urlparse(self.path).path,
        ):
            self._route_get()

    def _route_get(self) -> None:
        """GET router: statuses, events, artifacts, health, stats, metrics."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["metrics"]:
            # Prometheus convention: the scrape endpoint lives at the root,
            # outside the JSON API namespace.
            if not metrics_enabled():
                self._error(404, "metrics exposition disabled (REPRO_METRICS=off)")
                return
            body = self.server.metrics_text().encode("utf-8")
            self._send(200, body, PROM_CONTENT_TYPE)
            return
        if parts[:2] != ["api", "v1"]:
            self._error(404, f"no such route: GET {self.path}")
            return
        rest = parts[2:]
        if rest == ["health"]:
            self._json(200, self.server.health())
            return
        if rest == ["stats"]:
            self._json(200, self.server.stats())
            return
        if rest == ["jobs"]:
            statuses = [
                self.server.jobs.status(job["id"]) for job in self.server.jobs.list_jobs()
            ]
            self._json(200, {"jobs": [s for s in statuses if s is not None]})
            return
        if len(rest) >= 2 and rest[0] == "jobs":
            job_id = rest[1]
            status = self.server.jobs.status(job_id)
            if status is None:
                self._error(404, f"unknown job: {job_id}")
                return
            if len(rest) == 2:
                self._json(200, status)
                return
            if rest[2:] == ["events"]:
                query = parse_qs(url.query)
                try:
                    offset = int(query.get("offset", ["0"])[0])
                except ValueError:
                    offset = 0
                events, next_offset = self.server.jobs.events(job_id, offset=offset)
                self._json(
                    200,
                    {"events": events, "next_offset": next_offset, "state": status["state"]},
                )
                return
            if len(rest) == 4 and rest[2] == "artifacts":
                self._artifact(status, rest[3])
                return
        self._error(404, f"no such route: GET {self.path}")

    def _artifact(self, status: Dict[str, Any], fmt: str) -> None:
        """Serve one artifact of a job, composed read-only from the store."""
        content_type = ARTIFACT_TYPES.get(fmt)
        if content_type is None:
            self._error(404, f"unknown artifact format {fmt!r}; known: txt, json, csv")
            return
        if status["state"] == "failed":
            self._error(409, f"job failed: {status.get('error')}")
            return
        try:
            texts = self.server.compose(status["request"])
        except JobIncompleteError as exc:
            self._error(409, f"job not finished: {exc}")
            return
        self._send(200, texts[fmt].encode("utf-8"), content_type)


class _ServeHTTPServer(ThreadingHTTPServer):
    """A threading server that doesn't traceback on torn connections.

    Chaos-injected connection resets (and ordinary client hangups) surface
    in the handler thread as ``ConnectionError``/``BrokenPipeError``; they
    are expected, not bugs, so they must not spray stack traces over the
    CLI's stderr.  Anything else still reports normally.
    """

    daemon_threads = True

    def handle_error(self, request: Any, client_address: Any) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, BrokenPipeError, OSError)):
            return
        super().handle_error(request, client_address)  # pragma: no cover


class ReproServer:
    """The sweep service: a threading HTTP server plus optional local workers.

    ``workers=N`` starts N :class:`~repro.serve.workers.SweepWorker` threads
    draining the same cache root in-process — supervised: a worker that dies
    (a bug, or a chaos-injected kill) is restarted with backoff up to the
    crash-loop cap — the small-deployment mode where one ``repro serve``
    command is the whole system.  With ``workers=0`` the server is a pure
    frontend and every cell is computed by external ``repro serve --worker``
    processes (any machine sharing the cache root).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: int = 0,
        ttl_s: Optional[float] = None,
        max_restarts: Optional[int] = None,
    ) -> None:
        self.store = ResultStore(root)
        self.jobs = JobStore(self.store.root)
        self.ttl_s = float(ttl_s) if ttl_s is not None else lease_ttl_seconds()
        bind_host, bind_port = default_bind(host, port)
        self.httpd = _ServeHTTPServer((bind_host, bind_port), _Handler)
        # The handler reaches everything through self.server; graft ourselves on.
        self.httpd.jobs = self.jobs  # type: ignore[attr-defined]
        self.httpd.health = self.health  # type: ignore[attr-defined]
        self.httpd.stats = self.stats  # type: ignore[attr-defined]
        self.httpd.compose = self.compose  # type: ignore[attr-defined]
        self.httpd.chaos = active_chaos(self.store.root)  # type: ignore[attr-defined]
        self.httpd.tracer = active_tracer(self.store.root)  # type: ignore[attr-defined]
        self.httpd.metrics_text = self.metrics_text  # type: ignore[attr-defined]
        self.started_at = time.time()
        self._thread: Optional[threading.Thread] = None
        self.supervisor: Optional[WorkerSupervisor] = (
            WorkerSupervisor(
                self.store.root, workers, ttl_s=self.ttl_s, max_restarts=max_restarts
            )
            if workers > 0
            else None
        )
        self._compose_lock = threading.Lock()
        self._compose_cache: Dict[str, Dict[str, str]] = {}

    @property
    def workers(self) -> List[SweepWorker]:
        """The embedded workers currently installed (restarts replace them)."""
        return self.supervisor.workers if self.supervisor is not None else []

    # -- endpoint payloads -----------------------------------------------------

    def compose(self, request: Dict[str, Any]) -> Dict[str, str]:
        """Artifact texts of one (finished) request, memoised per request body.

        The memo key is the canonical request JSON: identical requests —
        including warm resubmissions, which by design share every cell —
        serve the same composed bytes without re-walking the store.
        """
        memo_key = json.dumps(request, sort_keys=True)
        with self._compose_lock:
            cached = self._compose_cache.get(memo_key)
        if cached is not None:
            return cached
        # One quick retry absorbs transient read blips (and chaos-delayed
        # renames) without turning a genuinely unfinished job into a wait:
        # JobIncompleteError still reaches the 409 path after the second try.
        texts = retry_call(
            lambda: compose_artifacts(request, self.store.root),
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.05, max_delay_s=0.1),
            retryable=(JobIncompleteError, OSError),
            describe="artifact composition",
        )
        with self._compose_lock:
            self._compose_cache[memo_key] = texts
        return texts

    def metrics_text(self) -> str:
        """The Prometheus exposition: this process's registry + worker snapshots.

        The uptime gauge is refreshed at scrape time; external workers'
        counters arrive via the snapshot files they publish on the liveness
        cadence (snapshots from this pid are skipped — embedded worker
        threads already share the process registry).
        """
        from repro.obs.metrics import registry

        registry().gauge("repro_uptime_seconds").set(time.time() - self.started_at)
        return render_merged(self.store.root)

    def _config_doc(self) -> Dict[str, Any]:
        """The resolved runtime configuration an operator needs at a glance."""
        import repro

        chaos = getattr(self.httpd, "chaos", None)
        return {
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "chaos_profile": chaos.profile.canonical if chaos is not None else None,
            "trace_mode": trace_mode(),
        }

    def health(self) -> Dict[str, Any]:
        """The health document: queue depth, heartbeats, and supervision."""
        pending = self.jobs.pending_jobs()
        workers = list_workers(self.store.root)
        doc = {
            "ok": True,
            "queue_depth": len(pending),
            "workers": workers,
            "workers_alive": sum(1 for w in workers if w.get("alive")),
            "workers_stale": sum(1 for w in workers if w.get("stale")),
            "lease_ttl_s": self.ttl_s,
            **self._config_doc(),
        }
        if self.supervisor is not None:
            doc["supervisor"] = self.supervisor.stats()
        return doc

    def stats(self) -> Dict[str, Any]:
        """The stats document: store counters, lease counts, job states."""
        store_stats = self.store.stats()
        jobs = self.jobs.list_jobs()
        states: Dict[str, int] = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        computed = cached = retries = 0
        quarantined_cells = 0
        for job in jobs:
            status = self.jobs.status(job["id"])
            if status is None:
                continue
            states[status["state"]] = states.get(status["state"], 0) + 1
            computed += status["cells"]["computed"]
            cached += status["cells"]["cached"]
            retries += status["cells"].get("retries", 0)
            quarantined_cells += len(status.get("quarantined", ()))
        total_cells = computed + cached
        doc = {
            "store": store_stats,
            "jobs": {"total": len(jobs), **states},
            "cells": {
                "computed": computed,
                "cached": cached,
                "cache_hit_rate": (cached / total_cells) if total_cells else None,
                "retries": retries,
                "quarantined": quarantined_cells,
            },
            "reclaims": sum(w.leases.reclaims for w in self.workers),
            "config": self._config_doc(),
        }
        if self.supervisor is not None:
            doc["supervisor"] = self.supervisor.stats()
        chaos = getattr(self.httpd, "chaos", None)
        if chaos is not None:
            doc["chaos"] = {
                "profile": chaos.profile.canonical,
                "injected": dict(chaos.injected),
            }
        return doc

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        """The service base URL (the actually bound port, so port 0 works)."""
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ReproServer":
        """Serve in a background thread and start the supervised workers."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        if self.supervisor is not None:
            self.supervisor.start()
        return self

    def stop(self) -> None:
        """Shut down: stop workers, then the HTTP loop (idempotent)."""
        if self.supervisor is not None:
            self.supervisor.stop()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self) -> None:
        """Foreground mode for the CLI: start, then block until interrupted."""
        self.start()
        try:
            while True:
                if self._thread is not None:
                    self._thread.join(timeout=1.0)
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.stop()
