"""Cell leases: atomic, expiring claims over result-store keys.

The sweep service shards a grid across N workers — on one machine or several
— through nothing but the shared cache root: before computing a cell, a
worker *claims* it by creating a lease file next to the cell's (future)
result record (:meth:`~repro.analysis.store.ResultStore.lease_path_for`).
Lease creation is atomic (hard-link publication of a fully written document,
``O_CREAT | O_EXCL`` fallback), so exactly one worker wins a free key; the
winner renews a heartbeat while computing, and everyone else either waits for
the result to appear or — once the lease's deadline passes without renewal —
reclaims the key and retries the cell.  That is what turns a crashed worker's
cells into *retried* cells instead of lost ones.

State machine of one key's lease::

    (free) --acquire--> held(owner, deadline)
      held --renew-----> held(owner, deadline')          (heartbeat, owner only)
      held --release---> (free)                          (owner only)
      held --deadline passes--> expired
      expired --reclaim (single winner via rename)--> (free) --acquire--> held'

Safety argument (see docs/architecture.md for the long form):

* **At most one holder per key** while no deadline has passed: creation is
  atomic-exclusive, and reclaim's first step renames the expired lease file —
  a rename only one contender can win — before the key becomes acquirable.
* **Progress**: a holder that stops renewing (crash, kill -9, partition)
  loses the key after at most one TTL; every waiter polls and one of them
  reclaims.
* **Worst case is duplicated work, never wrong results**: a holder paused
  longer than its TTL (GC pause, swap storm) can overlap with the reclaimer,
  but cells are deterministic and result-store writes are atomic, so both
  commit byte-identical payloads.

Timestamps are wall-clock (``time.time()``): the shared filesystem is the
only channel between workers on different machines, so deadlines must be
meaningful across hosts.  Keep clock skew well under the TTL
(``REPRO_LEASE_TTL_S``, default 30 s) — with NTP-disciplined clocks the
margin is four orders of magnitude.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set

from repro.analysis.store import ResultStore, lease_ttl_seconds
from repro.obs.metrics import inc as metrics_inc
from repro.serve.chaos import active_chaos

#: Format tag inside lease documents (independent of the record format).
LEASE_FORMAT: int = 1


def default_owner_id() -> str:
    """A worker identity unique across hosts, processes, and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(2)}"


@dataclass(frozen=True)
class LeaseRecord:
    """One parsed lease file: who holds the key and until when."""

    key: str
    owner: str
    acquired_at: float
    deadline: float
    renewals: int = 0

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline has passed (no renewal arrived in time)."""
        return self.deadline < (time.time() if now is None else now)


class LeaseStore:
    """Claim, renew, release, and reclaim leases under one cache root.

    One instance per worker: it carries the worker's ``owner`` identity and
    TTL.  All mutation is by whole-file replacement (write temp, publish
    atomically), so readers never observe a torn document — and the one
    unavoidable torn state, a temp file caught before publication, is handled
    by the store's mtime+TTL grace rule, never by quarantine.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        owner: Optional[str] = None,
        ttl_s: Optional[float] = None,
    ) -> None:
        self.store = ResultStore(root)
        self.root = self.store.root
        self.owner = owner if owner is not None else default_owner_id()
        self.ttl_s = float(ttl_s) if ttl_s is not None else lease_ttl_seconds()
        #: Expired leases this owner reclaimed (surfaced by ``/stats``).
        self.reclaims = 0

    # -- paths / parsing -------------------------------------------------------

    def lease_path(self, key: str) -> str:
        """The lease file of a result-store key."""
        return self.store.lease_path_for(key)

    def peek(self, key: str) -> Optional[LeaseRecord]:
        """The current lease of a key, or ``None`` (absent or unreadable)."""
        return self._read(self.lease_path(key))

    @staticmethod
    def _read(path: str) -> Optional[LeaseRecord]:
        """Parse one lease file; any problem reads as ``None`` (never deletes)."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            return LeaseRecord(
                key=doc["key"],
                owner=doc["owner"],
                acquired_at=float(doc["acquired_at"]),
                deadline=float(doc["deadline"]),
                renewals=int(doc.get("renewals", 0)),
            )
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def _document(self, key: str, now: float, renewals: int, acquired_at: float) -> bytes:
        """The serialized lease document for one (re)write."""
        doc = {
            "format": LEASE_FORMAT,
            "key": key,
            "owner": self.owner,
            "acquired_at": acquired_at,
            "deadline": now + self.ttl_s,
            "renewals": renewals,
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    # -- acquire ---------------------------------------------------------------

    def acquire(self, key: str) -> bool:
        """Try to claim a key; ``True`` iff this owner now holds its lease.

        Exactly one contender succeeds on a free key.  An expired lease (or
        an unreadable one older than the TTL) is reclaimed first — the
        reclaim itself is single-winner — and then re-contended.  ``False``
        means someone else holds a live lease (or just won the reclaim race);
        the caller polls the store and retries later.
        """
        path = self.lease_path(key)
        for _ in range(8):  # bounded: each loop either claims, loses, or reclaims
            if self._try_create(path, key):
                return True
            record = self._read(path)
            now = time.time()
            if record is not None:
                if record.owner == self.owner and not record.expired(now):
                    return True  # re-entrant: we already hold it
                if not record.expired(now):
                    return False
            else:
                # Unreadable or vanished.  Vanished: retry the create.  A
                # half-written document gets the mtime+TTL grace period —
                # its writer is alive until proven otherwise.
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue
                if mtime + self.ttl_s >= now:
                    return False
            if not self._reclaim(path):
                return False  # another contender won the reclaim
        return False

    def _try_create(self, path: str, key: str) -> bool:
        """Atomically publish a fresh lease; ``False`` if the key is claimed.

        The document is fully written to a temp file first and published with
        ``os.link`` (atomic, fails if the target exists), so no reader ever
        sees a partial document under the lease name.  Filesystems without
        hard links fall back to ``O_CREAT | O_EXCL`` — still single-winner,
        with the (tiny) torn-write window covered by the grace rule.
        """
        now = time.time()
        blob = self._document(key, now, renewals=0, acquired_at=now)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}.{secrets.token_hex(2)}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
            try:
                os.link(tmp, path)
                self._maybe_tear(path, key, blob)
                return True
            except FileExistsError:
                return False
            except OSError:
                # No hard-link support: exclusive create, then write.
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    return False
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                self._maybe_tear(path, key, blob)
                return True
        finally:
            try:
                os.remove(tmp)
            except OSError:
                pass

    def _maybe_tear(self, path: str, key: str, blob: bytes) -> None:
        """Chaos hook: maybe truncate the lease document we just published.

        Models a worker dying mid-publish on a filesystem without atomic
        hard-link semantics.  Drawn only after a *successful* create — lost
        creation races consume no draws, so the injected schedule is a pure
        function of which keys get claimed, not of race timing.  The torn
        document exercises the mtime+TTL grace rule: unreadable leases stay
        live until the grace lapses, then lose to a single-winner reclaim.
        (Our own renewals fail too — the heartbeat reports the key lost, and
        the idempotent result write keeps the duplicate harmless.)
        """
        chaos = active_chaos(self.root)
        if chaos is not None and chaos.torn_lease(key):
            try:
                with open(path, "wb") as fh:
                    fh.write(blob[: max(1, len(blob) // 3)])
            except OSError:
                pass

    def _reclaim(self, path: str) -> bool:
        """Remove an expired lease; ``True`` iff *this* contender removed it.

        The single-winner step: rename the corpse to a unique tombstone.  Of
        all contenders racing the same expired lease, exactly one rename
        succeeds; the losers return ``False`` and fall back to polling.  The
        tombstone is deleted immediately (and ``gc`` reaps any left behind by
        a reclaimer that crashed in between).
        """
        tomb = path + f".reclaim.{os.getpid()}.{secrets.token_hex(2)}"
        try:
            os.rename(path, tomb)
        except OSError:
            return False
        self.reclaims += 1
        metrics_inc("repro_lease_reclaims_total")
        try:
            os.remove(tomb)
        except OSError:
            pass
        return True

    # -- renew / release -------------------------------------------------------

    def renew(self, key: str) -> bool:
        """Extend our lease's deadline; ``False`` means the lease was lost.

        Only the current on-disk owner may renew.  A ``False`` return tells
        the heartbeat that the key was reclaimed from under us (we were
        paused past the TTL); the computation may finish anyway — its result
        write is idempotent — but the duplicate is counted, not hidden.
        """
        path = self.lease_path(key)
        record = self._read(path)
        if record is None or record.owner != self.owner:
            return False
        now = time.time()
        blob = self._document(
            key, now, renewals=record.renewals + 1, acquired_at=record.acquired_at
        )
        tmp = path + f".tmp.{os.getpid()}.{secrets.token_hex(2)}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False

    def release(self, key: str) -> bool:
        """Drop our lease on a key; ``True`` iff we held it and removed it."""
        path = self.lease_path(key)
        record = self._read(path)
        if record is None or record.owner != self.owner:
            return False
        try:
            os.remove(path)
        except OSError:
            return False
        return True


class LeaseHeartbeat:
    """A daemon thread renewing every active lease at a fraction of the TTL.

    Workers wrap each cell computation in :meth:`guard`, which registers the
    key for renewal and deregisters it when the computation ends.  Renewal
    failures (the lease was reclaimed while we were paused) are collected in
    :attr:`lost` so the drain loop can report duplicated work honestly.
    """

    def __init__(self, leases: LeaseStore, interval_s: Optional[float] = None) -> None:
        self.leases = leases
        #: Renew at TTL/3 by default: two missed beats still leave headroom.
        self.interval_s = (
            float(interval_s) if interval_s is not None else max(0.05, leases.ttl_s / 3.0)
        )
        self.lost: Set[str] = set()
        self._active: Set[str] = set()
        self._stalled: Set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Start the renewal thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the renewal thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        """Renewal loop: beat every interval until stopped."""
        while not self._stop.wait(self.interval_s):
            self.beat()

    def beat(self) -> None:
        """Renew every active lease once (also callable inline from tests).

        Stalled keys (chaos-injected heartbeat failure) are skipped: their
        leases age toward expiry exactly as if this worker had frozen.
        """
        with self._lock:
            keys = [k for k in self._active if k not in self._stalled]
        for key in keys:
            if not self.leases.renew(key):
                with self._lock:
                    if key in self._active:  # still computing -> genuinely lost
                        self.lost.add(key)

    @contextmanager
    def guard(self, key: str, stall: bool = False) -> Iterator[None]:
        """Keep ``key``'s lease renewed for the duration of the block.

        With ``stall=True`` the key is registered but never renewed — the
        chaos engine's stalled-heartbeat fault.  One renewal is attempted at
        guard exit so a lease that expired (and was possibly reclaimed by a
        peer) is still reported in :attr:`lost` rather than silently dropped.
        """
        with self._lock:
            self._active.add(key)
            if stall:
                self._stalled.add(key)
        try:
            yield
        finally:
            with self._lock:
                self._active.discard(key)
                was_stalled = key in self._stalled
                self._stalled.discard(key)
            if was_stalled and not self.leases.renew(key):
                with self._lock:
                    self.lost.add(key)


def scan_leases(root: Optional[str] = None) -> Dict[str, int]:
    """Count live and expired leases under a cache root (for stats endpoints)."""
    store = ResultStore(root)
    stats = store.stats()
    return {"live": stats["leases_live"], "expired": stats["leases_expired"]}
