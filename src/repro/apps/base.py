"""Common machinery for benchmark task-graph generators."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.runtime.graph import TaskGraph
from repro.runtime.runtime import TaskRuntime
from repro.util.units import bytes_to_mib


@dataclass(frozen=True)
class BenchmarkInfo:
    """A Table I row: what the benchmark computes and how it is blocked."""

    name: str
    description: str
    problem: str
    block: str
    distributed: bool
    input_bytes: float
    n_tasks: int

    @property
    def input_mib(self) -> float:
        """Benchmark input size in MiB (the basis of the application FIT)."""
        return bytes_to_mib(self.input_bytes)


class Benchmark(abc.ABC):
    """Base class of all Table I benchmark generators.

    Subclasses configure themselves with Table I problem/block sizes by default
    (``scale=1.0``); a smaller scale shrinks the problem while preserving the
    task structure, which is what the unit tests and the quick benchmark
    presets use.
    """

    #: Registry name, e.g. ``"cholesky"``.
    name: str = "benchmark"
    #: Human-readable description for the Table I reproduction.
    description: str = ""
    #: Whether the benchmark belongs to the distributed group of Table I.
    distributed: bool = False

    def __init__(self) -> None:
        self._graph_cache: Optional[TaskGraph] = None

    # -- to be provided by subclasses ---------------------------------------------

    @abc.abstractmethod
    def _build(self, runtime: TaskRuntime) -> None:
        """Submit every task of the benchmark into ``runtime``."""

    @property
    @abc.abstractmethod
    def input_bytes(self) -> float:
        """Size of the benchmark's input data (Section IV-A's benchmark FIT basis)."""

    @property
    @abc.abstractmethod
    def problem_label(self) -> str:
        """Human-readable problem size (Table I's middle column)."""

    @property
    @abc.abstractmethod
    def block_label(self) -> str:
        """Human-readable block size (Table I's right column)."""

    # -- shared behaviour ------------------------------------------------------------

    def build_graph(self, use_cache: bool = True) -> TaskGraph:
        """Generate the benchmark's task graph (cached after the first call)."""
        if use_cache and self._graph_cache is not None:
            return self._graph_cache
        runtime = TaskRuntime(n_workers=1, config=None)
        runtime.config.graph_name = self.name
        runtime.config.record_submissions = False
        self._build(runtime)
        graph = runtime.graph
        if use_cache:
            self._graph_cache = graph
        return graph

    def info(self, n_tasks: Optional[int] = None) -> BenchmarkInfo:
        """The benchmark's Table I row, with the generated task count.

        ``n_tasks`` lets a caller that already knows the count (e.g. from a
        compiled graph) skip generating the task graph.
        """
        if n_tasks is None:
            n_tasks = len(self.build_graph())
        return BenchmarkInfo(
            name=self.name,
            description=self.description,
            problem=self.problem_label,
            block=self.block_label,
            distributed=self.distributed,
            input_bytes=self.input_bytes,
            n_tasks=n_tasks,
        )

    def functional_runtime(self, n_workers: int = 2, hook=None) -> TaskRuntime:
        """The :class:`TaskRuntime` a functional variant executes on.

        ``n_workers`` is a free performance knob: functional results are
        worker-count independent by construction.  The runtime's executor
        pre-decides replication in submission order (``prepare_graph``), the
        fault injector draws from streams keyed by ``(root_seed, task_id,
        execution_index)``, and the replication protocol snapshots/restores
        only the byte regions a task declares — so neither the injected-fault
        multiset nor the recovered arrays depend on thread scheduling.
        """
        return TaskRuntime(n_workers=n_workers, hook=hook)

    def functional_run(self, n_workers: int = 2, hook=None):
        """Execute a scaled-down functional variant through the runtime.

        Only the shared-memory benchmarks provide functional variants; the
        distributed ones are simulation-only (see DESIGN.md).
        """
        raise NotImplementedError(
            f"benchmark {self.name!r} does not provide a functional variant"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.problem_label}, block {self.block_label})"
