"""FFT: blocked 2D Fast Fourier Transform (Table I).

Paper configuration: 16384 x 16384 complex doubles, blocked into row panels of
16384 x 128.  The classical transpose-based 2D FFT gives four stages:

1. ``fft_rows`` on every panel,
2. ``transpose`` of the panel-decomposed matrix (every output panel reads every
   input panel),
3. ``twiddle_fft`` on every transposed panel,
4. ``transpose_back``.

All tasks are coarse (each panel is 32 MiB of complex doubles) and there are
only a few hundred of them — the "coarse, low task count" end of the paper's
granularity spectrum.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime

COMPLEX_DOUBLE = kernels.COMPLEX_DOUBLE


class FFTBenchmark(Benchmark):
    """Blocked transpose-based 2D FFT."""

    name = "fft"
    description = "Fast Fourier Transform"
    distributed = False

    def __init__(
        self,
        matrix_size: int = 16384,
        panel_rows: int = 128,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if matrix_size % panel_rows:
            raise ValueError("matrix_size must be a multiple of panel_rows")
        self.matrix_size = matrix_size
        self.panel_rows = panel_rows
        self.n_panels = matrix_size // panel_rows
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "FFTBenchmark":
        """Table I at ``scale=1``; smaller scales shrink the panel count."""
        n_panels = max(4, int(round(128 * scale)))
        return cls(matrix_size=n_panels * 128, panel_rows=128)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        return float(self.matrix_size) ** 2 * COMPLEX_DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Matrix size {self.matrix_size}x{self.matrix_size} complex doubles"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.matrix_size}x{self.panel_rows}"

    @property
    def panel_bytes(self) -> float:
        """Bytes of one row panel."""
        return float(self.matrix_size) * self.panel_rows * COMPLEX_DOUBLE

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the staged blocked FFT: butterfly stages with transposes between."""
        n = self.n_panels
        panel_bytes = self.panel_bytes
        tile_bytes = panel_bytes / n

        a_panels = {p: runtime.register_region(f"A[{p}]", panel_bytes) for p in range(n)}
        b_panels = {p: runtime.register_region(f"B[{p}]", panel_bytes) for p in range(n)}

        rows_per_panel = self.panel_rows
        fft_flops = rows_per_panel * kernels.fft_flops(self.matrix_size)
        # FFTs sustain a fraction of peak floating-point throughput (strided
        # access, butterflies); 20% of peak is a common rule of thumb.
        t_fft = kernels.duration_for_flops(fft_flops, 0.2 * self.core_flops)
        # Transposes are memory-bound: a small compute estimate plus a large
        # memory footprint which the simulator's bandwidth model stretches.
        t_transpose = kernels.duration_for_flops(panel_bytes / 8.0, self.core_flops)

        def stage_fft(panels: Dict[int, object], task_type: str) -> None:
            for p in range(n):
                runtime.submit(
                    task_type=task_type,
                    inout=[panels[p].whole()],
                    duration_s=t_fft,
                    metadata={"panel": p},
                )

        def stage_transpose(src: Dict[int, object], dst: Dict[int, object], task_type: str) -> None:
            # Output panel p gathers the p-th tile of every source panel.
            for p in range(n):
                tiles = [
                    src[q].region(offset=p * tile_bytes, size_bytes=tile_bytes)
                    for q in range(n)
                ]
                runtime.submit(
                    task_type=task_type,
                    in_=tiles,
                    out=[dst[p].whole()],
                    duration_s=t_transpose,
                    metadata={"panel": p, "mem_bytes": 2.0 * panel_bytes},
                )

        stage_fft(a_panels, "fft_rows")
        stage_transpose(a_panels, b_panels, "transpose")
        stage_fft(b_panels, "twiddle_fft")
        stage_transpose(b_panels, a_panels, "transpose_back")
