"""Matrix Multiplication: blocked ``C += A @ B`` using CBLAS tiles (Table I, distributed).

Paper configuration: 9216 x 9216 doubles, 1024 x 1024 blocks.  The benchmark
repeats the multiplication for a configurable number of iterations (the paper
reports 25K-48K fine-grained tasks for Matmul, which the single-pass 9x9x9
tile loop cannot produce on its own).  Each iteration additionally runs one
``gather_result`` task per block-row that touches the whole row — these few
large tasks are why the paper observes a visible gap between the fraction of
*tasks* replicated and the fraction of *computation time* replicated for
Matmul.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.distributed.mapping import BlockCyclicMapping
from repro.runtime.runtime import TaskRuntime

DOUBLE = kernels.DOUBLE


class MatmulBenchmark(Benchmark):
    """Blocked distributed matrix multiplication."""

    name = "matmul"
    description = "Matrix Multiplication using CBLAS"
    distributed = True

    def __init__(
        self,
        matrix_size: int = 9216,
        block_size: int = 1024,
        iterations: int = 35,
        n_nodes: int = 64,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        self.matrix_size = matrix_size
        self.block_size = block_size
        self.n_blocks = matrix_size // block_size
        self.iterations = iterations
        self.n_nodes = n_nodes
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "MatmulBenchmark":
        """Table I at ``scale=1``; smaller scales reduce the iteration count."""
        iterations = max(1, int(round(35 * scale)))
        n_nodes = max(4, int(round(64 * min(1.0, scale * 4))))
        return cls(iterations=iterations, n_nodes=n_nodes)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        # A and B are inputs; C is the output.
        return 2.0 * float(self.matrix_size) ** 2 * DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Matrix size {self.matrix_size}x{self.matrix_size} doubles"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_size}x{self.block_size}"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the blocked matrix-multiply iterations plus result gathers."""
        nb = self.n_blocks
        bs = self.block_size
        block_bytes = float(bs * bs * DOUBLE)
        grid_rows = max(1, int(np.sqrt(self.n_nodes)))
        while self.n_nodes % grid_rows:
            grid_rows -= 1
        mapping = BlockCyclicMapping(grid_rows, self.n_nodes // grid_rows)

        def make_blocks(name: str) -> Dict[Tuple[int, int], object]:
            return {
                (i, j): runtime.register_region(f"{name}[{i}][{j}]", block_bytes)
                for i in range(nb)
                for j in range(nb)
            }

        a = make_blocks("A")
        b = make_blocks("B")

        # Each node further tiles its C-block update into quadrants so its 16
        # cores have concurrent work (nested tiling, as the OmpSs kernel does).
        splits = 4
        quad_bytes = block_bytes / splits
        t_gemm = kernels.duration_for_flops(kernels.gemm_flops(bs) / splits, self.core_flops)
        row_bytes = nb * block_bytes
        t_gather = kernels.duration_for_flops(row_bytes / 8.0, self.core_flops)

        for it in range(self.iterations):
            # Every repetition multiplies into a fresh result matrix, so the
            # iterations are independent of each other.
            c = make_blocks(f"C{it}")
            for i in range(nb):
                for j in range(nb):
                    owner = mapping.owner(i, j)
                    for k in range(nb):
                        for q in range(splits):
                            runtime.submit(
                                task_type="gemm",
                                in_=[a[(i, k)].whole(), b[(k, j)].whole()],
                                inout=[
                                    c[(i, j)].region(
                                        offset=q * quad_bytes, size_bytes=quad_bytes
                                    )
                                ],
                                duration_s=t_gemm,
                                node=owner,
                                metadata={"iter": it, "i": i, "j": j, "k": k, "q": q},
                            )
            for i in range(nb):
                runtime.submit(
                    task_type="gather_result",
                    in_=[c[(i, j)].whole() for j in range(nb)],
                    duration_s=t_gather,
                    node=mapping.owner(i, 0),
                    metadata={"iter": it, "i": i, "mem_bytes": row_bytes},
                )

    # -- functional mode --------------------------------------------------------------

    def functional_run(self, n_workers: int = 2, hook=None, matrix_size: int = 128, block_size: int = 32):
        """Blocked ``C = A @ B`` with real NumPy kernels.

        Returns ``(result, c_blocks, reference)`` where ``reference`` is the
        dense product computed directly with NumPy.
        """
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        nb = matrix_size // block_size
        rng = np.random.default_rng(5)
        a_dense = rng.standard_normal((matrix_size, matrix_size))
        b_dense = rng.standard_normal((matrix_size, matrix_size))
        reference = a_dense @ b_dense

        runtime = self.functional_runtime(n_workers=n_workers, hook=hook)

        def register(name, dense, zero=False):
            handles = {}
            for i in range(nb):
                for j in range(nb):
                    blk = (
                        np.zeros((block_size, block_size))
                        if zero
                        else np.ascontiguousarray(
                            dense[
                                i * block_size : (i + 1) * block_size,
                                j * block_size : (j + 1) * block_size,
                            ]
                        )
                    )
                    handles[(i, j)] = runtime.register_array(f"{name}[{i}][{j}]", blk)
            return handles

        a = register("A", a_dense)
        b = register("B", b_dense)
        c = register("C", None, zero=True)

        for i in range(nb):
            for j in range(nb):
                for k in range(nb):
                    runtime.submit(
                        kernels.kernel_matmul,
                        task_type="gemm",
                        in_=[a[(i, k)].whole(), b[(k, j)].whole()],
                        inout=[c[(i, j)].whole()],
                    )
        result = runtime.taskwait()
        c_blocks = {key: h.storage for key, h in c.items()}
        return result, c_blocks, reference
