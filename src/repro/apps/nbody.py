"""Nbody: all-pairs gravitational interaction (Table I, distributed).

Paper configuration: 65536 bodies; the block size depends on the node count
(each node owns one block of bodies).  Per time step, every block computes the
forces exerted on it by every block (one coarse task per block pair) and then
integrates its bodies.  Force tasks reading a remote block generate inter-node
communication in the simulator.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime

#: Bytes per body: position + velocity + mass as doubles (7 x 8 rounded to 64).
BODY_BYTES = 64


class NbodyBenchmark(Benchmark):
    """All-pairs N-body interaction, block-distributed across nodes."""

    name = "nbody"
    description = "Interaction between N bodies"
    distributed = True

    def __init__(
        self,
        n_bodies: int = 65536,
        n_nodes: int = 64,
        n_blocks: int = 64,
        timesteps: int = 4,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if n_bodies % n_blocks:
            raise ValueError("n_bodies must be a multiple of n_blocks")
        self.n_bodies = n_bodies
        self.n_nodes = n_nodes
        self.n_body_blocks = n_blocks
        self.block_bodies = n_bodies // n_blocks
        self.timesteps = timesteps
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "NbodyBenchmark":
        """Table I at ``scale=1``; smaller scales reduce nodes and time steps."""
        import math

        n_nodes = max(4, int(round(64 * scale)))
        # Keep the block count a power of two so it always divides 65536 bodies.
        n_blocks = int(2 ** round(math.log2(max(8, 64 * scale))))
        timesteps = max(1, int(round(4 * scale)))
        return cls(n_bodies=65536, n_nodes=n_nodes, n_blocks=n_blocks, timesteps=timesteps)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        return float(self.n_bodies) * BODY_BYTES

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Array size {self.n_bodies} bodies"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_bodies} bodies per block ({self.n_nodes} nodes)"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the timestep loop: all-pairs force tasks, then position updates."""
        nb = self.n_body_blocks
        block_bytes = float(self.block_bodies * BODY_BYTES)
        partial_force_bytes = float(self.block_bodies * 3 * 8)

        positions = {
            i: runtime.register_region(f"bodies[{i}]", block_bytes) for i in range(nb)
        }
        # Each block accumulates one partial-force buffer per source block so
        # the nb x nb force tasks are independent (a reduction pattern).
        forces = {
            i: runtime.register_region(f"forces[{i}]", nb * partial_force_bytes)
            for i in range(nb)
        }

        # ~20 flops per interacting pair.
        t_forces = kernels.duration_for_flops(
            20.0 * self.block_bodies * self.block_bodies, self.core_flops
        )
        t_update = kernels.duration_for_flops(
            12.0 * self.block_bodies + 3.0 * self.block_bodies * nb, self.core_flops
        )

        for step in range(self.timesteps):
            for i in range(nb):
                for j in range(nb):
                    partial = forces[i].region(
                        offset=j * partial_force_bytes, size_bytes=partial_force_bytes
                    )
                    runtime.submit(
                        task_type="forces",
                        in_=[positions[i].whole(), positions[j].whole()],
                        out=[partial],
                        duration_s=t_forces,
                        node=i % self.n_nodes,
                        metadata={"step": step, "i": i, "j": j},
                    )
            for i in range(nb):
                runtime.submit(
                    task_type="update",
                    in_=[forces[i].whole()],
                    inout=[positions[i].whole()],
                    duration_s=t_update,
                    node=i % self.n_nodes,
                    metadata={"step": step, "i": i},
                )
