"""Pingpong: computation and communication between pairs of processes (Table I).

Paper configuration: arrays of 65536 doubles, 1024-element blocks.  Nodes are
paired; each iteration a node computes on its blocks, sends them to its
partner, the partner computes on them and sends them back.  Tasks are small
and numerous, and every other dependency crosses nodes — the benchmark mostly
measures how well the runtime (and replication) tolerates communication.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime

DOUBLE = kernels.DOUBLE


class PingpongBenchmark(Benchmark):
    """Pairwise compute + exchange between nodes."""

    name = "pingpong"
    description = "Computation and communication between pairs of processes"
    distributed = True

    def __init__(
        self,
        array_elements: int = 65536,
        block_elements: int = 1024,
        n_nodes: int = 64,
        iterations: int = 200,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if array_elements % block_elements:
            raise ValueError("array_elements must be a multiple of block_elements")
        if n_nodes % 2:
            raise ValueError("pingpong needs an even number of nodes")
        self.array_elements = array_elements
        self.block_elements = block_elements
        self.n_blocks = array_elements // block_elements
        self.n_nodes = n_nodes
        self.iterations = iterations
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "PingpongBenchmark":
        """Table I at ``scale=1``; smaller scales reduce nodes and iterations."""
        n_nodes = max(4, 2 * int(round(32 * min(1.0, scale * 4))))
        iterations = max(2, int(round(200 * scale)))
        return cls(n_nodes=n_nodes, iterations=iterations)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        # One array per pair of nodes.
        return (self.n_nodes / 2) * self.array_elements * DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Array size {self.array_elements} doubles"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_elements}"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit alternating ping/pong compute tasks between node pairs."""
        block_bytes = float(self.block_elements * DOUBLE)
        n_pairs = self.n_nodes // 2
        # Each pair ping-pongs a subset of the blocks to keep the task count in
        # the paper's "fine and numerous" regime without exploding memory.
        blocks_per_pair = max(1, self.n_blocks // n_pairs)

        # Each side performs a substantial computation on the block before
        # bouncing it back (the benchmark overlaps computation and
        # communication); a few hundred flops per element.
        t_compute = kernels.duration_for_flops(500.0 * self.block_elements, self.core_flops)

        for pair in range(n_pairs):
            node_a = 2 * pair
            node_b = 2 * pair + 1
            buf = runtime.register_region(f"buffer[{pair}]", blocks_per_pair * block_bytes)
            for it in range(self.iterations):
                for blk in range(blocks_per_pair):
                    region = buf.region(offset=blk * block_bytes, size_bytes=block_bytes)
                    runtime.submit(
                        task_type="ping_compute",
                        inout=[region],
                        duration_s=t_compute,
                        node=node_a,
                        metadata={"pair": pair, "iter": it, "block": blk},
                    )
                    runtime.submit(
                        task_type="pong_compute",
                        inout=[region],
                        duration_s=t_compute,
                        node=node_b,
                        metadata={"pair": pair, "iter": it, "block": blk},
                    )
