"""Benchmark task-graph generators (the paper's Table I applications).

Shared-memory benchmarks: SparseLU, Cholesky, FFT, Perlin Noise, Stream.
Distributed benchmarks: Nbody, Matrix Multiplication, Pingpong, Linpack (HPL).

Every benchmark produces a :class:`~repro.runtime.graph.TaskGraph` whose task
types, dependency structure, block sizes and argument sizes follow the Table I
configurations (``scale=1.0``); smaller scales shrink the problem for tests
and quick runs.  The shared-memory benchmarks additionally provide a
*functional* mode that executes real NumPy kernels through the runtime, which
the integration tests and examples use to exercise SDC detection and recovery
end to end.
"""

from repro.apps.base import Benchmark, BenchmarkInfo
from repro.apps.registry import (
    all_benchmark_names,
    create_benchmark,
    distributed_benchmark_names,
    shared_memory_benchmark_names,
    workload_family_names,
)
from repro.apps.sparselu import SparseLUBenchmark
from repro.apps.cholesky import CholeskyBenchmark
from repro.apps.fft import FFTBenchmark
from repro.apps.perlin import PerlinNoiseBenchmark
from repro.apps.stream import StreamBenchmark
from repro.apps.nbody import NbodyBenchmark
from repro.apps.matmul import MatmulBenchmark
from repro.apps.pingpong import PingpongBenchmark
from repro.apps.linpack import LinpackBenchmark

__all__ = [
    "Benchmark",
    "BenchmarkInfo",
    "CholeskyBenchmark",
    "FFTBenchmark",
    "LinpackBenchmark",
    "MatmulBenchmark",
    "NbodyBenchmark",
    "PerlinNoiseBenchmark",
    "PingpongBenchmark",
    "SparseLUBenchmark",
    "StreamBenchmark",
    "all_benchmark_names",
    "create_benchmark",
    "distributed_benchmark_names",
    "shared_memory_benchmark_names",
    "workload_family_names",
]
