"""Perlin Noise: noise generation over an array of pixels (Table I).

Paper configuration: 65536 pixels, 2048-pixel blocks.  The benchmark generates
noise frame after frame (the paper's motivation is motion-picture realism), so
the task stream is a long sequence of fine-grained per-block tasks — the
"many fine tasks" end of the paper's granularity spectrum — plus one
frame-setup task per frame that touches the whole pixel buffer (the "few tasks
whose reliability impact is much higher" the paper calls out for Perlin).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime

#: Bytes per pixel (RGBA floats in the BSC kernel).
PIXEL_BYTES = 4


class PerlinNoiseBenchmark(Benchmark):
    """Frame-by-frame Perlin noise generation over a pixel buffer."""

    name = "perlin"
    description = "Noise generation to improve realism in motion pictures"
    distributed = False

    def __init__(
        self,
        n_pixels: int = 65536,
        block_size: int = 2048,
        frames: int = 800,
        setup_every: int = 100,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if n_pixels % block_size:
            raise ValueError("n_pixels must be a multiple of block_size")
        if frames < 1:
            raise ValueError("frames must be >= 1")
        self.n_pixels = n_pixels
        self.block_size = block_size
        self.n_blocks = n_pixels // block_size
        self.frames = frames
        self.setup_every = max(1, setup_every)
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "PerlinNoiseBenchmark":
        """Table I at ``scale=1``; smaller scales reduce the frame count."""
        frames = max(2, int(round(800 * scale)))
        return cls(frames=frames)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        return float(self.n_pixels) * PIXEL_BYTES

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Array of pixels with size of {self.n_pixels}"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_size}"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit per-frame setup tasks followed by independent noise blocks."""
        block_bytes = float(self.block_size * PIXEL_BYTES)
        buffer_handle = runtime.register_region("pixels", self.input_bytes)
        gradient_handle = runtime.register_region("gradients", 256 * 2 * 8)

        # Multi-octave gradient noise costs a few hundred flops per pixel.
        t_block = kernels.duration_for_flops(400.0 * self.block_size, self.core_flops)
        t_setup = kernels.duration_for_flops(50.0 * self.n_pixels, self.core_flops)

        for frame in range(self.frames):
            if frame % self.setup_every == 0:
                runtime.submit(
                    task_type="frame_setup",
                    inout=[buffer_handle.whole(), gradient_handle.whole()],
                    duration_s=t_setup,
                    metadata={"frame": frame},
                )
            for b in range(self.n_blocks):
                region = buffer_handle.region(offset=b * block_bytes, size_bytes=block_bytes)
                runtime.submit(
                    task_type="perlin_block",
                    in_=[gradient_handle.whole()],
                    inout=[region],
                    duration_s=t_block,
                    metadata={"frame": frame, "block": b},
                )

    # -- functional mode ----------------------------------------------------------

    def functional_run(self, n_workers: int = 2, hook=None, n_pixels: int = 8192, block_size: int = 1024, frames: int = 4):
        """Generate a few frames of noise with real NumPy kernels.

        Returns ``(result, pixel_array)``.
        """
        if n_pixels % block_size:
            raise ValueError("n_pixels must be a multiple of block_size")
        nb = n_pixels // block_size
        runtime = self.functional_runtime(n_workers=n_workers, hook=hook)
        pixels = np.zeros(n_pixels, dtype=np.float64)
        handle = runtime.register_array("pixels", pixels)
        elem_bytes = pixels.itemsize

        for frame in range(frames):
            for b in range(nb):
                region = handle.region(
                    offset=b * block_size * elem_bytes, size_bytes=block_size * elem_bytes
                )

                def body(buf, lo=b * block_size, hi=(b + 1) * block_size, phase=float(frame)):
                    kernels.kernel_perlin_block(buf[lo:hi], phase)

                runtime.submit(body, task_type="perlin_block", inout=[region])
        result = runtime.taskwait()
        return result, handle.storage
