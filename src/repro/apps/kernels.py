"""Kernel cost formulas and real NumPy kernels for functional mode.

The simulator needs task durations; they are derived from textbook flop counts
and a sustained per-core throughput (see
:class:`~repro.simulator.machine.MachineSpec`).  Functional mode needs actual
kernels operating on NumPy arrays; the small set used by the functional
benchmarks lives here so both tests and examples share one implementation.
"""

from __future__ import annotations

import math

import numpy as np

#: Bytes per double-precision real / complex element.
DOUBLE = 8
COMPLEX_DOUBLE = 16

#: Default sustained per-core throughput used to convert flops to seconds.
DEFAULT_CORE_FLOPS = 10e9


# -- duration estimation --------------------------------------------------------


def duration_for_flops(flops: float, core_flops: float = DEFAULT_CORE_FLOPS) -> float:
    """Seconds to execute ``flops`` floating point operations on one core."""
    if flops < 0:
        raise ValueError(f"flops must be >= 0, got {flops}")
    if core_flops <= 0:
        raise ValueError(f"core_flops must be > 0, got {core_flops}")
    return flops / core_flops


def gemm_flops(m: float, n: float = None, k: float = None) -> float:
    """Flops of a dense matrix multiply ``C += A(mxk) * B(kxn)``."""
    n = m if n is None else n
    k = m if k is None else k
    return 2.0 * m * n * k


def potrf_flops(b: float) -> float:
    """Flops of a blocked Cholesky factorisation of a ``b x b`` tile."""
    return b ** 3 / 3.0


def trsm_flops(b: float) -> float:
    """Flops of a triangular solve against a ``b x b`` tile."""
    return float(b ** 3)


def syrk_flops(b: float) -> float:
    """Flops of a symmetric rank-k update of a ``b x b`` tile."""
    return float(b ** 3)


def getrf_flops(b: float) -> float:
    """Flops of an LU factorisation of a ``b x b`` tile."""
    return 2.0 * b ** 3 / 3.0


def fft_flops(n: float) -> float:
    """Flops of a complex 1D FFT of length ``n`` (5 n log2 n)."""
    if n <= 1:
        return 0.0
    return 5.0 * n * math.log2(n)


# -- real kernels for functional mode --------------------------------------------


def kernel_lu0(diag: np.ndarray) -> None:
    """Unblocked LU factorisation (no pivoting) of a square tile, in place."""
    n = diag.shape[0]
    for k in range(n - 1):
        pivot = diag[k, k]
        if pivot == 0:
            pivot = 1e-300
        diag[k + 1 :, k] /= pivot
        diag[k + 1 :, k + 1 :] -= np.outer(diag[k + 1 :, k], diag[k, k + 1 :])


def kernel_fwd(diag: np.ndarray, col: np.ndarray) -> None:
    """Forward solve of a column tile against the factored diagonal tile."""
    n = diag.shape[0]
    for k in range(n - 1):
        col[k + 1 :, :] -= np.outer(diag[k + 1 :, k], col[k, :])


def kernel_bdiv(diag: np.ndarray, row: np.ndarray) -> None:
    """Backward division of a row tile against the factored diagonal tile."""
    n = diag.shape[0]
    for k in range(n):
        pivot = diag[k, k]
        if pivot == 0:
            pivot = 1e-300
        row[:, k] = (row[:, k] - row[:, :k] @ diag[:k, k]) / pivot


def kernel_bmod(row: np.ndarray, col: np.ndarray, inner: np.ndarray) -> None:
    """Trailing update ``inner -= row @ col`` of SparseLU."""
    inner -= row @ col


def kernel_potrf(tile: np.ndarray) -> None:
    """Cholesky factorisation of a tile, in place (lower triangular)."""
    tile[:] = np.linalg.cholesky(tile)


def kernel_trsm(diag: np.ndarray, tile: np.ndarray) -> None:
    """Triangular solve ``tile = tile * diag^-T`` used by tiled Cholesky."""
    import scipy.linalg as sla

    tile[:] = sla.solve_triangular(diag, tile.T, lower=True).T


def kernel_syrk(col: np.ndarray, diag: np.ndarray) -> None:
    """Symmetric rank-k update ``diag -= col @ col.T``."""
    diag -= col @ col.T


def kernel_gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Dense update ``c -= a @ b.T`` (tiled Cholesky's trailing update)."""
    c -= a @ b.T


def kernel_matmul(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Dense update ``c += a @ b``."""
    c += a @ b


def kernel_stream_copy(src: np.ndarray, dst: np.ndarray) -> None:
    """STREAM copy: ``dst = src``."""
    np.copyto(dst, src)


def kernel_stream_scale(src: np.ndarray, dst: np.ndarray, scalar: float) -> None:
    """STREAM scale: ``dst = scalar * src``."""
    np.multiply(src, scalar, out=dst)


def kernel_stream_add(a: np.ndarray, b: np.ndarray, dst: np.ndarray) -> None:
    """STREAM add: ``dst = a + b``."""
    np.add(a, b, out=dst)


def kernel_stream_triad(a: np.ndarray, b: np.ndarray, dst: np.ndarray, scalar: float) -> None:
    """STREAM triad: ``dst = a + scalar * b``."""
    np.add(a, scalar * b, out=dst)


def kernel_perlin_block(pixels: np.ndarray, phase: float) -> None:
    """A cheap value-noise stand-in for the Perlin noise block kernel.

    The exact noise function does not matter for the reproduction (only the
    task structure and argument sizes do); this kernel is deterministic in the
    pixel index and the phase so replicas agree bit-for-bit.
    """
    idx = np.arange(pixels.size, dtype=np.float64)
    pixels += np.sin(idx * 0.01 + phase) * np.cos(idx * 0.003 - phase)


def kernel_nbody_forces(positions: np.ndarray, others: np.ndarray, forces: np.ndarray) -> None:
    """Accumulate pairwise inverse-square forces of ``others`` on ``positions``."""
    # positions/others: (n, 3); forces: (n, 3)
    for i in range(positions.shape[0]):
        delta = others - positions[i]
        dist2 = np.sum(delta * delta, axis=1) + 1e-9
        forces[i] += np.sum(delta / dist2[:, None] ** 1.5, axis=0)


def kernel_nbody_update(positions: np.ndarray, velocities: np.ndarray, forces: np.ndarray, dt: float) -> None:
    """Leapfrog position/velocity update."""
    velocities += forces * dt
    positions += velocities * dt
    forces[:] = 0.0
