"""SparseLU: blocked LU decomposition of a sparse blocked matrix (Table I).

Paper configuration: 12800 x 12800 doubles, 200 x 200 blocks.  The task types
and dependency pattern follow the BSC Application Repository kernel:

* ``lu0``  — factorise the diagonal block,
* ``fwd``  — forward-solve a block of the pivot row,
* ``bdiv`` — divide a block of the pivot column,
* ``bmod`` — trailing-submatrix update (creates fill-in on empty blocks).

Only non-empty blocks generate work; the initial sparsity pattern is a
deterministic pseudo-random pattern with the configured fill fraction.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime
from repro.util.rng import RngStream

DOUBLE = kernels.DOUBLE


class SparseLUBenchmark(Benchmark):
    """Sparse blocked LU factorisation."""

    name = "sparselu"
    description = "LU decomposition of a sparse blocked matrix"
    distributed = False

    def __init__(
        self,
        matrix_size: int = 12800,
        block_size: int = 200,
        fill_fraction: float = 0.35,
        seed: int = 20,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        if not 0.0 < fill_fraction <= 1.0:
            raise ValueError("fill_fraction must be in (0, 1]")
        self.matrix_size = matrix_size
        self.block_size = block_size
        self.n_blocks = matrix_size // block_size
        self.fill_fraction = fill_fraction
        self.seed = seed
        self.core_flops = core_flops

    # -- scaling ---------------------------------------------------------------------

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "SparseLUBenchmark":
        """Table I at ``scale=1``; smaller scales shrink the block count."""
        nb = max(4, int(round(64 * scale)))
        return cls(matrix_size=nb * 200, block_size=200)

    # -- Table I metadata --------------------------------------------------------------

    @property
    def input_bytes(self) -> float:
        """The (dense-equivalent) input matrix size."""
        return float(self.matrix_size) ** 2 * DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Matrix size {self.matrix_size}x{self.matrix_size} doubles"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_size}x{self.block_size}"

    # -- structure ----------------------------------------------------------------------

    def initial_pattern(self) -> np.ndarray:
        """Deterministic initial block-sparsity pattern (True = non-empty)."""
        rng = RngStream(self.seed)
        nb = self.n_blocks
        pattern = np.zeros((nb, nb), dtype=bool)
        for i in range(nb):
            for j in range(nb):
                if i == j:
                    pattern[i, j] = True
                else:
                    pattern[i, j] = rng.random() < self.fill_fraction
        return pattern

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the sparse LU sweep (lu0/fwd/bdiv/bmod over allocated blocks)."""
        nb = self.n_blocks
        bs = self.block_size
        block_bytes = float(bs * bs * DOUBLE)
        pattern = self.initial_pattern()

        regions: Dict[Tuple[int, int], object] = {}

        def region(i: int, j: int):
            key = (i, j)
            if key not in regions:
                handle = runtime.register_region(f"A[{i}][{j}]", block_bytes)
                regions[key] = handle.whole()
            return regions[key]

        t_lu0 = kernels.duration_for_flops(kernels.getrf_flops(bs), self.core_flops)
        t_fwd = kernels.duration_for_flops(kernels.trsm_flops(bs), self.core_flops)
        t_bdiv = kernels.duration_for_flops(kernels.trsm_flops(bs), self.core_flops)
        t_bmod = kernels.duration_for_flops(kernels.gemm_flops(bs), self.core_flops)

        for k in range(nb):
            runtime.submit(
                task_type="lu0",
                inout=[region(k, k)],
                duration_s=t_lu0,
                metadata={"k": k},
            )
            for j in range(k + 1, nb):
                if pattern[k, j]:
                    runtime.submit(
                        task_type="fwd",
                        in_=[region(k, k)],
                        inout=[region(k, j)],
                        duration_s=t_fwd,
                        metadata={"k": k, "j": j},
                    )
            for i in range(k + 1, nb):
                if pattern[i, k]:
                    runtime.submit(
                        task_type="bdiv",
                        in_=[region(k, k)],
                        inout=[region(i, k)],
                        duration_s=t_bdiv,
                        metadata={"k": k, "i": i},
                    )
            for i in range(k + 1, nb):
                if not pattern[i, k]:
                    continue
                for j in range(k + 1, nb):
                    if not pattern[k, j]:
                        continue
                    runtime.submit(
                        task_type="bmod",
                        in_=[region(i, k), region(k, j)],
                        inout=[region(i, j)],
                        duration_s=t_bmod,
                        metadata={"k": k, "i": i, "j": j},
                    )
                    pattern[i, j] = True  # fill-in

    # -- functional mode ---------------------------------------------------------------

    def functional_run(self, n_workers: int = 2, hook=None, matrix_size: int = 200, block_size: int = 50):
        """Run a small dense LU through the runtime with real NumPy kernels.

        Returns ``(runtime, blocks, reference)`` where ``reference`` is the
        original matrix so tests can validate ``L*U`` against it.
        """
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        nb = matrix_size // block_size
        rng = np.random.default_rng(self.seed)
        dense = rng.standard_normal((matrix_size, matrix_size))
        # Diagonal dominance keeps the pivoting-free factorisation stable.
        dense += np.eye(matrix_size) * matrix_size
        reference = dense.copy()

        runtime = self.functional_runtime(n_workers=n_workers, hook=hook)
        blocks = {}
        handles = {}
        for i in range(nb):
            for j in range(nb):
                blk = np.ascontiguousarray(
                    dense[i * block_size : (i + 1) * block_size, j * block_size : (j + 1) * block_size]
                )
                blocks[(i, j)] = blk
                handles[(i, j)] = runtime.register_array(f"A[{i}][{j}]", blk)

        def reg(i, j):
            return handles[(i, j)].whole()

        for k in range(nb):
            runtime.submit(kernels.kernel_lu0, task_type="lu0", inout=[reg(k, k)])
            for j in range(k + 1, nb):
                runtime.submit(
                    kernels.kernel_fwd, task_type="fwd", in_=[reg(k, k)], inout=[reg(k, j)]
                )
            for i in range(k + 1, nb):
                runtime.submit(
                    kernels.kernel_bdiv, task_type="bdiv", in_=[reg(k, k)], inout=[reg(i, k)]
                )
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    runtime.submit(
                        kernels.kernel_bmod,
                        task_type="bmod",
                        in_=[reg(i, k), reg(k, j)],
                        inout=[reg(i, j)],
                    )
        result = runtime.taskwait()
        storages = {key: handles[key].storage for key in handles}
        return result, storages, reference
