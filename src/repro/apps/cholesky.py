"""Cholesky: tiled Cholesky factorisation (Table I).

Paper configuration: 16384 x 16384 doubles, 512 x 512 blocks.  Task types are
the classical right-looking tile algorithm: ``potrf``, ``trsm``, ``syrk`` and
``gemm``.  The blocks are coarse and the task count is a few thousand, which is
why the paper observes that Cholesky needs comparatively more replication.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime

DOUBLE = kernels.DOUBLE


class CholeskyBenchmark(Benchmark):
    """Tiled Cholesky factorisation of a dense SPD matrix."""

    name = "cholesky"
    description = "Cholesky factorization"
    distributed = False

    def __init__(
        self,
        matrix_size: int = 16384,
        block_size: int = 512,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        self.matrix_size = matrix_size
        self.block_size = block_size
        self.n_blocks = matrix_size // block_size
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "CholeskyBenchmark":
        """Table I at ``scale=1``; smaller scales shrink the block count."""
        nb = max(4, int(round(32 * scale)))
        return cls(matrix_size=nb * 512, block_size=512)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        return float(self.matrix_size) ** 2 * DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Matrix size {self.matrix_size}x{self.matrix_size} doubles"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_size}x{self.block_size}"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the right-looking tiled factorisation (potrf/trsm/syrk/gemm)."""
        nb = self.n_blocks
        bs = self.block_size
        block_bytes = float(bs * bs * DOUBLE)

        regions: Dict[Tuple[int, int], object] = {}

        def region(i: int, j: int):
            key = (i, j)
            if key not in regions:
                handle = runtime.register_region(f"A[{i}][{j}]", block_bytes)
                regions[key] = handle.whole()
            return regions[key]

        t_potrf = kernels.duration_for_flops(kernels.potrf_flops(bs), self.core_flops)
        t_trsm = kernels.duration_for_flops(kernels.trsm_flops(bs), self.core_flops)
        t_syrk = kernels.duration_for_flops(kernels.syrk_flops(bs), self.core_flops)
        t_gemm = kernels.duration_for_flops(kernels.gemm_flops(bs), self.core_flops)

        for k in range(nb):
            runtime.submit(
                task_type="potrf", inout=[region(k, k)], duration_s=t_potrf, metadata={"k": k}
            )
            for i in range(k + 1, nb):
                runtime.submit(
                    task_type="trsm",
                    in_=[region(k, k)],
                    inout=[region(i, k)],
                    duration_s=t_trsm,
                    metadata={"k": k, "i": i},
                )
            for i in range(k + 1, nb):
                runtime.submit(
                    task_type="syrk",
                    in_=[region(i, k)],
                    inout=[region(i, i)],
                    duration_s=t_syrk,
                    metadata={"k": k, "i": i},
                )
                for j in range(k + 1, i):
                    runtime.submit(
                        task_type="gemm",
                        in_=[region(i, k), region(j, k)],
                        inout=[region(i, j)],
                        duration_s=t_gemm,
                        metadata={"k": k, "i": i, "j": j},
                    )

    # -- functional mode ------------------------------------------------------------

    def functional_run(self, n_workers: int = 2, hook=None, matrix_size: int = 128, block_size: int = 32):
        """Tiled Cholesky on a small SPD matrix with real NumPy kernels.

        Returns ``(result, blocks, reference)``; ``reference`` is the input SPD
        matrix so tests can check ``L @ L.T == reference``.
        """
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        nb = matrix_size // block_size
        rng = np.random.default_rng(3)
        m = rng.standard_normal((matrix_size, matrix_size))
        spd = m @ m.T + matrix_size * np.eye(matrix_size)
        reference = spd.copy()

        runtime = self.functional_runtime(n_workers=n_workers, hook=hook)
        handles = {}
        for i in range(nb):
            for j in range(i + 1):
                blk = np.ascontiguousarray(
                    spd[i * block_size : (i + 1) * block_size, j * block_size : (j + 1) * block_size]
                )
                handles[(i, j)] = runtime.register_array(f"A[{i}][{j}]", blk)

        def reg(i, j):
            return handles[(i, j)].whole()

        for k in range(nb):
            runtime.submit(kernels.kernel_potrf, task_type="potrf", inout=[reg(k, k)])
            for i in range(k + 1, nb):
                runtime.submit(
                    kernels.kernel_trsm, task_type="trsm", in_=[reg(k, k)], inout=[reg(i, k)]
                )
            for i in range(k + 1, nb):
                runtime.submit(
                    kernels.kernel_syrk, task_type="syrk", in_=[reg(i, k)], inout=[reg(i, i)]
                )
                for j in range(k + 1, i):
                    runtime.submit(
                        kernels.kernel_gemm,
                        task_type="gemm",
                        in_=[reg(i, k), reg(j, k)],
                        inout=[reg(i, j)],
                    )
        result = runtime.taskwait()
        storages = {key: handles[key].storage for key in handles}
        return result, storages, reference
