"""Linpack (HPL): LU factorisation with panel broadcast and trailing updates
(Table I, distributed).

Paper configuration: matrix order 131072, block size 256, 8x8 process grid.
The generator follows the canonical HPL phase structure per panel ``k``:

* ``panel_factor`` — factorise panel ``k`` on the node owning it,
* ``panel_bcast``  — broadcast the factored panel along the process-grid rows,
* ``update``       — every node updates its local share of the trailing matrix.

Panel sizes, argument sizes and durations shrink as the factorisation
progresses, so Linpack has a wide spread of task weights — which is why the
paper sees a noticeable difference between the fraction of tasks replicated
and the fraction of computation time replicated for this benchmark.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.distributed.mapping import BlockCyclicMapping
from repro.runtime.runtime import TaskRuntime

DOUBLE = kernels.DOUBLE


class LinpackBenchmark(Benchmark):
    """HPL-style distributed LU factorisation."""

    name = "linpack"
    description = "HPL Linpack"
    distributed = True

    def __init__(
        self,
        matrix_size: int = 131072,
        block_size: int = 256,
        grid_rows: int = 8,
        grid_cols: int = 8,
        update_chunks_per_node: int = 4,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if matrix_size % block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        if update_chunks_per_node < 1:
            raise ValueError("update_chunks_per_node must be >= 1")
        self.matrix_size = matrix_size
        self.block_size = block_size
        self.n_panels = matrix_size // block_size
        self.mapping = BlockCyclicMapping(grid_rows, grid_cols)
        self.update_chunks_per_node = update_chunks_per_node
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "LinpackBenchmark":
        """Table I at ``scale=1``; smaller scales shrink the panel count and grid."""
        n_panels = max(8, int(round(512 * scale)))
        grid = 8 if scale >= 0.5 else 4
        return cls(matrix_size=n_panels * 256, block_size=256, grid_rows=grid, grid_cols=grid)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the process grid."""
        return self.mapping.n_nodes

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        return float(self.matrix_size) ** 2 * DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Matrix size {self.matrix_size} doubles"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_size}, {self.mapping.grid_rows}x{self.mapping.grid_cols} grid"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the blocked LU sweep: panel factor, broadcast, trailing updates."""
        n = self.matrix_size
        bs = self.block_size
        n_panels = self.n_panels
        n_nodes = self.n_nodes
        grid_cols = self.mapping.grid_cols

        # Each node's share of the matrix (updated in place step after step).
        local_bytes = float(n) * n * DOUBLE / n_nodes
        local = {
            node: runtime.register_region(f"local[{node}]", local_bytes)
            for node in range(n_nodes)
        }

        for k in range(n_panels):
            trailing = n - k * bs
            panel_bytes = float(trailing * bs * DOUBLE)
            owner = self.mapping.owner(k, k)
            owner_col = owner % grid_cols

            # The panel factorisation is distributed over the process-grid rows
            # (as HPL does): each row-share of the panel is factored by the node
            # owning it, in parallel.
            panel = runtime.register_region(f"panel[{k}]", panel_bytes)
            grid_rows = self.mapping.grid_rows
            share_bytes = panel_bytes / grid_rows
            t_factor = kernels.duration_for_flops(
                2.0 * trailing * bs * bs / grid_rows, self.core_flops
            )
            owner_share_bytes = float(trailing) * bs * DOUBLE / grid_rows
            for row in range(grid_rows):
                factor_node = row * grid_cols + owner_col
                runtime.submit(
                    task_type="panel_factor",
                    in_=[
                        local[factor_node].region(offset=0.0, size_bytes=owner_share_bytes)
                    ],
                    out=[panel.region(offset=row * share_bytes, size_bytes=share_bytes)],
                    duration_s=t_factor,
                    node=factor_node,
                    metadata={"k": k, "row": row, "mem_bytes": share_bytes},
                )

            copies: Dict[int, object] = {}
            t_bcast = kernels.duration_for_flops(panel_bytes / 8.0, self.core_flops)
            for col in range(grid_cols):
                dest_node = (k % self.mapping.grid_rows) * grid_cols + col
                copy = runtime.register_region(f"panel_copy[{k}][{col}]", panel_bytes)
                copies[col] = copy
                runtime.submit(
                    task_type="panel_bcast",
                    in_=[panel.whole()],
                    out=[copy.whole()],
                    duration_s=t_bcast,
                    node=dest_node,
                    metadata={"k": k, "col": col, "mem_bytes": 2.0 * panel_bytes},
                )

            # Trailing-matrix update: every node updates its local share, split
            # into a few independent column chunks so a node's cores have
            # parallel work within one step (as the tiled HPL update does).
            chunks = self.update_chunks_per_node
            local_trailing_flops = 2.0 * float(trailing) * trailing * bs / n_nodes
            t_update = kernels.duration_for_flops(local_trailing_flops / chunks, self.core_flops)
            local_touch_bytes = float(trailing) * trailing * DOUBLE / n_nodes
            chunk_bytes = local_touch_bytes / chunks
            for node in range(n_nodes):
                col = node % grid_cols
                for chunk in range(chunks):
                    runtime.submit(
                        task_type="update",
                        in_=[copies[col].whole()],
                        inout=[
                            local[node].region(
                                offset=chunk * chunk_bytes, size_bytes=chunk_bytes
                            )
                        ],
                        duration_s=t_update,
                        node=node,
                        metadata={"k": k, "node": node, "chunk": chunk, "mem_bytes": chunk_bytes},
                    )
