"""Stream: McCalpin's memory-bandwidth benchmark, task-parallel version (Table I).

Paper configuration: 2048 x 2048 doubles per array (three arrays ``a``, ``b``,
``c``), 32768-element blocks.  Each iteration runs the four STREAM kernels
(copy, scale, add, triad) over every block.  The tasks are numerous, fine
grained and almost entirely memory bound — the benchmark the paper uses to
stress-test replication overheads and the one that does not scale even without
replication.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps import kernels
from repro.apps.base import Benchmark
from repro.runtime.runtime import TaskRuntime

DOUBLE = kernels.DOUBLE


class StreamBenchmark(Benchmark):
    """Task-parallel STREAM (copy / scale / add / triad)."""

    name = "stream"
    description = "Linear operations among arrays"
    distributed = False

    def __init__(
        self,
        array_elements: int = 2048 * 2048,
        block_elements: int = 32768,
        iterations: int = 50,
        core_flops: float = kernels.DEFAULT_CORE_FLOPS,
    ) -> None:
        super().__init__()
        if array_elements % block_elements:
            raise ValueError("array_elements must be a multiple of block_elements")
        self.array_elements = array_elements
        self.block_elements = block_elements
        self.n_blocks = array_elements // block_elements
        self.iterations = iterations
        self.core_flops = core_flops

    @classmethod
    def from_scale(cls, scale: float = 1.0) -> "StreamBenchmark":
        """Table I at ``scale=1``; smaller scales reduce the iteration count."""
        iterations = max(2, int(round(50 * scale)))
        return cls(iterations=iterations)

    @property
    def input_bytes(self) -> float:
        """Total input footprint in bytes (Table I's "input MiB" column)."""
        return 3.0 * self.array_elements * DOUBLE

    @property
    def problem_label(self) -> str:
        """Human-readable problem-size label (Table I's "problem" column)."""
        return f"Array size 2048x2048 (doubles), {self.array_elements} elements per array"

    @property
    def block_label(self) -> str:
        """Human-readable block/granularity label (Table I's "block" column)."""
        return f"{self.block_elements}"

    def _build(self, runtime: TaskRuntime) -> None:
        """Submit the STREAM copy/scale/add/triad kernels over blocked arrays."""
        block_bytes = float(self.block_elements * DOUBLE)
        arrays = {
            name: runtime.register_region(name, self.array_elements * DOUBLE)
            for name in ("a", "b", "c")
        }

        def region(name: str, b: int):
            return arrays[name].region(offset=b * block_bytes, size_bytes=block_bytes)

        # STREAM kernels do ~1 flop per element; durations are tiny and the
        # memory footprint (2-3 blocks) dominates through the simulator's
        # bandwidth model.
        t_kernel = kernels.duration_for_flops(self.block_elements, self.core_flops)

        for it in range(self.iterations):
            for b in range(self.n_blocks):
                runtime.submit(
                    task_type="copy",
                    in_=[region("a", b)],
                    out=[region("c", b)],
                    duration_s=t_kernel,
                    metadata={"iter": it, "block": b, "mem_bytes": 2 * block_bytes},
                )
            for b in range(self.n_blocks):
                runtime.submit(
                    task_type="scale",
                    in_=[region("c", b)],
                    out=[region("b", b)],
                    duration_s=t_kernel,
                    metadata={"iter": it, "block": b, "mem_bytes": 2 * block_bytes},
                )
            for b in range(self.n_blocks):
                runtime.submit(
                    task_type="add",
                    in_=[region("a", b), region("b", b)],
                    out=[region("c", b)],
                    duration_s=t_kernel,
                    metadata={"iter": it, "block": b, "mem_bytes": 3 * block_bytes},
                )
            for b in range(self.n_blocks):
                runtime.submit(
                    task_type="triad",
                    in_=[region("b", b), region("c", b)],
                    out=[region("a", b)],
                    duration_s=t_kernel,
                    metadata={"iter": it, "block": b, "mem_bytes": 3 * block_bytes},
                )

    # -- functional mode -----------------------------------------------------------

    def functional_run(
        self,
        n_workers: int = 2,
        hook=None,
        array_elements: int = 16384,
        block_elements: int = 4096,
        iterations: int = 2,
        scalar: float = 3.0,
    ):
        """Run the four STREAM kernels on real arrays through the runtime.

        Returns ``(result, arrays)`` where ``arrays`` maps ``"a"/"b"/"c"`` to
        the final NumPy arrays; the expected closed-form values are easy to
        verify in tests.
        """
        if array_elements % block_elements:
            raise ValueError("array_elements must be a multiple of block_elements")
        nb = array_elements // block_elements
        runtime = self.functional_runtime(n_workers=n_workers, hook=hook)
        storage = {
            "a": np.full(array_elements, 1.0),
            "b": np.full(array_elements, 2.0),
            "c": np.zeros(array_elements),
        }
        handles = {k: runtime.register_array(k, v) for k, v in storage.items()}
        eb = storage["a"].itemsize

        def region(name, b):
            return handles[name].region(offset=b * block_elements * eb, size_bytes=block_elements * eb)

        for _ in range(iterations):
            for b in range(nb):
                lo, hi = b * block_elements, (b + 1) * block_elements

                def copy(a, c, lo=lo, hi=hi):
                    kernels.kernel_stream_copy(a[lo:hi], c[lo:hi])

                runtime.submit(copy, task_type="copy", in_=[region("a", b)], out=[region("c", b)])
            for b in range(nb):
                lo, hi = b * block_elements, (b + 1) * block_elements

                def scale(c, bb, lo=lo, hi=hi):
                    kernels.kernel_stream_scale(c[lo:hi], bb[lo:hi], scalar)

                runtime.submit(scale, task_type="scale", in_=[region("c", b)], out=[region("b", b)])
            for b in range(nb):
                lo, hi = b * block_elements, (b + 1) * block_elements

                def add(a, bb, c, lo=lo, hi=hi):
                    kernels.kernel_stream_add(a[lo:hi], bb[lo:hi], c[lo:hi])

                runtime.submit(
                    add, task_type="add", in_=[region("a", b), region("b", b)], out=[region("c", b)]
                )
            for b in range(nb):
                lo, hi = b * block_elements, (b + 1) * block_elements

                def triad(bb, c, a, lo=lo, hi=hi):
                    kernels.kernel_stream_triad(bb[lo:hi], c[lo:hi], a[lo:hi], scalar)

                runtime.submit(
                    triad, task_type="triad", in_=[region("b", b), region("c", b)], out=[region("a", b)]
                )
        result = runtime.taskwait()
        return result, {k: h.storage for k, h in handles.items()}
