"""Benchmark registry: create Table I benchmarks — and workloads — by name.

Besides the nine fixed Table I generators, the registry dispatches *workload
spec strings* (``layered:depth=12,width=8,seed=7``, a bare family name, or a
``trace:file=...`` import — see :mod:`repro.workloads.spec`) to the workload
subsystem, so every consumer of :func:`create_benchmark` (the experiment
runner, the compiled-graph store, the CLI) works on synthetic scenarios
without knowing they exist.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.apps.base import Benchmark
from repro.apps.cholesky import CholeskyBenchmark
from repro.apps.fft import FFTBenchmark
from repro.apps.linpack import LinpackBenchmark
from repro.apps.matmul import MatmulBenchmark
from repro.apps.nbody import NbodyBenchmark
from repro.apps.perlin import PerlinNoiseBenchmark
from repro.apps.pingpong import PingpongBenchmark
from repro.apps.sparselu import SparseLUBenchmark
from repro.apps.stream import StreamBenchmark

#: Table I order: shared-memory benchmarks first, then the distributed ones.
_REGISTRY: Dict[str, Type[Benchmark]] = {
    "sparselu": SparseLUBenchmark,
    "cholesky": CholeskyBenchmark,
    "fft": FFTBenchmark,
    "perlin": PerlinNoiseBenchmark,
    "stream": StreamBenchmark,
    "nbody": NbodyBenchmark,
    "matmul": MatmulBenchmark,
    "pingpong": PingpongBenchmark,
    "linpack": LinpackBenchmark,
}


def all_benchmark_names() -> List[str]:
    """All benchmark names, in Table I order."""
    return list(_REGISTRY)


def shared_memory_benchmark_names() -> List[str]:
    """Names of the shared-memory benchmarks."""
    return [name for name, cls in _REGISTRY.items() if not cls.distributed]


def distributed_benchmark_names() -> List[str]:
    """Names of the distributed benchmarks."""
    return [name for name, cls in _REGISTRY.items() if cls.distributed]


def workload_family_names() -> List[str]:
    """Names of the synthetic-workload families (see :mod:`repro.workloads`)."""
    from repro.workloads.spec import family_names

    return family_names()


def create_benchmark(name: str, scale: float = 1.0, **kwargs) -> Benchmark:
    """Instantiate a benchmark by name.

    ``scale=1.0`` selects the Table I configuration; smaller values shrink the
    problem (fewer blocks / iterations / nodes) while preserving the task
    structure.  Extra keyword arguments override the constructor defaults and
    take precedence over ``scale``.

    A *workload* name — a ``family:params`` spec string or a bare family name
    — is dispatched to :func:`repro.workloads.create_workload_benchmark`
    instead; workload parameters live in the spec string, so ``kwargs`` are
    rejected there.
    """
    key = name.lower()
    if key not in _REGISTRY:
        from repro.workloads.spec import is_workload_name

        if is_workload_name(name):
            if kwargs:
                raise TypeError(
                    "workload benchmarks take parameters in the spec string, "
                    f"not keyword arguments: {name!r}"
                )
            from repro.workloads.benchmark import create_workload_benchmark

            return create_workload_benchmark(name, scale=scale)
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(_REGISTRY)}, "
            "or a workload spec such as 'layered:depth=12,width=8,seed=7'"
        )
    cls = _REGISTRY[key]
    if kwargs:
        return cls(**kwargs)
    if scale == 1.0:
        return cls()
    return cls.from_scale(scale)
