"""Benchmark registry: create Table I benchmarks by name."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.apps.base import Benchmark
from repro.apps.cholesky import CholeskyBenchmark
from repro.apps.fft import FFTBenchmark
from repro.apps.linpack import LinpackBenchmark
from repro.apps.matmul import MatmulBenchmark
from repro.apps.nbody import NbodyBenchmark
from repro.apps.perlin import PerlinNoiseBenchmark
from repro.apps.pingpong import PingpongBenchmark
from repro.apps.sparselu import SparseLUBenchmark
from repro.apps.stream import StreamBenchmark

#: Table I order: shared-memory benchmarks first, then the distributed ones.
_REGISTRY: Dict[str, Type[Benchmark]] = {
    "sparselu": SparseLUBenchmark,
    "cholesky": CholeskyBenchmark,
    "fft": FFTBenchmark,
    "perlin": PerlinNoiseBenchmark,
    "stream": StreamBenchmark,
    "nbody": NbodyBenchmark,
    "matmul": MatmulBenchmark,
    "pingpong": PingpongBenchmark,
    "linpack": LinpackBenchmark,
}


def all_benchmark_names() -> List[str]:
    """All benchmark names, in Table I order."""
    return list(_REGISTRY)


def shared_memory_benchmark_names() -> List[str]:
    """Names of the shared-memory benchmarks."""
    return [name for name, cls in _REGISTRY.items() if not cls.distributed]


def distributed_benchmark_names() -> List[str]:
    """Names of the distributed benchmarks."""
    return [name for name, cls in _REGISTRY.items() if cls.distributed]


def create_benchmark(name: str, scale: float = 1.0, **kwargs) -> Benchmark:
    """Instantiate a benchmark by name.

    ``scale=1.0`` selects the Table I configuration; smaller values shrink the
    problem (fewer blocks / iterations / nodes) while preserving the task
    structure.  Extra keyword arguments override the constructor defaults and
    take precedence over ``scale``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(_REGISTRY)}"
        )
    cls = _REGISTRY[key]
    if kwargs:
        return cls(**kwargs)
    if scale == 1.0:
        return cls()
    return cls.from_scale(scale)
