"""Cluster description used by the distributed benchmark generators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.machine import MachineSpec, marenostrum_cluster
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ClusterSpec:
    """A named view over a :class:`MachineSpec` with rank/grid helpers."""

    machine: MachineSpec

    @classmethod
    def marenostrum(cls, n_nodes: int = 64, cores_per_node: int = 16) -> "ClusterSpec":
        """The paper's distributed configuration (64 nodes x 16 cores = 1024 cores)."""
        return cls(machine=marenostrum_cluster(n_nodes, cores_per_node))

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self.machine.n_nodes

    @property
    def total_cores(self) -> int:
        """Total worker cores."""
        return self.machine.total_cores

    def grid_shape(self) -> tuple:
        """A near-square 2D process grid (rows, cols) covering all nodes.

        HPL-style codes lay nodes out on a PxQ grid; the paper's Linpack run
        uses an 8x8 grid on 64 nodes.
        """
        import math

        n = self.n_nodes
        p = int(math.sqrt(n))
        while p > 1 and n % p != 0:
            p -= 1
        return (p, n // p)

    def node_for_rank(self, rank: int) -> int:
        """Map an MPI-style rank onto a node index."""
        check_positive_int(rank + 1, "rank + 1")
        return rank % self.n_nodes

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """A copy of the cluster with a different node count."""
        return ClusterSpec(machine=self.machine.with_nodes(n_nodes))
