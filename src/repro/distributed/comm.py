"""Analytic communication cost model (alpha-beta model).

Point-to-point messages cost ``alpha + bytes / beta``; collectives follow the
usual logarithmic tree estimates.  The distributed benchmark generators use
these estimates to size their communication tasks, and the simulator uses the
same parameters (through :class:`~repro.simulator.machine.MachineSpec`) for
edges that cross nodes, so both views stay consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulator.machine import MachineSpec
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CommunicationModel:
    """Latency/bandwidth (alpha-beta) communication cost model."""

    latency_s: float = 1.5e-6
    bandwidth_Bps: float = 4e9

    def __post_init__(self) -> None:
        check_non_negative(self.latency_s, "latency_s")
        check_positive(self.bandwidth_Bps, "bandwidth_Bps")

    @classmethod
    def from_machine(cls, machine: MachineSpec) -> "CommunicationModel":
        """Build the model from a machine's network parameters."""
        return cls(
            latency_s=machine.network_latency_s,
            bandwidth_Bps=machine.network_bandwidth_Bps,
        )

    # -- primitives --------------------------------------------------------------

    def point_to_point(self, n_bytes: float) -> float:
        """Time for one message of ``n_bytes``."""
        check_non_negative(n_bytes, "n_bytes")
        return self.latency_s + n_bytes / self.bandwidth_Bps

    def broadcast(self, n_bytes: float, n_ranks: int) -> float:
        """Binomial-tree broadcast estimate across ``n_ranks`` processes."""
        if n_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        return rounds * self.point_to_point(n_bytes)

    def allreduce(self, n_bytes: float, n_ranks: int) -> float:
        """Recursive-doubling all-reduce estimate."""
        if n_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        return 2 * rounds * self.point_to_point(n_bytes)

    def alltoall(self, n_bytes_per_pair: float, n_ranks: int) -> float:
        """Pairwise-exchange all-to-all estimate."""
        if n_ranks <= 1:
            return 0.0
        return (n_ranks - 1) * self.point_to_point(n_bytes_per_pair)
