"""Simulated cluster substrate for the distributed benchmarks.

The paper's distributed experiments run OmpSs+MPI on up to 64 nodes / 1024
cores.  This package models the pieces the benchmark generators and the
simulator need: a cluster description, task-to-node mappings (block-cyclic and
round-robin, as HPL-style codes use), and an analytic communication cost model
(point-to-point, broadcast, all-reduce) used to size communication tasks.
"""

from repro.distributed.cluster import ClusterSpec
from repro.distributed.comm import CommunicationModel
from repro.distributed.mapping import (
    BlockCyclicMapping,
    RoundRobinMapping,
    owner_2d_block_cyclic,
)

__all__ = [
    "BlockCyclicMapping",
    "ClusterSpec",
    "CommunicationModel",
    "RoundRobinMapping",
    "owner_2d_block_cyclic",
]
