"""Task/data to node mappings used by the distributed benchmark generators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int


def owner_2d_block_cyclic(block_row: int, block_col: int, grid_rows: int, grid_cols: int) -> int:
    """Owner node of block (row, col) in a 2D block-cyclic distribution.

    This is the standard ScaLAPACK/HPL layout: block (i, j) lives on process
    ``(i mod P, j mod Q)`` of the PxQ grid, linearised row-major.
    """
    check_positive_int(grid_rows, "grid_rows")
    check_positive_int(grid_cols, "grid_cols")
    if block_row < 0 or block_col < 0:
        raise ValueError("block indices must be non-negative")
    return (block_row % grid_rows) * grid_cols + (block_col % grid_cols)


@dataclass(frozen=True)
class BlockCyclicMapping:
    """2D block-cyclic mapping over a fixed process grid."""

    grid_rows: int
    grid_cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.grid_rows, "grid_rows")
        check_positive_int(self.grid_cols, "grid_cols")

    @property
    def n_nodes(self) -> int:
        """Number of processes in the grid."""
        return self.grid_rows * self.grid_cols

    def owner(self, block_row: int, block_col: int) -> int:
        """Owner node of a block."""
        return owner_2d_block_cyclic(block_row, block_col, self.grid_rows, self.grid_cols)

    def row_owners(self, block_row: int) -> list:
        """All nodes owning blocks of a block-row (one per grid column)."""
        return [
            self.owner(block_row, c) for c in range(self.grid_cols)
        ]


@dataclass(frozen=True)
class RoundRobinMapping:
    """1D round-robin mapping of block indices onto nodes."""

    n_nodes: int

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")

    def owner(self, index: int) -> int:
        """Owner node of a 1D block index."""
        if index < 0:
            raise ValueError("index must be non-negative")
        return index % self.n_nodes
