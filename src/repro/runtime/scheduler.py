"""Ready-queue scheduling of a task DAG.

Both the functional executor and the machine simulator consume the same
scheduler: it tracks dependency counts, hands out ready tasks under a
configurable ordering policy, and releases successors when tasks complete.
Thread-safety is provided by a single lock so the functional thread pool can
pull work concurrently.
"""

from __future__ import annotations

import enum
import heapq
import threading
from typing import Dict, List, Optional, Set

from repro.runtime.graph import TaskGraph


class SchedulingPolicy(enum.Enum):
    """Ordering of the ready queue."""

    #: First-in first-out on submission order (Nanos' default breadth-first).
    FIFO = "fifo"
    #: Last-in first-out (depth-first, cache-friendlier for nested task creation).
    LIFO = "lifo"
    #: Longest task first (a common heuristic for makespan on greedy schedulers).
    LONGEST_FIRST = "longest_first"


class ReadyScheduler:
    """Tracks which tasks of a graph are ready, running or complete."""

    def __init__(
        self,
        graph: TaskGraph,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self._lock = threading.Lock()
        self._pending_deps: Dict[int, int] = {}
        self._heap: List[tuple] = []
        self._counter = 0
        self._completed: Set[int] = set()
        self._running: Set[int] = set()
        self._submitted_order: Dict[int, int] = {
            tid: i for i, tid in enumerate(graph.task_ids())
        }
        for tid in graph.task_ids():
            deps = graph.in_degree(tid)
            self._pending_deps[tid] = deps
            if deps == 0:
                self._push(tid)

    # -- internal helpers -----------------------------------------------------

    def _priority(self, task_id: int) -> tuple:
        """The heap key of a task under the configured scheduling policy."""
        order = self._submitted_order[task_id]
        if self.policy is SchedulingPolicy.FIFO:
            return (order,)
        if self.policy is SchedulingPolicy.LIFO:
            return (-order,)
        task = self.graph.task(task_id)
        return (-task.duration_s, order)

    def _push(self, task_id: int) -> None:
        """Push a ready task with a tie-breaking submission counter."""
        self._counter += 1
        heapq.heappush(self._heap, (*self._priority(task_id), self._counter, task_id))

    # -- public API -----------------------------------------------------------

    def pop_ready(self) -> Optional[int]:
        """Take one ready task id, or ``None`` if none is currently ready."""
        with self._lock:
            if not self._heap:
                return None
            entry = heapq.heappop(self._heap)
            task_id = entry[-1]
            self._running.add(task_id)
            return task_id

    def ready_count(self) -> int:
        """Number of tasks currently ready to run."""
        with self._lock:
            return len(self._heap)

    def mark_complete(self, task_id: int) -> List[int]:
        """Mark ``task_id`` complete and return newly-ready successor ids."""
        newly_ready: List[int] = []
        with self._lock:
            if task_id in self._completed:
                raise ValueError(f"task {task_id} completed twice")
            self._completed.add(task_id)
            self._running.discard(task_id)
            for succ in sorted(self.graph.successors(task_id)):
                self._pending_deps[succ] -= 1
                if self._pending_deps[succ] == 0:
                    self._push(succ)
                    newly_ready.append(succ)
                elif self._pending_deps[succ] < 0:
                    raise RuntimeError(
                        f"dependency count of task {succ} went negative"
                    )
        return newly_ready

    def is_done(self) -> bool:
        """Whether every task in the graph has completed."""
        with self._lock:
            return len(self._completed) == len(self.graph)

    def completed_count(self) -> int:
        """Number of completed tasks."""
        with self._lock:
            return len(self._completed)

    def running_count(self) -> int:
        """Number of tasks handed out but not yet completed."""
        with self._lock:
            return len(self._running)

    def verify_quiescent(self) -> None:
        """Raise if the scheduler is stuck (nothing ready/running but not done)."""
        with self._lock:
            done = len(self._completed) == len(self.graph)
            stuck = not self._heap and not self._running and not done
        if stuck:
            raise RuntimeError(
                "scheduler deadlock: no ready or running tasks but the graph "
                "is not complete (is the graph acyclic?)"
            )
