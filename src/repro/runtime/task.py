"""Task descriptors and data regions.

In Nanos++ a *task descriptor* is the internal structure representing one task
instance: it wraps the task's inputs and outputs plus a pointer to its code.
The replication design of the paper duplicates exactly this structure, so the
reproduction mirrors it closely.

Two pieces of metadata matter for the paper's heuristic:

* the **direction** of every argument (``in`` / ``out`` / ``inout``), which the
  dataflow model already requires the programmer to annotate, and
* the **size in bytes** of every argument, from which per-task failure rates
  are estimated (Section IV-A).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_non_negative


class Direction(enum.Enum):
    """Dataflow direction of a task argument (OmpSs ``in``/``out``/``inout``)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    #: Plain by-value argument: carries no dependency and no failure-rate weight
    #: beyond its own size.
    VALUE = "value"

    @property
    def reads(self) -> bool:
        """Whether the task reads the argument's previous contents."""
        return self in (Direction.IN, Direction.INOUT, Direction.VALUE)

    @property
    def writes(self) -> bool:
        """Whether the task produces the argument's new contents."""
        return self in (Direction.OUT, Direction.INOUT)


class DataHandle:
    """A named, sized piece of application data managed by the runtime.

    In functional mode the handle owns a NumPy array (``storage``); in
    simulation mode it only carries a size.  Handles are identity-hashable so
    they can key the dependency tracker's readers/writers maps.
    """

    _ids = itertools.count()

    def __init__(
        self,
        name: str,
        size_bytes: float | None = None,
        storage: Optional[np.ndarray] = None,
    ) -> None:
        if storage is None and size_bytes is None:
            raise ValueError("a DataHandle needs either a storage array or a size")
        self.handle_id: int = next(DataHandle._ids)
        self.name = name
        self.storage = storage
        if size_bytes is None:
            size_bytes = float(storage.nbytes)  # type: ignore[union-attr]
        self.size_bytes = check_non_negative(size_bytes, "size_bytes")
        self._whole: Optional[DataRegion] = None

    def region(self, offset: float = 0.0, size_bytes: float | None = None) -> "DataRegion":
        """A region covering ``[offset, offset+size)`` of this handle."""
        if size_bytes is None:
            size_bytes = self.size_bytes - offset
        return DataRegion(self, offset, size_bytes)

    def whole(self) -> "DataRegion":
        """The region covering the entire handle (cached — regions are frozen)."""
        if self._whole is None:
            self._whole = DataRegion(self, 0.0, self.size_bytes)
        return self._whole

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataHandle({self.name!r}, {self.size_bytes:.0f} B)"


@dataclass(frozen=True)
class DataRegion:
    """A byte range of a :class:`DataHandle`, the unit of dependency analysis."""

    handle: DataHandle
    offset: float
    size_bytes: float

    def __post_init__(self) -> None:
        check_non_negative(self.offset, "offset")
        check_non_negative(self.size_bytes, "size_bytes")

    @property
    def end(self) -> float:
        """Exclusive end offset of the region."""
        return self.offset + self.size_bytes

    def overlaps(self, other: "DataRegion") -> bool:
        """Whether two regions reference overlapping bytes of the same handle."""
        if self.handle is not other.handle:
            return False
        if self.size_bytes == 0 or other.size_bytes == 0:
            return False
        return self.offset < other.end and other.offset < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataRegion({self.handle.name}, off={self.offset:.0f}, "
            f"size={self.size_bytes:.0f})"
        )


@dataclass
class TaskArgument:
    """One annotated argument of a task."""

    name: str
    direction: Direction
    region: Optional[DataRegion] = None
    value: Any = None
    size_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.region is not None and self.size_bytes == 0.0:
            self.size_bytes = self.region.size_bytes
        check_non_negative(self.size_bytes, "size_bytes")

    @property
    def is_dependency_bearing(self) -> bool:
        """Whether the argument participates in dataflow dependency analysis."""
        return self.region is not None and self.direction is not Direction.VALUE


def arg_in(region: DataRegion, name: str = "in") -> TaskArgument:
    """Shorthand for an ``in`` argument over ``region``."""
    return TaskArgument(name=name, direction=Direction.IN, region=region)


def arg_out(region: DataRegion, name: str = "out") -> TaskArgument:
    """Shorthand for an ``out`` argument over ``region``."""
    return TaskArgument(name=name, direction=Direction.OUT, region=region)


def arg_inout(region: DataRegion, name: str = "inout") -> TaskArgument:
    """Shorthand for an ``inout`` argument over ``region``."""
    return TaskArgument(name=name, direction=Direction.INOUT, region=region)


def arg_value(value: Any, name: str = "value", size_bytes: float = 0.0) -> TaskArgument:
    """Shorthand for a by-value argument."""
    return TaskArgument(name=name, direction=Direction.VALUE, value=value, size_bytes=size_bytes)


@dataclass
class TaskDescriptor:
    """An instance of a task, mirroring a Nanos++ task descriptor.

    Attributes
    ----------
    task_id:
        Unique id within a :class:`~repro.runtime.graph.TaskGraph`.
    task_type:
        The task's "code pointer": a label such as ``"gemm"`` or ``"lu0"``.
    args:
        Annotated arguments (directions, regions and sizes).
    func:
        Optional Python callable executed in functional mode.  It receives the
        arguments' backing NumPy arrays (for region-bearing arguments) and the
        plain values (for VALUE arguments) in declaration order.
    duration_s:
        Estimated (or measured) execution time used by the machine simulator.
    node:
        Target node for distributed benchmarks (``None`` means any node).
    replica_of:
        For replica descriptors, the id of the original task.
    metadata:
        Free-form per-task annotations (e.g. benchmark-specific indices).
    """

    task_id: int
    task_type: str
    args: List[TaskArgument] = field(default_factory=list)
    func: Optional[Callable[..., Any]] = None
    duration_s: float = 0.0
    node: Optional[int] = None
    replica_of: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_negative(self.duration_s, "duration_s")

    # -- size accounting (what the heuristic consumes) ----------------------

    @property
    def argument_bytes(self) -> float:
        """Total size of all arguments (the paper's per-task exposure)."""
        return float(sum(a.size_bytes for a in self.args))

    @property
    def input_bytes(self) -> float:
        """Bytes the task reads (``in`` + ``inout`` + values)."""
        return float(sum(a.size_bytes for a in self.args if a.direction.reads))

    @property
    def output_bytes(self) -> float:
        """Bytes the task writes (``out`` + ``inout``)."""
        return float(sum(a.size_bytes for a in self.args if a.direction.writes))

    @property
    def is_replica(self) -> bool:
        """Whether this descriptor is a replica of another task."""
        return self.replica_of is not None

    # -- dependency-bearing argument views ----------------------------------

    def read_regions(self) -> List[DataRegion]:
        """Regions the task reads (for dependency analysis)."""
        return [
            a.region
            for a in self.args
            if a.is_dependency_bearing and a.direction.reads and a.region is not None
        ]

    def write_regions(self) -> List[DataRegion]:
        """Regions the task writes (for dependency analysis)."""
        return [
            a.region
            for a in self.args
            if a.is_dependency_bearing and a.direction.writes and a.region is not None
        ]

    def clone_as_replica(self, new_id: int) -> "TaskDescriptor":
        """Duplicate this descriptor as a replica (paper Figure 2, step 2)."""
        return TaskDescriptor(
            task_id=new_id,
            task_type=self.task_type,
            args=list(self.args),
            func=self.func,
            duration_s=self.duration_s,
            node=self.node,
            replica_of=self.task_id,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f" replica_of={self.replica_of}" if self.is_replica else ""
        return f"Task#{self.task_id}({self.task_type}{suffix})"
