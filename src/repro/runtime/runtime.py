"""The :class:`TaskRuntime` facade — the OmpSs-like programming interface.

Application code (the examples and the functional benchmark kernels) uses this
class the way an OmpSs program uses ``#pragma omp task``:

.. code-block:: python

    rt = TaskRuntime(n_workers=4)
    a = rt.register_array("A", np.zeros(1024))
    rt.submit(increment, inout=[a.whole()], task_type="inc")
    rt.submit(increment, inout=[a.whole()], task_type="inc")
    result = rt.taskwait()          # builds, runs and waits for the graph

Dependencies are inferred automatically from the ``in``/``out``/``inout``
regions, the selective-replication engine plugs in as an execution hook, and
the produced :class:`~repro.runtime.graph.TaskGraph` can alternatively be fed
to the machine simulator instead of being executed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.runtime.dependencies import DependencyTracker
from repro.runtime.events import EventKind, EventLog
from repro.runtime.executor import ExecutionResult, GraphExecutor, TaskExecutionHook
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import SchedulingPolicy
from repro.runtime.task import (
    DataHandle,
    DataRegion,
    Direction,
    TaskArgument,
    TaskDescriptor,
)
from repro.util.validation import check_positive_int


@dataclass
class RuntimeConfig:
    """Configuration of a :class:`TaskRuntime`."""

    n_workers: int = 4
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.FIFO
    #: Name given to graphs produced by this runtime instance.
    graph_name: str = "app"
    #: Whether TASK_SUBMITTED events are logged.  Benchmark graph generation
    #: submits hundreds of thousands of tasks nobody replays, so it opts out.
    record_submissions: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.n_workers, "n_workers")


class TaskRuntime:
    """Programming-model facade: register data, submit tasks, taskwait."""

    def __init__(
        self,
        n_workers: int = 4,
        config: Optional[RuntimeConfig] = None,
        hook: Optional[TaskExecutionHook] = None,
    ) -> None:
        self.config = config if config is not None else RuntimeConfig(n_workers=n_workers)
        self.hook = hook
        self.events = EventLog()
        self._ids = itertools.count()
        self._graph = TaskGraph(self.config.graph_name)
        self._deps = DependencyTracker()
        self._handles: Dict[str, DataHandle] = {}
        self._results: List[ExecutionResult] = []

    # -- data registration ----------------------------------------------------

    def register_array(self, name: str, array: np.ndarray) -> DataHandle:
        """Register a NumPy array as runtime-managed data and return its handle.

        Non-contiguous input is copied into a contiguous managed buffer (read
        results back through ``handle.storage``): the replication protocol's
        region-scoped snapshot/restore needs byte-exact views of partial
        regions, which only exist over contiguous storage — a non-contiguous
        backing array would silently degrade restores to whole-array copies
        and reintroduce the multi-worker recovery race.
        """
        if name in self._handles:
            raise ValueError(f"a data handle named {name!r} already exists")
        handle = DataHandle(name, storage=np.ascontiguousarray(array))
        self._handles[name] = handle
        return handle

    def register_region(self, name: str, size_bytes: float) -> DataHandle:
        """Register simulation-only data (a size with no backing array)."""
        if name in self._handles:
            raise ValueError(f"a data handle named {name!r} already exists")
        handle = DataHandle(name, size_bytes=size_bytes)
        self._handles[name] = handle
        return handle

    def handle(self, name: str) -> DataHandle:
        """Look up a registered handle by name."""
        return self._handles[name]

    def handles(self) -> List[DataHandle]:
        """All registered handles."""
        return list(self._handles.values())

    # -- task submission ------------------------------------------------------

    def submit(
        self,
        func: Optional[Callable[..., Any]] = None,
        *,
        task_type: str = "task",
        in_: Sequence[DataRegion] = (),
        out: Sequence[DataRegion] = (),
        inout: Sequence[DataRegion] = (),
        values: Sequence[Any] = (),
        duration_s: float = 0.0,
        node: Optional[int] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> TaskDescriptor:
        """Create a task descriptor, infer its dependencies and add it to the graph.

        The Python body ``func`` receives the backing arrays of ``in_``, ``out``
        and ``inout`` regions followed by ``values``, in that order.
        """
        args: List[TaskArgument] = []
        for i, region in enumerate(in_):
            args.append(TaskArgument(name=f"in{i}", direction=Direction.IN, region=region))
        for i, region in enumerate(out):
            args.append(TaskArgument(name=f"out{i}", direction=Direction.OUT, region=region))
        for i, region in enumerate(inout):
            args.append(TaskArgument(name=f"inout{i}", direction=Direction.INOUT, region=region))
        for i, value in enumerate(values):
            args.append(TaskArgument(name=f"val{i}", direction=Direction.VALUE, value=value))

        task = TaskDescriptor(
            task_id=next(self._ids),
            task_type=task_type,
            args=args,
            func=func,
            duration_s=duration_s,
            node=node,
            metadata=dict(metadata or {}),
        )
        deps = self._deps.register(task)
        self._graph.add_task(task, deps)
        if self.config.record_submissions:
            self.events.record(EventKind.TASK_SUBMITTED, task_id=task.task_id)
        return task

    def submit_task(self, task: TaskDescriptor) -> TaskDescriptor:
        """Add a pre-built descriptor (dependencies still inferred from its regions)."""
        deps = self._deps.register(task)
        self._graph.add_task(task, deps)
        if self.config.record_submissions:
            self.events.record(EventKind.TASK_SUBMITTED, task_id=task.task_id)
        return task

    def next_task_id(self) -> int:
        """Allocate a fresh task id (for callers building descriptors directly)."""
        return next(self._ids)

    # -- execution ------------------------------------------------------------

    @property
    def graph(self) -> TaskGraph:
        """The task graph accumulated since the last :meth:`taskwait`/:meth:`reset`."""
        return self._graph

    def taskwait(self) -> ExecutionResult:
        """Execute all pending tasks, wait for completion, and start a new phase.

        Mirrors OmpSs' ``#pragma omp taskwait``: the call returns once every
        submitted task (and, with a replication hook installed, every replica)
        has finished.
        """
        executor = GraphExecutor(
            n_workers=self.config.n_workers,
            policy=self.config.scheduling_policy,
            hook=self.hook,
            event_log=self.events,
        )
        result = executor.run(self._graph)
        self._results.append(result)
        # A taskwait is a full barrier: subsequent tasks start a fresh dependency
        # context but keep the registered data handles.
        self._graph = TaskGraph(self.config.graph_name)
        self._deps.reset()
        return result

    def reset(self) -> None:
        """Discard pending tasks and dependency state (keeps data handles)."""
        self._graph = TaskGraph(self.config.graph_name)
        self._deps.reset()

    def results(self) -> List[ExecutionResult]:
        """Execution results of every completed :meth:`taskwait` phase."""
        return list(self._results)
