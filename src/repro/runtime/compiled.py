"""Compiled structure-of-arrays task graphs and their on-disk store.

The experiment drivers replay the same task DAGs — one per (app, problem
size, node count) — hundreds of times across fault rates, machine sizes and
policies.  Building a :class:`~repro.runtime.graph.TaskGraph` materialises
millions of Python objects (descriptors, arguments, regions) only for the
replay machinery to immediately re-derive flat numeric quantities from them.
This module removes that detour:

* :func:`compile_graph` lowers a ``TaskGraph`` into a :class:`CompiledGraph`
  — an immutable structure-of-arrays form: CSR successor/predecessor index
  arrays, per-task duration/bytes/node-affinity arrays and per-edge
  communication payloads.  Every value is produced by the *same* arithmetic
  the simulator's reference path uses, so replaying a compiled graph is
  bit-identical to replaying the original (the equivalence suite pins this).
* :class:`CompiledGraphStore` persists compiled graphs as ``.npz`` files
  keyed by the SHA-256 of (benchmark, scale, node count, code version) —
  the same content-addressing conventions as the results store in
  :mod:`repro.analysis.store`.  Loads go through :func:`load_npz_arrays`,
  which memory-maps the uncompressed ``.npz`` members read-only, so worker
  processes replaying the same graph share one physical copy of the arrays
  instead of each rebuilding (or each loading) its own.

Invalidation follows the results store: the code version (package version,
or ``REPRO_CODE_VERSION``) is hashed into every key, so a version bump makes
old entries unreachable and ``repro cache gc`` reclaims them.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import time
import zipfile
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.runtime.graph import TaskGraph
from repro.runtime.task import TaskDescriptor

#: Bump when the compiled array layout changes (hashed into every store key).
COMPILED_FORMAT: int = 1

#: Environment variable toggling the on-disk compiled-graph cache
#: ("0"/"false"/"no" disable it; the CLI enables it by default).
GRAPH_CACHE_ENV: str = "REPRO_GRAPH_CACHE"

#: Environment variable overriding the default cache root (shared with the
#: results store).
CACHE_DIR_ENV: str = "REPRO_CACHE_DIR"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR: str = ".repro_cache"

#: Environment variable overriding the workload-entry age limit ``repro cache
#: gc`` applies (seconds; see :meth:`CompiledGraphStore.gc`).
WORKLOAD_MAX_AGE_ENV: str = "REPRO_WORKLOAD_MAX_AGE_S"

#: Default age limit for compiled *workload* graphs during CLI gc: one week.
#: The workload spec space is unbounded (every parameter combination is a new
#: entry), so unlike the nine Table I graphs these must eventually age out.
DEFAULT_WORKLOAD_MAX_AGE_S: float = 7 * 24 * 3600.0


def workload_max_age_seconds() -> float:
    """The workload-entry age limit the CLI's ``cache gc`` applies.

    ``REPRO_WORKLOAD_MAX_AGE_S`` overrides the one-week default; a
    non-positive value disables aging entirely (entries are kept forever).
    """
    env = os.environ.get(WORKLOAD_MAX_AGE_ENV)
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_WORKLOAD_MAX_AGE_S


def is_workload_benchmark_name(name: str) -> bool:
    """Whether a benchmark name is a workload spec (``family:params``).

    Canonical workload names always contain a colon (every family has
    parameters and canonicalisation fills the defaults in); Table I names
    never do.  Kept here — below the apps layer — as a plain syntactic check
    so the store can tag entries without importing the workload subsystem.
    """
    return ":" in name

#: The array members of a :class:`CompiledGraph`, in serialisation order.
ARRAY_FIELDS: Tuple[str, ...] = (
    "task_ids",
    "durations",
    "mem_bytes",
    "input_bytes",
    "output_bytes",
    "arg_bytes",
    "node_attr",
    "succ_indptr",
    "succ_indices",
    "pred_indptr",
    "pred_indices",
    "edge_bytes",
)


def code_version() -> str:
    """The code version hashed into compiled-graph (and result) cache keys.

    Defaults to the package version; ``REPRO_CODE_VERSION`` overrides it so
    development builds can segregate their caches without editing source.
    """
    env = os.environ.get("REPRO_CODE_VERSION")
    if env:
        return env
    from repro import __version__

    return __version__


def edge_comm_bytes(pred: TaskDescriptor, succ: TaskDescriptor) -> float:
    """Bytes transferred along a dependency edge that crosses nodes.

    Computed as the overlap between the predecessor's written regions and the
    successor's read regions; falls back to the predecessor's output size when
    no region information is available (pure-metadata graphs).
    """
    pred_writes = pred.write_regions()
    succ_reads = succ.read_regions()
    if not pred_writes or not succ_reads:
        return pred.output_bytes
    total = 0.0
    for w in pred_writes:
        for r in succ_reads:
            if w.overlaps(r):
                lo = max(w.offset, r.offset)
                hi = min(w.end, r.end)
                total += max(0.0, hi - lo)
    return total


@dataclass(frozen=True)
class CompiledGraph:
    """An immutable structure-of-arrays lowering of one :class:`TaskGraph`.

    All arrays are indexed by *dense task index* (submission order).  The CSR
    pairs (``succ_indptr``/``succ_indices`` and ``pred_indptr``/
    ``pred_indices``) store each task's successor/predecessor indices sorted
    by task id — the iteration order the reference simulator uses, which the
    fast path must reproduce for bit-identical tie-breaking.  ``edge_bytes``
    is aligned with ``succ_indices``: entry ``k`` is the communication payload
    of the edge ``(row of k) -> succ_indices[k]``.
    """

    task_ids: np.ndarray  #: int64[n] — descriptor task ids, submission order
    durations: np.ndarray  #: f8[n] — estimated compute durations (s)
    mem_bytes: np.ndarray  #: f8[n] — memory traffic (metadata override or arg sum)
    input_bytes: np.ndarray  #: f8[n] — bytes read (``in``/``inout``/values)
    output_bytes: np.ndarray  #: f8[n] — bytes written (``out``/``inout``)
    arg_bytes: np.ndarray  #: f8[n] — total argument bytes (the FIT basis)
    node_attr: np.ndarray  #: int64[n] — explicit node placement, -1 = free
    succ_indptr: np.ndarray  #: int64[n+1] — CSR row pointers (successors)
    succ_indices: np.ndarray  #: int64[nnz] — successor indices, sorted per row
    pred_indptr: np.ndarray  #: int64[n+1] — CSR row pointers (predecessors)
    pred_indices: np.ndarray  #: int64[nnz] — predecessor indices, sorted per row
    edge_bytes: np.ndarray  #: f8[nnz] — per-successor-edge comm payloads

    @property
    def n(self) -> int:
        """Number of tasks."""
        return int(self.task_ids.shape[0])

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return int(self.succ_indices.shape[0])

    @property
    def nbytes(self) -> int:
        """Total size of all arrays in bytes."""
        return int(sum(getattr(self, f).nbytes for f in ARRAY_FIELDS))

    def in_degrees(self) -> np.ndarray:
        """In-degree of every task (predecessor CSR row lengths)."""
        return np.diff(self.pred_indptr)

    def validate(self) -> None:
        """Check the structural invariants; raises ``ValueError`` on violation.

        Cheap (vectorized) checks only — run on every store load so a
        corrupted or truncated file can never reach the simulator.
        """
        n = self.n
        nnz = self.n_edges
        for field in ARRAY_FIELDS:
            arr = getattr(self, field)
            if arr.ndim != 1:
                raise ValueError(f"compiled graph field {field} is not 1-D")
        for field in ("durations", "mem_bytes", "input_bytes", "output_bytes",
                      "arg_bytes", "node_attr"):
            if getattr(self, field).shape[0] != n:
                raise ValueError(f"compiled graph field {field} has wrong length")
        for ptr_name, idx_name in (("succ_indptr", "succ_indices"),
                                   ("pred_indptr", "pred_indices")):
            ptr = getattr(self, ptr_name)
            idx = getattr(self, idx_name)
            if ptr.shape[0] != n + 1 or ptr[0] != 0 or ptr[-1] != idx.shape[0]:
                raise ValueError(f"compiled graph {ptr_name} is inconsistent")
            if np.any(np.diff(ptr) < 0):
                raise ValueError(f"compiled graph {ptr_name} is not monotone")
            if idx.shape[0] and (idx.min() < 0 or idx.max() >= n):
                raise ValueError(f"compiled graph {idx_name} is out of range")
        if self.pred_indices.shape[0] != nnz or self.edge_bytes.shape[0] != nnz:
            raise ValueError("compiled graph edge arrays disagree on edge count")
        if n and np.unique(self.task_ids).shape[0] != n:
            raise ValueError("compiled graph task ids are not unique")


def compile_graph(graph: TaskGraph) -> CompiledGraph:
    """Lower a :class:`TaskGraph` into its :class:`CompiledGraph` form.

    The per-task byte accumulations run in the same order as the reference
    paths (:class:`~repro.runtime.task.TaskDescriptor` property sums and the
    simulator's per-argument loop), so every stored float is bit-identical to
    what the object-graph paths would compute on the fly.

    Per-edge communication payloads are computed *eagerly* for every edge,
    although single-node simulations never read them: the on-disk form must
    be machine-independent (a worker may replay the same compiled graph on
    any node count), and one immutable layout keeps the replay loops free of
    a lazy-lookup branch.  The cost is compile-time only and small where it
    is pure waste (~0.2 s across all shared-memory graphs at scale 0.2 —
    graph *generation* dominates compilation there); the dense graphs where
    the scan is expensive (distributed linpack) are exactly the ones whose
    replays need the payloads.
    """
    tasks = graph.tasks()
    n = len(tasks)
    task_ids = np.empty(n, dtype=np.int64)
    durations = np.empty(n, dtype=np.float64)
    mem_bytes = np.empty(n, dtype=np.float64)
    input_bytes = np.empty(n, dtype=np.float64)
    output_bytes = np.empty(n, dtype=np.float64)
    arg_bytes = np.empty(n, dtype=np.float64)
    node_attr = np.full(n, -1, dtype=np.int64)
    index: Dict[int, int] = {}
    for i, t in enumerate(tasks):
        tid = t.task_id
        task_ids[i] = tid
        index[tid] = i
        durations[i] = t.duration_s
        in_b = 0.0
        out_b = 0.0
        all_b = 0.0
        for a in t.args:
            size = a.size_bytes
            direction = a.direction
            all_b += size
            if direction.reads:
                in_b += size
            if direction.writes:
                out_b += size
        mem = t.metadata.get("mem_bytes")
        mem_bytes[i] = float(all_b if mem is None else mem)
        input_bytes[i] = in_b
        output_bytes[i] = out_b
        arg_bytes[i] = all_b
        if t.node is not None:
            node_attr[i] = t.node

    succ_map = graph._succ
    pred_map = graph._pred
    succ_indptr = np.empty(n + 1, dtype=np.int64)
    pred_indptr = np.empty(n + 1, dtype=np.int64)
    succ_indptr[0] = 0
    pred_indptr[0] = 0
    succ_indices_l: List[int] = []
    pred_indices_l: List[int] = []
    edge_bytes_l: List[float] = []
    # Region lists are materialised once per task — not once per edge — and
    # flattened to (handle, offset, end) tuples so the overlap scan below
    # (the dominant compile cost on dense graphs) runs on plain floats.  The
    # scan mirrors :func:`edge_comm_bytes` term for term: zero-width overlaps
    # contribute exactly 0.0 there, so skipping them is bit-identical.
    write_regions = [
        [(r.handle, r.offset, r.offset + r.size_bytes) for r in t.write_regions()
         if r.size_bytes != 0]
        for t in tasks
    ]
    read_regions = [
        [(r.handle, r.offset, r.offset + r.size_bytes) for r in t.read_regions()
         if r.size_bytes != 0]
        for t in tasks
    ]
    has_writes = [bool(t.write_regions()) for t in tasks]
    has_reads = [bool(t.read_regions()) for t in tasks]
    for i, t in enumerate(tasks):
        tid = task_ids[i]
        row = [index[s] for s in sorted(succ_map[tid])]
        succ_indices_l.extend(row)
        pred_writes = write_regions[i]
        if not has_writes[i]:
            fallback = t.output_bytes
            edge_bytes_l.extend(fallback for _ in row)
        else:
            out_bytes = t.output_bytes
            for j in row:
                if not has_reads[j]:
                    edge_bytes_l.append(out_bytes)
                    continue
                total = 0.0
                for wh, wo, we in pred_writes:
                    for rh, ro, re_ in read_regions[j]:
                        if wh is rh and wo < re_ and ro < we:
                            lo = wo if wo > ro else ro
                            hi = we if we < re_ else re_
                            if hi > lo:
                                total += hi - lo
                edge_bytes_l.append(total)
        succ_indptr[i + 1] = len(succ_indices_l)
        pred_indices_l.extend(index[p] for p in sorted(pred_map[tid]))
        pred_indptr[i + 1] = len(pred_indices_l)

    return CompiledGraph(
        task_ids=task_ids,
        durations=durations,
        mem_bytes=mem_bytes,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        arg_bytes=arg_bytes,
        node_attr=node_attr,
        succ_indptr=succ_indptr,
        succ_indices=np.asarray(succ_indices_l, dtype=np.int64),
        pred_indptr=pred_indptr,
        pred_indices=np.asarray(pred_indices_l, dtype=np.int64),
        edge_bytes=np.asarray(edge_bytes_l, dtype=np.float64),
    )


# ---------------------------------------------------------------------------------
# deterministic .npz writing
# ---------------------------------------------------------------------------------


def write_npz_deterministic(fh, arrays: Dict[str, np.ndarray]) -> None:
    """Write an uncompressed ``.npz`` whose bytes depend only on the arrays.

    ``np.savez`` stamps each zip member with the current wall-clock time, so
    two processes compiling the same graph produce different files.  Here the
    member timestamps are pinned to the zip epoch and members are stored
    uncompressed in the given dict order, making the archive a pure function
    of its contents — which is what lets the determinism suite compare store
    files byte for byte across processes.  The layout (``ZIP_STORED`` ``.npy``
    members) is exactly what :func:`load_npz_arrays` memory-maps.
    """
    with zipfile.ZipFile(fh, "w", zipfile.ZIP_STORED) as zf:
        for name, arr in arrays.items():
            buf = io.BytesIO()
            np.lib.format.write_array(
                buf, np.ascontiguousarray(arr), allow_pickle=False
            )
            info = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            zf.writestr(info, buf.getvalue())


# ---------------------------------------------------------------------------------
# zero-copy .npz loading
# ---------------------------------------------------------------------------------


def _mmap_npz_arrays(path: str) -> Dict[str, np.ndarray]:
    """Memory-map every member of an uncompressed ``.npz`` read-only.

    ``np.savez`` stores members with ``ZIP_STORED`` (no compression), so each
    member's array data is a contiguous byte range of the archive.  This
    parses the zip local headers and the npy headers to find those ranges and
    hands each one to :class:`numpy.memmap` — the OS page cache then shares
    the physical pages between every process that maps the same file.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
        for info in zf.infolist():
            name = info.filename
            if not name.endswith(".npy"):
                raise ValueError(f"unexpected npz member {name!r}")
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"npz member {name!r} is compressed; cannot mmap")
            with zf.open(name) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
                else:
                    raise ValueError(f"unsupported npy format version {version}")
            if fortran or dtype.hasobject:
                raise ValueError(f"npz member {name!r} is not a plain C array")
            # The zip *local* header's name/extra lengths are independent of
            # the central directory's, so read them from the local header.
            fh.seek(info.header_offset + 26)
            name_len, extra_len = struct.unpack("<HH", fh.read(4))
            member_start = info.header_offset + 30 + name_len + extra_len
            header_size = info.file_size - int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if header_size < 0:
                raise ValueError(f"npz member {name!r} is truncated")
            count = int(np.prod(shape, dtype=np.int64))
            if count == 0:
                arr: np.ndarray = np.empty(shape, dtype=dtype)
            else:
                arr = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=member_start + header_size,
                    shape=tuple(shape),
                )
            arrays[name[: -len(".npy")]] = arr
    return arrays


def load_npz_arrays(path: str, mmap: bool = True) -> Dict[str, np.ndarray]:
    """Load all arrays of a ``.npz``, memory-mapped when possible.

    Falls back to a plain (copying) ``np.load`` when the archive cannot be
    mapped — compressed members, Fortran order, or an unexpected layout.
    """
    if mmap:
        try:
            return _mmap_npz_arrays(path)
        except (ValueError, OSError, struct.error, zipfile.BadZipFile):
            pass
    with np.load(path) as npz:
        return {name: npz[name] for name in npz.files}


# ---------------------------------------------------------------------------------
# the on-disk store
# ---------------------------------------------------------------------------------


def compiled_key(
    benchmark: str,
    scale: float,
    n_nodes: Optional[int] = None,
    version: Optional[str] = None,
) -> str:
    """Content hash of a compiled graph: SHA-256 over the graph's identity.

    A graph is identified by what generates it — benchmark name, problem
    scale, node count (the Figure 6 variants) — plus the code version, so a
    ``REPRO_CODE_VERSION`` bump (or a release) makes stale entries
    unreachable, exactly like the results store.
    """
    payload = {
        "format": COMPILED_FORMAT,
        "code_version": version if version is not None else code_version(),
        "benchmark": benchmark,
        "scale": scale,
        "n_nodes": n_nodes,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CompiledGraphStore:
    """A directory of content-addressed compiled graphs (``.npz`` + sidecar).

    Entries live under ``<root>/compiled/<key[:2]>/`` as ``<key>.npz`` (the
    arrays) plus ``<key>.json`` (provenance: benchmark, scale, node count,
    code version, sizes).  Writes are atomic (temp file + ``os.replace``, the
    sidecar last), so a torn write leaves at worst an orphan the next ``gc``
    collects, and concurrent workers compiling the same graph race benignly.
    """

    #: Subdirectory of the cache root holding compiled graphs.
    SUBDIR = "compiled"

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = os.path.join(os.path.abspath(root), self.SUBDIR)

    # -- paths ----------------------------------------------------------------

    def path_for(self, key: str) -> str:
        """The ``.npz`` file of a key."""
        return os.path.join(self.root, key[:2], key + ".npz")

    def meta_path_for(self, key: str) -> str:
        """The sidecar metadata file of a key."""
        return os.path.join(self.root, key[:2], key + ".json")

    def key(
        self, benchmark: str, scale: float, n_nodes: Optional[int] = None
    ) -> str:
        """The content hash of a graph configuration (see :func:`compiled_key`)."""
        return compiled_key(benchmark, scale, n_nodes)

    # -- read -----------------------------------------------------------------

    def load(
        self,
        benchmark: str,
        scale: float,
        n_nodes: Optional[int] = None,
        mmap: bool = True,
    ) -> Optional[CompiledGraph]:
        """The compiled graph of a configuration, or ``None`` on miss.

        A present-but-unreadable entry (truncated arrays, bad sidecar,
        failed invariants) is quarantined and reported as a miss, so callers
        simply recompile.
        """
        key = self.key(benchmark, scale, n_nodes)
        path = self.path_for(key)
        meta_path = self.meta_path_for(key)
        if not (os.path.exists(path) and os.path.exists(meta_path)):
            return None
        try:
            arrays = load_npz_arrays(path, mmap=mmap)
            compiled = CompiledGraph(**{f: arrays[f] for f in ARRAY_FIELDS})
            compiled.validate()
        except (
            KeyError,
            ValueError,
            OSError,
            zipfile.BadZipFile,
            # A torn zip need not fail cleanly: corruption overlapping the
            # central directory can make ``np.load`` hand back raw ``bytes``
            # for a member (no ``.shape`` → AttributeError in validate), and
            # truncation inside a header surfaces as EOFError/struct.error
            # from the zip machinery.  All of it is the same condition — an
            # interrupted or damaged write — so it all quarantines.
            AttributeError,
            EOFError,
            struct.error,
        ):
            self._quarantine(key)
            return None
        return compiled

    def contains(
        self, benchmark: str, scale: float, n_nodes: Optional[int] = None
    ) -> bool:
        """Whether a loadable entry exists for a configuration."""
        key = self.key(benchmark, scale, n_nodes)
        return os.path.exists(self.path_for(key)) and os.path.exists(
            self.meta_path_for(key)
        )

    # -- write ----------------------------------------------------------------

    def save(
        self,
        benchmark: str,
        scale: float,
        compiled: CompiledGraph,
        n_nodes: Optional[int] = None,
        elapsed_s: Optional[float] = None,
    ) -> str:
        """Persist one compiled graph; returns its key.

        The ``.npz`` is written before the sidecar, and both atomically, so a
        reader never observes a sidecar without its arrays.
        """
        key = self.key(benchmark, scale, n_nodes)
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            write_npz_deterministic(fh, {f: getattr(compiled, f) for f in ARRAY_FIELDS})
        os.replace(tmp, path)
        meta = {
            "format": COMPILED_FORMAT,
            "key": key,
            "benchmark": benchmark,
            "scale": scale,
            "n_nodes": n_nodes,
            "workload": is_workload_benchmark_name(benchmark),
            "code_version": code_version(),
            "created_at": time.time(),
            "elapsed_s": elapsed_s,
            "n_tasks": compiled.n,
            "n_edges": compiled.n_edges,
            "nbytes": compiled.nbytes,
        }
        meta_tmp = self.meta_path_for(key) + f".tmp.{os.getpid()}"
        with open(meta_tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        os.replace(meta_tmp, self.meta_path_for(key))
        return key

    def _quarantine(self, key: str) -> int:
        """Best-effort removal of one entry (arrays + sidecar).

        Returns the number of paths that could *not* be removed (a missing
        file is not a failure) so callers surface the count instead of
        silently leaving the entry behind.
        """
        failed = 0
        for path in (self.path_for(key), self.meta_path_for(key)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
            except OSError:
                failed += 1
        return failed

    # -- maintenance -----------------------------------------------------------

    def _meta_paths(self) -> List[str]:
        """Every sidecar file currently on disk, in stable (sharded) order."""
        paths: List[str] = []
        if not os.path.isdir(self.root):
            return paths
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and ".tmp." not in name:
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Iterate the metadata of every valid entry (corrupt ones skipped)."""
        for meta_path in self._meta_paths():
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (OSError, ValueError):
                continue
            if not isinstance(meta, dict) or "key" not in meta:
                continue
            yield meta

    def ls(self) -> List[Dict[str, Any]]:
        """One summary dict per entry (for ``repro cache ls``)."""
        rows: List[Dict[str, Any]] = []
        for meta in self.entries():
            rows.append(
                {
                    "key": str(meta.get("key", "?"))[:12],
                    "benchmark": meta.get("benchmark", "?"),
                    "scale": meta.get("scale", "?"),
                    "n_nodes": meta.get("n_nodes"),
                    "n_tasks": meta.get("n_tasks", "?"),
                    "n_edges": meta.get("n_edges", "?"),
                    "nbytes": meta.get("nbytes", 0),
                    "workload": bool(meta.get("workload", False)),
                    "code_version": meta.get("code_version", "?"),
                    "created_at": meta.get("created_at", 0.0),
                }
            )
        return rows

    def stats(self) -> Dict[str, Any]:
        """Aggregate store statistics (entry count, bytes, versions, workloads).

        ``unreadable`` counts sidecars that exist but cannot be read or
        parsed, and ``missing_arrays`` counts valid sidecars whose ``.npz``
        cannot be sized — both previously dropped without a trace, which made
        a half-broken store indistinguishable from a healthy one.
        """
        n_entries = 0
        n_bytes = 0
        n_workloads = 0
        unreadable = 0
        missing_arrays = 0
        versions: Dict[str, int] = {}
        for meta_path in self._meta_paths():
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (OSError, ValueError):
                unreadable += 1
                continue
            if not isinstance(meta, dict) or "key" not in meta:
                unreadable += 1
                continue
            n_entries += 1
            if meta.get("workload"):
                n_workloads += 1
            versions[str(meta.get("code_version"))] = (
                versions.get(str(meta.get("code_version")), 0) + 1
            )
            try:
                n_bytes += os.path.getsize(self.path_for(meta["key"]))
            except OSError:
                missing_arrays += 1
        return {
            "root": self.root,
            "entries": n_entries,
            "bytes": n_bytes,
            "workloads": n_workloads,
            "code_versions": versions,
            "unreadable": unreadable,
            "missing_arrays": missing_arrays,
        }

    def gc(self, workload_max_age_s: Optional[float] = None) -> Dict[str, int]:
        """Drop stale entries (wrong code version), orphans and temp files.

        ``workload_max_age_s`` additionally ages out compiled *workload*
        graphs older than the limit (counted as ``aged``): the synthetic-spec
        space is unbounded, so one-off sweeps would otherwise accumulate
        orphaned entries forever.  ``None`` (the library default) disables
        aging; the CLI passes :data:`DEFAULT_WORKLOAD_MAX_AGE_S` or the
        ``REPRO_WORKLOAD_MAX_AGE_S`` override.  Table I entries never age.

        The summary's ``skipped`` counts paths that should have been removed
        but could not be (permissions, a directory squatting on an entry
        path, ...): a nonzero value means the store still holds garbage.
        """
        current = code_version()
        now = time.time()
        removed_stale = 0
        removed_orphan = 0
        removed_tmp = 0
        removed_aged = 0
        skipped = 0
        if not os.path.isdir(self.root):
            return {"stale": 0, "orphan": 0, "tmp": 0, "aged": 0, "skipped": 0}
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            names = sorted(os.listdir(shard_dir))
            sidecars = {n for n in names if n.endswith(".json") and ".tmp." not in n}
            for name in names:
                path = os.path.join(shard_dir, name)
                if ".tmp." in name:
                    try:
                        os.remove(path)
                        removed_tmp += 1
                    except OSError:
                        skipped += 1
                    continue
                if name.endswith(".npz"):
                    if name[: -len(".npz")] + ".json" not in sidecars:
                        try:
                            os.remove(path)
                            removed_orphan += 1
                        except OSError:
                            skipped += 1
                    continue
                if not name.endswith(".json"):
                    continue
                key = name[: -len(".json")]
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        meta = json.load(fh)
                    version = meta.get("code_version")
                except (OSError, ValueError, AttributeError):
                    meta = {}
                    version = None
                if version != current:
                    failed = self._quarantine(key)
                    skipped += failed
                    if failed == 0:
                        removed_stale += 1
                    continue
                if (
                    workload_max_age_s is not None
                    and meta.get("workload")
                    and now - float(meta.get("created_at", 0.0)) > workload_max_age_s
                ):
                    failed = self._quarantine(key)
                    skipped += failed
                    if failed == 0:
                        removed_aged += 1
            if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                try:
                    os.rmdir(shard_dir)
                except OSError:
                    pass
        return {
            "stale": removed_stale,
            "orphan": removed_orphan,
            "tmp": removed_tmp,
            "aged": removed_aged,
            "skipped": skipped,
        }

    def clear(self) -> int:
        """Delete every entry (the root directory itself is kept). Returns count."""
        removed = 0
        for meta in list(self.entries()):
            self._quarantine(meta["key"])
            removed += 1
        self.gc()
        return removed
