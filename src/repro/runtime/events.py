"""Runtime event records.

The replication engine and executor append :class:`RuntimeEvent` entries to an
:class:`EventLog`; the analysis layer turns the log into the percentages the
paper reports (fraction of tasks replicated, fraction of computation time
replicated, recovery counts, ...).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    """Kinds of events recorded during a run."""

    TASK_SUBMITTED = "task_submitted"
    TASK_STARTED = "task_started"
    TASK_FINISHED = "task_finished"
    TASK_REPLICATED = "task_replicated"
    REPLICA_FINISHED = "replica_finished"
    CHECKPOINT_TAKEN = "checkpoint_taken"
    CHECKPOINT_RESTORED = "checkpoint_restored"
    COMPARISON_PERFORMED = "comparison_performed"
    SDC_DETECTED = "sdc_detected"
    SDC_CORRECTED = "sdc_corrected"
    SDC_UNDETECTED = "sdc_undetected"
    CRASH_DETECTED = "crash_detected"
    CRASH_RECOVERED = "crash_recovered"
    CRASH_FATAL = "crash_fatal"
    REEXECUTION = "reexecution"
    VOTE_PERFORMED = "vote_performed"
    FIT_UPDATED = "fit_updated"


@dataclass
class RuntimeEvent:
    """One event in a run's history."""

    kind: EventKind
    task_id: Optional[int] = None
    timestamp: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Thread-safe append-only list of :class:`RuntimeEvent`."""

    def __init__(self) -> None:
        self._events: List[RuntimeEvent] = []
        self._lock = threading.Lock()

    def record(
        self,
        kind: EventKind,
        task_id: Optional[int] = None,
        timestamp: float = 0.0,
        **details: Any,
    ) -> RuntimeEvent:
        """Append an event and return it."""
        event = RuntimeEvent(kind=kind, task_id=task_id, timestamp=timestamp, details=details)
        with self._lock:
            self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[RuntimeEvent]:
        with self._lock:
            return iter(list(self._events))

    def events(self, kind: Optional[EventKind] = None) -> List[RuntimeEvent]:
        """All events, optionally filtered by kind."""
        with self._lock:
            evts = list(self._events)
        if kind is None:
            return evts
        return [e for e in evts if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Number of events of a kind."""
        return len(self.events(kind))

    def counts(self) -> Dict[str, int]:
        """Histogram of event kinds by name."""
        hist: Dict[str, int] = {}
        for e in self.events():
            hist[e.kind.value] = hist.get(e.kind.value, 0) + 1
        return hist

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()
