"""Dataflow dependency inference (OmpSs-style readers/writers analysis).

Dependencies between tasks are inferred from the regions their annotated
arguments cover, exactly as a dataflow runtime does:

* a task that **reads** a region depends on the last task that wrote an
  overlapping region (read-after-write);
* a task that **writes** a region depends on the last writer (write-after-
  write) *and* on every task that read the region since that writer
  (write-after-read).

The tracker is incremental: tasks are registered in program order and the set
of edges to already-registered tasks is returned immediately, which is how the
:class:`~repro.runtime.runtime.TaskRuntime` builds its graph on the fly.

``register`` is the single hottest function of graph generation (it runs once
per task of every Table I benchmark), so the per-handle bookkeeping buckets
accesses by their exact byte interval: all accesses of one bucket share one
``(offset, end)`` range, so an overlap or covering test against a new region
has a single verdict for the whole bucket and the (potentially long) writer
and reader id lists can be merged into the dependency set in one C-level
``set.update``.  The recorded semantics are identical to the region objects'
own ``overlaps``/covering rules, including the zero-size-region cases —
benchmarks access each handle through a handful of distinct block intervals,
which is what makes the bucketing effective.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.runtime.task import Direction, TaskDescriptor

#: Per-handle state: one bucket per distinct ``(offset, end)`` interval,
#: holding ``[writer task ids, reader-since-write task ids]``.
_Interval = Tuple[float, float]
_Buckets = Dict[_Interval, List[List[int]]]


class DependencyTracker:
    """Incrementally infers task dependencies from argument regions."""

    def __init__(self) -> None:
        self._state: Dict[int, _Buckets] = {}

    def register(self, task: TaskDescriptor) -> Set[int]:
        """Register ``task`` and return ids of tasks it depends on.

        The returned set only ever contains ids of tasks registered earlier,
        so feeding tasks in program order yields an acyclic graph.
        """
        deps: Set[int] = set()
        tid = task.task_id
        state = self._state

        read_regions: List[Tuple[int, float, float]] = []
        write_regions: List[Tuple[int, float, float]] = []
        for arg in task.args:
            region = arg.region
            direction = arg.direction
            if region is None or direction is Direction.VALUE:
                continue
            offset = region.offset
            entry = (region.handle.handle_id, offset, offset + region.size_bytes)
            if direction.reads:
                read_regions.append(entry)
            if direction.writes:
                write_regions.append(entry)

        # Read-after-write: depend on the last writer of any overlapping region.
        # (A zero-size region overlaps nothing, matching DataRegion.overlaps.)
        for key, offset, end in read_regions:
            buckets = state.get(key)
            if buckets is None or end <= offset:
                continue
            for (b_off, b_end), (writers, _readers) in buckets.items():
                if offset < b_end and b_off < end and b_off < b_end and writers:
                    deps.update(writers)

        # Write-after-write and write-after-read.
        for key, offset, end in write_regions:
            buckets = state.get(key)
            if buckets is None or end <= offset:
                continue
            for (b_off, b_end), (writers, readers) in buckets.items():
                if offset < b_end and b_off < end and b_off < b_end:
                    deps.update(writers)
                    deps.update(readers)

        # Record this task's accesses.  A write to a region supersedes earlier
        # writers/readers of the overlapping part; for simplicity (and matching
        # whole-block accesses used by all the paper's benchmarks) we retire
        # accesses that are fully covered by the new write.
        for key, offset, end in write_regions:
            buckets = state.get(key)
            if buckets is None:
                buckets = state[key] = {}
            else:
                covered = [
                    iv for iv in buckets if offset <= iv[0] and end >= iv[1]
                ]
                for iv in covered:
                    del buckets[iv]
            bucket = buckets.get((offset, end))
            if bucket is None:
                buckets[(offset, end)] = bucket = [[], []]
            bucket[0].append(tid)
        for key, offset, end in read_regions:
            buckets = state.get(key)
            if buckets is None:
                buckets = state[key] = {}
            bucket = buckets.get((offset, end))
            if bucket is None:
                buckets[(offset, end)] = bucket = [[], []]
            bucket[1].append(tid)

        # A task never depends on itself (its own accesses are recorded after
        # the scans, but bucket merges are defensive about re-registration).
        deps.discard(tid)
        return deps

    def reset(self) -> None:
        """Forget all recorded accesses (used by ``taskwait`` barriers)."""
        self._state.clear()

    def stats(self) -> Tuple[int, int]:
        """Return (number of tracked handles, number of recorded accesses)."""
        handles = len(self._state)
        accesses = sum(
            len(writers) + len(readers)
            for buckets in self._state.values()
            for writers, readers in buckets.values()
        )
        return handles, accesses
