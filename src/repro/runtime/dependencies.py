"""Dataflow dependency inference (OmpSs-style readers/writers analysis).

Dependencies between tasks are inferred from the regions their annotated
arguments cover, exactly as a dataflow runtime does:

* a task that **reads** a region depends on the last task that wrote an
  overlapping region (read-after-write);
* a task that **writes** a region depends on the last writer (write-after-
  write) *and* on every task that read the region since that writer
  (write-after-read).

The tracker is incremental: tasks are registered in program order and the set
of edges to already-registered tasks is returned immediately, which is how the
:class:`~repro.runtime.runtime.TaskRuntime` builds its graph on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.runtime.task import DataRegion, TaskDescriptor


@dataclass
class _RegionAccess:
    """A recorded access (read or write) to a region by a task."""

    task_id: int
    region: DataRegion


@dataclass
class _HandleState:
    """Readers/writers bookkeeping for one data handle."""

    writes: List[_RegionAccess] = field(default_factory=list)
    reads_since_write: List[_RegionAccess] = field(default_factory=list)


class DependencyTracker:
    """Incrementally infers task dependencies from argument regions."""

    def __init__(self) -> None:
        self._state: Dict[int, _HandleState] = {}

    def _handle_state(self, region: DataRegion) -> _HandleState:
        key = region.handle.handle_id
        if key not in self._state:
            self._state[key] = _HandleState()
        return self._state[key]

    def register(self, task: TaskDescriptor) -> Set[int]:
        """Register ``task`` and return ids of tasks it depends on.

        The returned set only ever contains ids of tasks registered earlier,
        so feeding tasks in program order yields an acyclic graph.
        """
        deps: Set[int] = set()

        read_regions = task.read_regions()
        write_regions = task.write_regions()

        # Read-after-write: depend on the last writer of any overlapping region.
        for region in read_regions:
            state = self._handle_state(region)
            for access in state.writes:
                if access.task_id != task.task_id and region.overlaps(access.region):
                    deps.add(access.task_id)

        # Write-after-write and write-after-read.
        for region in write_regions:
            state = self._handle_state(region)
            for access in state.writes:
                if access.task_id != task.task_id and region.overlaps(access.region):
                    deps.add(access.task_id)
            for access in state.reads_since_write:
                if access.task_id != task.task_id and region.overlaps(access.region):
                    deps.add(access.task_id)

        # Record this task's accesses.  A write to a region supersedes earlier
        # writers/readers of the overlapping part; for simplicity (and matching
        # whole-block accesses used by all the paper's benchmarks) we retire
        # accesses that are fully covered by the new write.
        for region in write_regions:
            state = self._handle_state(region)
            state.writes = [
                a for a in state.writes if not _covers(region, a.region)
            ]
            state.reads_since_write = [
                a for a in state.reads_since_write if not _covers(region, a.region)
            ]
            state.writes.append(_RegionAccess(task.task_id, region))
        for region in read_regions:
            state = self._handle_state(region)
            state.reads_since_write.append(_RegionAccess(task.task_id, region))

        return deps

    def reset(self) -> None:
        """Forget all recorded accesses (used by ``taskwait`` barriers)."""
        self._state.clear()

    def stats(self) -> Tuple[int, int]:
        """Return (number of tracked handles, number of recorded accesses)."""
        handles = len(self._state)
        accesses = sum(
            len(s.writes) + len(s.reads_since_write) for s in self._state.values()
        )
        return handles, accesses


def _covers(outer: DataRegion, inner: DataRegion) -> bool:
    """Whether ``outer`` fully covers ``inner`` (same handle)."""
    if outer.handle is not inner.handle:
        return False
    return outer.offset <= inner.offset and outer.end >= inner.end
