"""A small worker thread pool for functional task execution.

Nanos++ keeps a pool of idle threads that poll the ready queues and execute
task descriptors asynchronously; this mirrors that structure at the scale a
Python reproduction needs (the GIL limits true parallelism, but the pool keeps
the execution model — asynchronous, out-of-order, replica-on-spare-thread —
faithful, which is what the correctness tests exercise).
"""

from __future__ import annotations

import queue
import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple


@dataclass
class WorkItem:
    """A unit of work: a callable plus a completion callback."""

    func: Callable[[], Any]
    on_done: Optional[Callable[[Any, Optional[BaseException]], None]] = None


class ThreadPool:
    """Fixed-size pool of daemon worker threads consuming a shared queue."""

    def __init__(self, n_workers: int, name: str = "repro-worker") -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self._queue: "queue.Queue[Optional[WorkItem]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        self._lock = threading.Lock()
        self._errors: List[Tuple[BaseException, str]] = []
        for i in range(n_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"{name}-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def _worker_loop(self) -> None:
        """Worker thread body: drain the queue until the shutdown sentinel."""
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            result: Any = None
            error: Optional[BaseException] = None
            try:
                result = item.func()
            except BaseException as exc:  # noqa: BLE001 - surfaced via callback
                error = exc
                with self._lock:
                    self._errors.append((exc, traceback.format_exc()))
            try:
                if item.on_done is not None:
                    item.on_done(result, error)
            finally:
                self._queue.task_done()

    def submit(
        self,
        func: Callable[[], Any],
        on_done: Optional[Callable[[Any, Optional[BaseException]], None]] = None,
    ) -> None:
        """Enqueue a callable for asynchronous execution."""
        if self._shutdown:
            raise RuntimeError("cannot submit work to a shut-down pool")
        self._queue.put(WorkItem(func, on_done))

    def wait_idle(self) -> None:
        """Block until every submitted item has been processed."""
        self._queue.join()

    def errors(self) -> List[Tuple[BaseException, str]]:
        """Uncaught exceptions raised by work items (exception, traceback)."""
        with self._lock:
            return list(self._errors)

    def shutdown(self) -> None:
        """Stop all workers after draining the queue."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=10.0)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
