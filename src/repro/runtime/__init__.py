"""A Nanos-like task-dataflow runtime substrate.

The paper implements its replication framework inside the OmpSs programming
model and the Nanos++ runtime.  This package provides the equivalent substrate
in pure Python:

* :mod:`repro.runtime.task` — task descriptors with ``in``/``out``/``inout``
  argument annotations and argument sizes (the only information App_FIT needs).
* :mod:`repro.runtime.dependencies` — automatic dataflow dependency inference
  from argument regions (readers/writers analysis, as in OmpSs).
* :mod:`repro.runtime.graph` — the task dependency DAG with critical-path and
  parallelism analysis used by the machine simulator.
* :mod:`repro.runtime.scheduler` — ready-queue scheduling of the DAG.
* :mod:`repro.runtime.threadpool` / :mod:`repro.runtime.executor` — real
  multi-threaded execution of Python task bodies (functional mode).
* :mod:`repro.runtime.runtime` — the :class:`TaskRuntime` facade that user code
  (the examples and functional benchmarks) programs against.
* :mod:`repro.runtime.compiled` — structure-of-arrays lowering of task graphs
  plus the content-addressed on-disk compiled-graph store the experiment
  engine's worker processes memory-map instead of rebuilding graphs.
"""

from repro.runtime.task import (
    Direction,
    DataHandle,
    DataRegion,
    TaskArgument,
    TaskDescriptor,
    arg_in,
    arg_inout,
    arg_out,
    arg_value,
)
from repro.runtime.compiled import CompiledGraph, CompiledGraphStore, compile_graph
from repro.runtime.dependencies import DependencyTracker
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ReadyScheduler, SchedulingPolicy
from repro.runtime.threadpool import ThreadPool
from repro.runtime.executor import ExecutionResult, GraphExecutor
from repro.runtime.runtime import TaskRuntime, RuntimeConfig
from repro.runtime.events import RuntimeEvent, EventKind, EventLog

__all__ = [
    "CompiledGraph",
    "CompiledGraphStore",
    "DataHandle",
    "DataRegion",
    "DependencyTracker",
    "Direction",
    "EventKind",
    "EventLog",
    "ExecutionResult",
    "GraphExecutor",
    "ReadyScheduler",
    "RuntimeConfig",
    "RuntimeEvent",
    "SchedulingPolicy",
    "TaskArgument",
    "TaskDescriptor",
    "TaskGraph",
    "TaskRuntime",
    "ThreadPool",
    "arg_in",
    "arg_inout",
    "arg_out",
    "arg_value",
    "compile_graph",
]
