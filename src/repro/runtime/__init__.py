"""A Nanos-like task-dataflow runtime substrate.

The paper implements its replication framework inside the OmpSs programming
model and the Nanos++ runtime.  This package provides the equivalent substrate
in pure Python:

* :mod:`repro.runtime.task` — task descriptors with ``in``/``out``/``inout``
  argument annotations and argument sizes (the only information App_FIT needs).
* :mod:`repro.runtime.dependencies` — automatic dataflow dependency inference
  from argument regions (readers/writers analysis, as in OmpSs).
* :mod:`repro.runtime.graph` — the task dependency DAG with critical-path and
  parallelism analysis used by the machine simulator.
* :mod:`repro.runtime.scheduler` — ready-queue scheduling of the DAG.
* :mod:`repro.runtime.threadpool` / :mod:`repro.runtime.executor` — real
  multi-threaded execution of Python task bodies (functional mode).
* :mod:`repro.runtime.runtime` — the :class:`TaskRuntime` facade that user code
  (the examples and functional benchmarks) programs against.
* :mod:`repro.runtime.compiled` — structure-of-arrays lowering of task graphs
  plus the content-addressed on-disk compiled-graph store the experiment
  engine's worker processes memory-map instead of rebuilding graphs.
"""

from repro._lazy import lazy_exports

#: Public name -> defining module, resolved lazily on first access (see
#: :mod:`repro._lazy`): simulation-mode consumers import only the compiled
#: graphs and never pay for the threaded execution substrate.
_EXPORTS = {
    "Direction": "repro.runtime.task",
    "DataHandle": "repro.runtime.task",
    "DataRegion": "repro.runtime.task",
    "TaskArgument": "repro.runtime.task",
    "TaskDescriptor": "repro.runtime.task",
    "arg_in": "repro.runtime.task",
    "arg_inout": "repro.runtime.task",
    "arg_out": "repro.runtime.task",
    "arg_value": "repro.runtime.task",
    "CompiledGraph": "repro.runtime.compiled",
    "CompiledGraphStore": "repro.runtime.compiled",
    "compile_graph": "repro.runtime.compiled",
    "DependencyTracker": "repro.runtime.dependencies",
    "TaskGraph": "repro.runtime.graph",
    "ReadyScheduler": "repro.runtime.scheduler",
    "SchedulingPolicy": "repro.runtime.scheduler",
    "ThreadPool": "repro.runtime.threadpool",
    "ExecutionResult": "repro.runtime.executor",
    "GraphExecutor": "repro.runtime.executor",
    "TaskRuntime": "repro.runtime.runtime",
    "RuntimeConfig": "repro.runtime.runtime",
    "RuntimeEvent": "repro.runtime.events",
    "EventKind": "repro.runtime.events",
    "EventLog": "repro.runtime.events",
}

__getattr__, __dir__ = lazy_exports(
    __name__,
    _EXPORTS,
    submodules=(
        "compiled",
        "dependencies",
        "events",
        "executor",
        "graph",
        "runtime",
        "scheduler",
        "task",
        "threadpool",
    ),
)

__all__ = [
    "CompiledGraph",
    "CompiledGraphStore",
    "DataHandle",
    "DataRegion",
    "DependencyTracker",
    "Direction",
    "EventKind",
    "EventLog",
    "ExecutionResult",
    "GraphExecutor",
    "ReadyScheduler",
    "RuntimeConfig",
    "RuntimeEvent",
    "SchedulingPolicy",
    "TaskArgument",
    "TaskDescriptor",
    "TaskGraph",
    "TaskRuntime",
    "ThreadPool",
    "arg_in",
    "arg_inout",
    "arg_out",
    "arg_value",
    "compile_graph",
]
