"""The task dependency DAG.

The graph is the common currency between the runtime (which builds it), the
selection policies (which walk its tasks in submission order), the functional
executor (which runs it with real threads) and the machine simulator (which
replays it against a resource model).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.runtime.task import TaskDescriptor


@dataclass
class GraphStats:
    """Summary statistics of a task graph."""

    n_tasks: int
    n_edges: int
    total_work_s: float
    critical_path_s: float
    max_width: int
    total_argument_bytes: float

    @property
    def average_parallelism(self) -> float:
        """Total work divided by the critical path (ideal speedup bound)."""
        if self.critical_path_s <= 0:
            return float(self.n_tasks) if self.n_tasks else 0.0
        return self.total_work_s / self.critical_path_s


class TaskGraph:
    """A directed acyclic graph of :class:`TaskDescriptor` nodes."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._tasks: Dict[int, TaskDescriptor] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        self._order: List[int] = []  # submission order

    # -- construction --------------------------------------------------------

    def add_task(self, task: TaskDescriptor, deps: Iterable[int] = ()) -> None:
        """Add ``task`` with dependencies on already-present task ids."""
        tid = task.task_id
        if tid in self._tasks:
            raise ValueError(f"duplicate task id {tid}")
        self._tasks[tid] = task
        succ = self._succ
        succ[tid] = set()
        pred = self._pred[tid] = set()
        self._order.append(tid)
        # Inlined add_edge (this loop inserts millions of edges for the Table I
        # graphs); the validation is the same, dst is known by construction.
        for dep in deps:
            dep_succ = succ.get(dep)
            if dep_succ is None:
                raise KeyError(f"unknown source task {dep}")
            if dep == tid:
                raise ValueError(f"self-dependency on task {dep}")
            dep_succ.add(tid)
            pred.add(dep)

    def add_edge(self, src: int, dst: int) -> None:
        """Add a dependency edge ``src -> dst`` (dst depends on src)."""
        if src not in self._tasks:
            raise KeyError(f"unknown source task {src}")
        if dst not in self._tasks:
            raise KeyError(f"unknown destination task {dst}")
        if src == dst:
            raise ValueError(f"self-dependency on task {src}")
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    # -- accessors ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def task(self, task_id: int) -> TaskDescriptor:
        """The descriptor for ``task_id``."""
        return self._tasks[task_id]

    def tasks(self) -> List[TaskDescriptor]:
        """All tasks in submission order."""
        return [self._tasks[t] for t in self._order]

    def task_ids(self) -> List[int]:
        """All task ids in submission order."""
        return list(self._order)

    def successors(self, task_id: int) -> Set[int]:
        """Ids of tasks that depend on ``task_id``."""
        return set(self._succ[task_id])

    def predecessors(self, task_id: int) -> Set[int]:
        """Ids of tasks ``task_id`` depends on."""
        return set(self._pred[task_id])

    def in_degree(self, task_id: int) -> int:
        """Number of unsatisfied dependencies when nothing has run."""
        return len(self._pred[task_id])

    def roots(self) -> List[int]:
        """Tasks with no dependencies, in submission order."""
        return [t for t in self._order if not self._pred[t]]

    def leaves(self) -> List[int]:
        """Tasks nothing depends on, in submission order."""
        return [t for t in self._order if not self._succ[t]]

    def n_edges(self) -> int:
        """Total number of dependency edges."""
        return sum(len(s) for s in self._succ.values())

    # -- analysis -------------------------------------------------------------

    def topological_order(self) -> List[int]:
        """A topological ordering (raises if the graph has a cycle)."""
        in_deg = {t: len(self._pred[t]) for t in self._order}
        ready = deque(t for t in self._order if in_deg[t] == 0)
        out: List[int] = []
        while ready:
            t = ready.popleft()
            out.append(t)
            for s in sorted(self._succ[t]):
                in_deg[s] -= 1
                if in_deg[s] == 0:
                    ready.append(s)
        if len(out) != len(self._tasks):
            raise ValueError(f"task graph {self.name!r} contains a cycle")
        return out

    def is_acyclic(self) -> bool:
        """Whether the graph is a DAG."""
        try:
            self.topological_order()
            return True
        except ValueError:
            return False

    def critical_path_seconds(self) -> float:
        """Length of the longest duration-weighted path (lower bound on makespan)."""
        finish: Dict[int, float] = {}
        for t in self.topological_order():
            start = max((finish[p] for p in self._pred[t]), default=0.0)
            finish[t] = start + self._tasks[t].duration_s
        return max(finish.values(), default=0.0)

    def total_work_seconds(self) -> float:
        """Sum of all task durations."""
        return sum(t.duration_s for t in self._tasks.values())

    def total_argument_bytes(self) -> float:
        """Sum of argument sizes across all tasks."""
        return sum(t.argument_bytes for t in self._tasks.values())

    def max_width(self) -> int:
        """Maximum number of tasks with identical depth (a parallelism proxy)."""
        depth: Dict[int, int] = {}
        for t in self.topological_order():
            depth[t] = 1 + max((depth[p] for p in self._pred[t]), default=-1)
        if not depth:
            return 0
        counts: Dict[int, int] = {}
        for d in depth.values():
            counts[d] = counts.get(d, 0) + 1
        return max(counts.values())

    def stats(self) -> GraphStats:
        """Compute :class:`GraphStats` for the graph."""
        return GraphStats(
            n_tasks=len(self._tasks),
            n_edges=self.n_edges(),
            total_work_s=self.total_work_seconds(),
            critical_path_s=self.critical_path_seconds(),
            max_width=self.max_width(),
            total_argument_bytes=self.total_argument_bytes(),
        )

    def iter_submission_order(self) -> Iterator[TaskDescriptor]:
        """Iterate descriptors in submission (program) order."""
        for t in self._order:
            yield self._tasks[t]

    def subgraph_types(self) -> Dict[str, int]:
        """Histogram of task types (useful for benchmark sanity checks)."""
        hist: Dict[str, int] = {}
        for t in self._tasks.values():
            hist[t.task_type] = hist.get(t.task_type, 0) + 1
        return hist
