"""Functional execution of a task graph on the thread pool.

The executor materialises each task's arguments (the NumPy arrays backing its
regions plus any by-value arguments), invokes the task body, and releases its
successors.  A pluggable *execution hook* wraps every task invocation — this is
where the replication engine inserts checkpointing, replica execution, output
comparison and recovery without the executor (or the application) knowing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.runtime.events import EventKind, EventLog
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ReadyScheduler, SchedulingPolicy
from repro.runtime.task import DataRegion, Direction, TaskDescriptor
from repro.runtime.threadpool import ThreadPool


def region_view(region: DataRegion) -> Optional[np.ndarray]:
    """A writable NumPy view of exactly the bytes ``region`` covers.

    This is the unit the snapshot/restore machinery of the replication
    protocol operates on.  Scoping snapshots, checkpoint restores and output
    commits to the *region* (rather than the whole backing array, as early
    versions did) is what makes recovery safe under concurrent workers: two
    tasks touching disjoint blocks of one registered array can crash, replay
    and commit independently without clobbering each other's bytes.

    Returns ``None`` when the region's handle has no backing storage (a
    simulation-only graph).  A region that covers the whole handle returns the
    storage array itself.  Partial regions keep the storage dtype whenever the
    byte range is element-aligned (so tolerance-based output comparators keep
    seeing floats, exactly as whole-array snapshots did) and only fall back to
    a raw ``uint8`` byte view for unaligned ranges.  Non-contiguous storage
    (no byte-exact view possible) falls back to the whole array — registered
    arrays are made contiguous by ``TaskRuntime.register_array``, so this
    fallback is never hit for runtime-built graphs.
    """
    storage = region.handle.storage
    if storage is None:
        return None
    start = int(region.offset)
    size = int(region.size_bytes)
    if start == 0 and size >= storage.nbytes:
        return storage
    if not storage.flags.c_contiguous:
        return storage
    flat = storage.reshape(-1)
    itemsize = flat.itemsize
    if start % itemsize == 0 and size % itemsize == 0:
        return flat[start // itemsize : (start + size) // itemsize]
    return flat.view(np.uint8)[start : start + size]


def region_key(region: DataRegion) -> Tuple[int, int, int]:
    """Hashable identity of a region's byte range (for snapshot dedup/maps)."""
    return (region.handle.handle_id, int(region.offset), int(region.size_bytes))


def task_write_views(task: TaskDescriptor) -> List[np.ndarray]:
    """Views of the byte ranges ``task`` writes (``out`` + ``inout``), deduplicated.

    The replication protocol snapshots, compares and commits exactly these
    bytes — the task's output footprint — never the whole backing arrays.
    """
    seen: Dict[Tuple[int, int, int], np.ndarray] = {}
    for arg in task.args:
        if arg.region is None or not arg.direction.writes:
            continue
        view = region_view(arg.region)
        if view is not None:
            seen.setdefault(region_key(arg.region), view)
    return list(seen.values())


def materialize_arguments(task: TaskDescriptor) -> List[Any]:
    """Build the positional argument list passed to a task's Python body.

    Region-bearing arguments contribute their handle's backing array; by-value
    arguments contribute their value.  Raises if a region argument has no
    backing storage (i.e. the graph was built for simulation only).
    """
    out: List[Any] = []
    for arg in task.args:
        if arg.direction is Direction.VALUE:
            out.append(arg.value)
        else:
            if arg.region is None or arg.region.handle.storage is None:
                raise ValueError(
                    f"task {task.task_id} ({task.task_type}) argument "
                    f"{arg.name!r} has no backing storage; functional execution "
                    "requires DataHandles created with NumPy arrays"
                )
            out.append(arg.region.handle.storage)
    return out


def invoke_task(task: TaskDescriptor) -> Any:
    """Run a task's Python body on its materialised arguments."""
    if task.func is None:
        return None
    return task.func(*materialize_arguments(task))


class TaskExecutionHook(Protocol):
    """Protocol for objects that wrap task execution (e.g. the replication engine).

    A hook may additionally define ``prepare_graph(graph)``; the executor
    calls it once, before any task is dispatched.  Hooks whose per-task
    decisions are order-sensitive (App_FIT accumulates a FIT account) use it
    to take every decision in *submission order* up front, so the decision set
    — and therefore the injected-fault multiset — is a pure function of the
    graph rather than of the worker schedule.
    """

    def execute(self, task: TaskDescriptor, invoke: Callable[[TaskDescriptor], Any]) -> Any:
        """Run ``task`` (possibly with protection) using ``invoke`` for the raw body."""
        ...  # pragma: no cover - protocol definition


class PassthroughHook:
    """Default hook: run the task body once with no protection."""

    def execute(self, task: TaskDescriptor, invoke: Callable[[TaskDescriptor], Any]) -> Any:
        """Invoke the task body directly."""
        return invoke(task)


@dataclass
class ExecutionResult:
    """Outcome of running a graph functionally."""

    graph: TaskGraph
    wall_time_s: float
    tasks_executed: int
    events: EventLog
    per_task_wall_s: Dict[int, float] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether every task executed without an unhandled error."""
        return not self.errors and self.tasks_executed == len(self.graph)


class GraphExecutor:
    """Executes a :class:`TaskGraph` with worker threads and an execution hook."""

    def __init__(
        self,
        n_workers: int = 4,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        hook: Optional[TaskExecutionHook] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.policy = policy
        self.hook: TaskExecutionHook = hook if hook is not None else PassthroughHook()
        self.events = event_log if event_log is not None else EventLog()

    def run(self, graph: TaskGraph) -> ExecutionResult:
        """Execute every task of ``graph`` respecting its dependencies."""
        prepare = getattr(self.hook, "prepare_graph", None)
        if prepare is not None:
            prepare(graph)
        scheduler = ReadyScheduler(graph, policy=self.policy)
        per_task_wall: Dict[int, float] = {}
        errors: List[str] = []
        executed = 0
        lock = threading.Lock()
        done = threading.Event()
        if len(graph) == 0:
            return ExecutionResult(
                graph=graph, wall_time_s=0.0, tasks_executed=0, events=self.events
            )

        pool = ThreadPool(self.n_workers)
        start_time = time.perf_counter()

        def dispatch_ready() -> None:
            while True:
                task_id = scheduler.pop_ready()
                if task_id is None:
                    return
                pool.submit(lambda tid=task_id: run_one(tid))

        def run_one(task_id: int) -> None:
            nonlocal executed
            task = graph.task(task_id)
            self.events.record(EventKind.TASK_STARTED, task_id=task_id)
            t0 = time.perf_counter()
            try:
                self.hook.execute(task, invoke_task)
            except BaseException as exc:  # noqa: BLE001 - recorded and surfaced
                with lock:
                    errors.append(f"task {task_id} ({task.task_type}): {exc!r}")
            elapsed = time.perf_counter() - t0
            self.events.record(
                EventKind.TASK_FINISHED, task_id=task_id, details_wall_s=elapsed
            )
            with lock:
                per_task_wall[task_id] = elapsed
                executed += 1
            scheduler.mark_complete(task_id)
            if scheduler.is_done():
                done.set()
            else:
                dispatch_ready()

        try:
            dispatch_ready()
            # The pool is daemon-threaded; wait for completion or a wedged state.
            while not done.wait(timeout=0.05):
                if scheduler.is_done():
                    break
                scheduler.verify_quiescent()
                if pool.errors() and scheduler.running_count() == 0 and scheduler.ready_count() == 0:
                    break
            pool.wait_idle()
        finally:
            pool.shutdown()

        wall = time.perf_counter() - start_time
        for exc, tb in pool.errors():
            errors.append(f"worker error: {exc!r}")
        return ExecutionResult(
            graph=graph,
            wall_time_s=wall,
            tasks_executed=executed,
            events=self.events,
            per_task_wall_s=per_task_wall,
            errors=errors,
        )
