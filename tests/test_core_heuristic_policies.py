"""Tests for repro.core.heuristic (App_FIT), repro.core.policies and estimators."""

import pytest

from repro.core.engine import decide_for_graph
from repro.core.estimator import (
    ArgumentSizeEstimator,
    TraceBasedEstimator,
    VulnerabilityWeightedEstimator,
)
from repro.core.heuristic import AppFit
from repro.core.policies import (
    CompleteReplication,
    FitThresholdPolicy,
    NoReplication,
    PeriodicReplication,
    RandomReplication,
    TopFitReplication,
)
from repro.faults.rates import FitRateSpec
from repro.util.rng import RngStream
from repro.util.units import MIB
from tests.conftest import make_independent_graph, make_task


def uniform_graph(n=200, size_bytes=MIB):
    return make_independent_graph(n, size_bytes=size_bytes)


class TestEstimators:
    def test_argument_size_estimator_matches_model(self):
        est = ArgumentSizeEstimator(FitRateSpec())
        task = make_task(0, size_bytes=32e6)
        rates = est.estimate(task)
        assert rates.crash_fit == pytest.approx(2.22, rel=1e-6)

    def test_vulnerability_weights_scale_known_types(self):
        base = ArgumentSizeEstimator()
        est = VulnerabilityWeightedEstimator(base, weights={"masked": 0.5}, default_weight=1.0)
        t_masked = make_task(0, size_bytes=MIB, task_type="masked")
        t_other = make_task(1, size_bytes=MIB, task_type="other")
        assert est.estimate(t_masked).total_fit == pytest.approx(
            0.5 * base.estimate(t_masked).total_fit
        )
        assert est.estimate(t_other).total_fit == pytest.approx(
            base.estimate(t_other).total_fit
        )

    def test_vulnerability_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            VulnerabilityWeightedEstimator(ArgumentSizeEstimator(), weights={"x": -1.0})

    def test_trace_based_estimator_uses_trace(self):
        est = TraceBasedEstimator(rates={"gemm": (3.0, 1.0)})
        rates = est.estimate(make_task(0, task_type="gemm"))
        assert rates.crash_fit == 3.0 and rates.sdc_fit == 1.0

    def test_trace_based_estimator_fallback(self):
        fallback = ArgumentSizeEstimator()
        est = TraceBasedEstimator(rates={}, fallback=fallback)
        task = make_task(0, size_bytes=MIB)
        assert est.estimate(task).total_fit == pytest.approx(fallback.estimate(task).total_fit)

    def test_trace_based_estimator_zero_without_fallback(self):
        est = TraceBasedEstimator(rates={})
        assert est.estimate(make_task(0)).total_fit == 0.0


class TestAppFit:
    def _threshold(self, graph, spec=None):
        spec = spec or FitRateSpec()
        est = ArgumentSizeEstimator(spec)
        return sum(est.estimate(t).total_fit for t in graph.tasks())

    def test_threshold_always_respected(self):
        graph = uniform_graph(300)
        threshold = self._threshold(graph)
        policy = AppFit(threshold, len(graph), ArgumentSizeEstimator(FitRateSpec(multiplier=10.0)))
        decide_for_graph(graph, policy)
        audit = policy.audit()
        assert audit.threshold_respected and audit.envelope_respected

    def test_10x_rates_replicate_about_90_percent_uniform(self):
        graph = uniform_graph(500)
        threshold = self._threshold(graph)
        policy = AppFit(threshold, len(graph), ArgumentSizeEstimator(FitRateSpec(multiplier=10.0)))
        decisions = decide_for_graph(graph, policy)
        assert 0.87 <= decisions.task_fraction <= 0.93

    def test_5x_needs_less_replication_than_10x(self):
        graph = uniform_graph(500)
        threshold = self._threshold(graph)
        frac = {}
        for mult in (5.0, 10.0):
            policy = AppFit(threshold, len(graph), ArgumentSizeEstimator(FitRateSpec(multiplier=mult)))
            frac[mult] = decide_for_graph(graph, policy).task_fraction
        assert frac[5.0] < frac[10.0]

    def test_1x_rates_require_essentially_no_replication(self):
        # At today's rates the threshold equals the unprotected FIT, so no task
        # needs protection (floating-point rounding may flag at most one task,
        # since every uniform task sits exactly on the envelope boundary).
        graph = uniform_graph(200)
        threshold = self._threshold(graph)
        policy = AppFit(threshold, len(graph), ArgumentSizeEstimator(FitRateSpec(multiplier=1.0)))
        decisions = decide_for_graph(graph, policy)
        assert decisions.replicated_tasks <= 1

    def test_generous_threshold_means_no_replication(self):
        graph = uniform_graph(100)
        policy = AppFit(1e9, len(graph), ArgumentSizeEstimator())
        assert decide_for_graph(graph, policy).task_fraction == 0.0

    def test_zero_threshold_replicates_everything(self):
        graph = uniform_graph(100)
        policy = AppFit(0.0, len(graph), ArgumentSizeEstimator())
        assert decide_for_graph(graph, policy).task_fraction == 1.0

    def test_skewed_fit_distribution_needs_fewer_task_replicas(self):
        """When a few big tasks carry most of the FIT, App_FIT covers the budget
        with far fewer tasks — the granularity effect the paper describes."""
        from repro.runtime.graph import TaskGraph

        skewed = TaskGraph("skewed")
        for i in range(500):
            size = 100 * MIB if i % 10 == 0 else 0.5 * MIB
            skewed.add_task(make_task(i, size_bytes=size))
        est_1x = ArgumentSizeEstimator(FitRateSpec())
        threshold = sum(est_1x.estimate(t).total_fit for t in skewed.tasks())
        policy = AppFit(threshold, len(skewed), ArgumentSizeEstimator(FitRateSpec(multiplier=10.0)))
        frac_skewed = decide_for_graph(skewed, policy).task_fraction

        uniform = uniform_graph(500)
        threshold_u = self._threshold(uniform)
        policy_u = AppFit(threshold_u, len(uniform), ArgumentSizeEstimator(FitRateSpec(multiplier=10.0)))
        frac_uniform = decide_for_graph(uniform, policy_u).task_fraction
        assert frac_skewed < frac_uniform

    def test_decisions_recorded(self):
        graph = uniform_graph(10)
        policy = AppFit(self._threshold(graph), len(graph), ArgumentSizeEstimator(FitRateSpec(multiplier=10.0)))
        decide_for_graph(graph, policy)
        assert len(policy.decisions) == 10
        assert policy.replication_fraction() == pytest.approx(
            len(policy.replicated_task_ids()) / 10
        )

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AppFit(-1.0, 10)
        with pytest.raises(ValueError):
            AppFit(1.0, 0)

    def test_replication_fraction_empty(self):
        assert AppFit(1.0, 10).replication_fraction() == 0.0


class TestBaselinePolicies:
    def test_complete_replication(self):
        graph = uniform_graph(50)
        decisions = decide_for_graph(graph, CompleteReplication())
        assert decisions.task_fraction == 1.0
        assert decisions.time_fraction == 1.0

    def test_no_replication(self):
        graph = uniform_graph(50)
        decisions = decide_for_graph(graph, NoReplication())
        assert decisions.task_fraction == 0.0

    def test_random_replication_rate(self):
        graph = uniform_graph(2000)
        policy = RandomReplication(0.3, rng=RngStream(5))
        frac = decide_for_graph(graph, policy).task_fraction
        assert 0.25 < frac < 0.35

    def test_random_zero_and_one(self):
        graph = uniform_graph(50)
        assert decide_for_graph(graph, RandomReplication(0.0)).task_fraction == 0.0
        assert decide_for_graph(graph, RandomReplication(1.0)).task_fraction == 1.0

    def test_periodic_replication(self):
        graph = uniform_graph(100)
        decisions = decide_for_graph(graph, PeriodicReplication(4))
        assert decisions.task_fraction == pytest.approx(0.25)

    def test_periodic_one_is_complete(self):
        graph = uniform_graph(20)
        assert decide_for_graph(graph, PeriodicReplication(1)).task_fraction == 1.0

    def test_fit_threshold_policy(self):
        from repro.runtime.graph import TaskGraph

        graph = TaskGraph()
        for i in range(10):
            graph.add_task(make_task(i, size_bytes=(100 * MIB if i < 3 else MIB)))
        est = ArgumentSizeEstimator()
        cutoff = est.estimate(make_task(999, size_bytes=10 * MIB)).total_fit
        decisions = decide_for_graph(graph, FitThresholdPolicy(cutoff, est))
        assert decisions.replicated_tasks == 3

    def test_top_fit_requires_prepare(self):
        policy = TopFitReplication(0.5)
        with pytest.raises(RuntimeError):
            policy.decide(make_task(0))

    def test_top_fit_selects_heaviest(self):
        from repro.runtime.graph import TaskGraph

        graph = TaskGraph()
        for i in range(10):
            graph.add_task(make_task(i, size_bytes=(i + 1) * MIB))
        decisions = decide_for_graph(graph, TopFitReplication(0.2))
        assert decisions.replicated_ids == {8, 9}

    def test_invalid_policy_parameters(self):
        with pytest.raises(ValueError):
            RandomReplication(1.5)
        with pytest.raises(ValueError):
            PeriodicReplication(0)
        with pytest.raises(ValueError):
            FitThresholdPolicy(-1.0)
        with pytest.raises(ValueError):
            TopFitReplication(2.0)
