"""Tests for repro.runtime.events."""

from repro.runtime.events import EventKind, EventLog


class TestEventLog:
    def test_record_and_count(self):
        log = EventLog()
        log.record(EventKind.TASK_STARTED, task_id=1)
        log.record(EventKind.TASK_FINISHED, task_id=1)
        log.record(EventKind.TASK_STARTED, task_id=2)
        assert len(log) == 3
        assert log.count(EventKind.TASK_STARTED) == 2

    def test_filter_by_kind(self):
        log = EventLog()
        log.record(EventKind.SDC_DETECTED, task_id=4)
        log.record(EventKind.TASK_STARTED, task_id=4)
        events = log.events(EventKind.SDC_DETECTED)
        assert len(events) == 1 and events[0].task_id == 4

    def test_details_stored(self):
        log = EventLog()
        e = log.record(EventKind.COMPARISON_PERFORMED, task_id=1, result="match")
        assert e.details["result"] == "match"

    def test_counts_histogram(self):
        log = EventLog()
        log.record(EventKind.TASK_REPLICATED)
        log.record(EventKind.TASK_REPLICATED)
        log.record(EventKind.SDC_CORRECTED)
        counts = log.counts()
        assert counts["task_replicated"] == 2
        assert counts["sdc_corrected"] == 1

    def test_clear(self):
        log = EventLog()
        log.record(EventKind.TASK_STARTED)
        log.clear()
        assert len(log) == 0

    def test_iteration(self):
        log = EventLog()
        log.record(EventKind.TASK_STARTED, task_id=1)
        log.record(EventKind.TASK_FINISHED, task_id=1)
        kinds = [e.kind for e in log]
        assert kinds == [EventKind.TASK_STARTED, EventKind.TASK_FINISHED]

    def test_thread_safety_under_concurrent_appends(self):
        import threading

        log = EventLog()

        def writer():
            for _ in range(200):
                log.record(EventKind.TASK_STARTED)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 800
