"""Tests for repro.runtime.executor and repro.runtime.runtime (the facade)."""

import numpy as np
import pytest

from repro.runtime.events import EventKind
from repro.runtime.executor import (
    GraphExecutor,
    PassthroughHook,
    invoke_task,
    materialize_arguments,
    region_view,
    task_write_views,
)
from repro.runtime.runtime import RuntimeConfig, TaskRuntime
from repro.runtime.scheduler import SchedulingPolicy
from repro.runtime.task import DataHandle, TaskDescriptor, arg_inout, arg_out, arg_value


class TestRegionView:
    def test_whole_region_returns_storage(self):
        h = DataHandle("a", storage=np.arange(8, dtype=np.float64))
        assert region_view(h.whole()) is h.storage

    def test_partial_aligned_region_keeps_dtype(self):
        """Element-aligned partial views stay typed so tolerance comparators
        keep comparing floats (not raw bytes)."""
        h = DataHandle("a", storage=np.arange(8, dtype=np.float64))
        view = region_view(h.region(offset=16.0, size_bytes=32.0))
        assert view.dtype == np.float64
        np.testing.assert_array_equal(view, [2.0, 3.0, 4.0, 5.0])
        view[0] = -1.0
        assert h.storage[2] == -1.0  # a view, not a copy

    def test_unaligned_region_falls_back_to_bytes(self):
        h = DataHandle("a", storage=np.arange(8, dtype=np.float64))
        view = region_view(h.region(offset=4.0, size_bytes=12.0))
        assert view.dtype == np.uint8 and view.nbytes == 12

    def test_no_storage_returns_none(self):
        h = DataHandle("a", size_bytes=64)
        assert region_view(h.whole()) is None

    def test_write_views_deduplicate_regions(self):
        h = DataHandle("a", storage=np.zeros(8))
        region = h.region(offset=0.0, size_bytes=32.0)
        task = TaskDescriptor(
            task_id=0, task_type="t", args=[arg_out(region), arg_inout(region)]
        )
        assert len(task_write_views(task)) == 1

    def test_register_array_makes_storage_contiguous(self):
        """Non-contiguous input is copied into a contiguous managed buffer —
        byte-exact region views (and so region-scoped restore) depend on it."""
        rt = TaskRuntime(n_workers=1)
        base = np.arange(16, dtype=np.float64).reshape(4, 4)
        handle = rt.register_array("cols", base[:, :2])
        assert handle.storage.flags.c_contiguous
        np.testing.assert_array_equal(handle.storage, base[:, :2])
        contiguous = np.arange(4.0)
        assert rt.register_array("own", contiguous).storage is contiguous


class TestMaterializeArguments:
    def test_region_and_value_order(self):
        h = DataHandle("a", storage=np.zeros(4))
        task = TaskDescriptor(
            task_id=0, task_type="t", args=[arg_inout(h.whole()), arg_value(7)]
        )
        args = materialize_arguments(task)
        assert args[0] is h.storage and args[1] == 7

    def test_missing_storage_raises(self):
        h = DataHandle("a", size_bytes=64)
        task = TaskDescriptor(task_id=0, task_type="t", args=[arg_inout(h.whole())])
        with pytest.raises(ValueError):
            materialize_arguments(task)

    def test_invoke_task_without_func_is_noop(self):
        task = TaskDescriptor(task_id=0, task_type="t")
        assert invoke_task(task) is None


class TestTaskRuntimeFunctional:
    def test_inout_chain_executes_in_order(self):
        rt = TaskRuntime(n_workers=2)
        a = rt.register_array("a", np.zeros(8))

        def add_one(x):
            x += 1

        def double(x):
            x *= 2

        rt.submit(add_one, inout=[a.whole()], task_type="inc")
        rt.submit(double, inout=[a.whole()], task_type="dbl")
        result = rt.taskwait()
        assert result.succeeded
        np.testing.assert_allclose(a.storage, 2.0)

    def test_independent_tasks_all_run(self):
        rt = TaskRuntime(n_workers=4)
        arrays = [rt.register_array(f"a{i}", np.zeros(4)) for i in range(10)]

        def fill(x):
            x += 3

        for h in arrays:
            rt.submit(fill, inout=[h.whole()], task_type="fill")
        result = rt.taskwait()
        assert result.tasks_executed == 10
        for h in arrays:
            np.testing.assert_allclose(h.storage, 3.0)

    def test_values_passed_after_regions(self):
        rt = TaskRuntime(n_workers=1)
        a = rt.register_array("a", np.zeros(4))

        def scale(x, factor):
            x += factor

        rt.submit(scale, inout=[a.whole()], values=[5.0], task_type="scale")
        rt.taskwait()
        np.testing.assert_allclose(a.storage, 5.0)

    def test_dataflow_dependencies_between_arrays(self):
        rt = TaskRuntime(n_workers=2)
        a = rt.register_array("a", np.ones(4))
        b = rt.register_array("b", np.zeros(4))

        def copy(src, dst):
            np.copyto(dst, src)

        def incr(x):
            x += 1

        rt.submit(incr, inout=[a.whole()], task_type="inc")        # a = 2
        rt.submit(copy, in_=[a.whole()], out=[b.whole()], task_type="copy")  # b = 2
        rt.submit(incr, inout=[b.whole()], task_type="inc")        # b = 3
        rt.taskwait()
        np.testing.assert_allclose(b.storage, 3.0)

    def test_taskwait_is_barrier_and_resets_graph(self):
        rt = TaskRuntime(n_workers=1)
        a = rt.register_array("a", np.zeros(2))

        def inc(x):
            x += 1

        rt.submit(inc, inout=[a.whole()])
        rt.taskwait()
        assert len(rt.graph) == 0
        rt.submit(inc, inout=[a.whole()])
        rt.taskwait()
        np.testing.assert_allclose(a.storage, 2.0)
        assert len(rt.results()) == 2

    def test_task_error_reported_not_raised(self):
        rt = TaskRuntime(n_workers=1)
        a = rt.register_array("a", np.zeros(2))

        def broken(x):
            raise RuntimeError("kernel failure")

        rt.submit(broken, inout=[a.whole()])
        result = rt.taskwait()
        assert not result.succeeded
        assert any("kernel failure" in e or "RuntimeError" in e for e in result.errors)

    def test_events_recorded(self):
        rt = TaskRuntime(n_workers=1)
        a = rt.register_array("a", np.zeros(2))
        rt.submit(lambda x: None, inout=[a.whole()])
        rt.taskwait()
        assert rt.events.count(EventKind.TASK_SUBMITTED) == 1
        assert rt.events.count(EventKind.TASK_STARTED) == 1
        assert rt.events.count(EventKind.TASK_FINISHED) == 1

    def test_duplicate_handle_name_rejected(self):
        rt = TaskRuntime(n_workers=1)
        rt.register_array("a", np.zeros(2))
        with pytest.raises(ValueError):
            rt.register_array("a", np.zeros(2))
        with pytest.raises(ValueError):
            rt.register_region("a", 16)

    def test_handle_lookup(self):
        rt = TaskRuntime(n_workers=1)
        h = rt.register_region("sim", 4096)
        assert rt.handle("sim") is h
        assert h in rt.handles()

    def test_simulation_only_submission_builds_graph(self):
        rt = TaskRuntime(n_workers=1)
        h = rt.register_region("sim", 4096)
        rt.submit(task_type="t", inout=[h.whole()], duration_s=0.5)
        rt.submit(task_type="t", inout=[h.whole()], duration_s=0.5)
        graph = rt.graph
        assert len(graph) == 2
        assert graph.predecessors(1) == {0}
        assert graph.total_work_seconds() == pytest.approx(1.0)

    def test_metadata_and_node_stored(self):
        rt = TaskRuntime(n_workers=1)
        h = rt.register_region("sim", 64)
        t = rt.submit(task_type="t", inout=[h.whole()], node=3, metadata={"k": 1})
        assert t.node == 3 and t.metadata["k"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(n_workers=0)


class TestGraphExecutor:
    def test_empty_graph(self):
        from repro.runtime.graph import TaskGraph

        result = GraphExecutor(n_workers=2).run(TaskGraph())
        assert result.succeeded and result.tasks_executed == 0

    def test_hook_wraps_every_task(self):
        calls = []

        class CountingHook:
            def execute(self, task, invoke):
                calls.append(task.task_id)
                return invoke(task)

        rt = TaskRuntime(n_workers=2, hook=CountingHook())
        a = rt.register_array("a", np.zeros(4))
        for _ in range(5):
            rt.submit(lambda x: None, inout=[a.whole()])
        rt.taskwait()
        assert sorted(calls) == [0, 1, 2, 3, 4]

    def test_passthrough_hook_invokes_body(self):
        h = DataHandle("a", storage=np.zeros(2))
        task = TaskDescriptor(
            task_id=0, task_type="t", args=[arg_inout(h.whole())], func=lambda x: x.__iadd__(1)
        )
        PassthroughHook().execute(task, invoke_task)
        np.testing.assert_allclose(h.storage, 1.0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            GraphExecutor(n_workers=0)

    def test_per_task_wall_times_recorded(self):
        rt = TaskRuntime(n_workers=2)
        a = rt.register_array("a", np.zeros(4))
        rt.submit(lambda x: None, inout=[a.whole()])
        result = rt.taskwait()
        assert set(result.per_task_wall_s) == {0}
        assert result.wall_time_s >= 0

    def test_lifo_policy_supported(self):
        rt = TaskRuntime(n_workers=1, config=RuntimeConfig(n_workers=1, scheduling_policy=SchedulingPolicy.LIFO))
        order = []
        a = [rt.register_array(f"x{i}", np.zeros(1)) for i in range(3)]
        for i in range(3):
            rt.submit(lambda x, i=i: order.append(i), inout=[a[i].whole()])
        rt.taskwait()
        assert order == [2, 1, 0]
