"""Structural tests for every Table I benchmark generator."""

import pytest

from repro.apps import create_benchmark
from repro.apps.cholesky import CholeskyBenchmark
from repro.apps.fft import FFTBenchmark
from repro.apps.linpack import LinpackBenchmark
from repro.apps.matmul import MatmulBenchmark
from repro.apps.nbody import NbodyBenchmark
from repro.apps.perlin import PerlinNoiseBenchmark
from repro.apps.pingpong import PingpongBenchmark
from repro.apps.registry import (
    all_benchmark_names,
    distributed_benchmark_names,
    shared_memory_benchmark_names,
)
from repro.apps.sparselu import SparseLUBenchmark
from repro.apps.stream import StreamBenchmark

ALL_NAMES = all_benchmark_names()
SMALL_SCALE = 0.08


class TestRegistry:
    def test_nine_benchmarks(self):
        assert len(ALL_NAMES) == 9

    def test_groups_match_table1(self):
        assert shared_memory_benchmark_names() == ["sparselu", "cholesky", "fft", "perlin", "stream"]
        assert distributed_benchmark_names() == ["nbody", "matmul", "pingpong", "linpack"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            create_benchmark("does-not-exist")

    def test_case_insensitive(self):
        assert create_benchmark("Cholesky", scale=SMALL_SCALE).name == "cholesky"

    def test_kwargs_override(self):
        bench = create_benchmark("cholesky", matrix_size=2048, block_size=512)
        assert bench.n_blocks == 4


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryBenchmark:
    def test_graph_is_acyclic_dag(self, name):
        graph = create_benchmark(name, scale=SMALL_SCALE).build_graph()
        assert len(graph) > 0
        assert graph.is_acyclic()

    def test_every_task_has_positive_duration_and_bytes(self, name):
        graph = create_benchmark(name, scale=SMALL_SCALE).build_graph()
        for task in graph.tasks():
            assert task.duration_s > 0
            assert task.argument_bytes > 0

    def test_info_row_populated(self, name):
        info = create_benchmark(name, scale=SMALL_SCALE).info()
        assert info.name == name
        assert info.n_tasks > 0
        assert info.input_bytes > 0
        assert info.problem and info.block and info.description

    def test_graph_cached(self, name):
        bench = create_benchmark(name, scale=SMALL_SCALE)
        assert bench.build_graph() is bench.build_graph()
        assert bench.build_graph(use_cache=False) is not bench.build_graph()

    def test_graph_has_parallelism(self, name):
        graph = create_benchmark(name, scale=SMALL_SCALE).build_graph()
        assert graph.stats().average_parallelism > 1.5

    def test_scale_changes_task_count(self, name):
        small = create_benchmark(name, scale=SMALL_SCALE).build_graph()
        larger = create_benchmark(name, scale=SMALL_SCALE * 2.5).build_graph()
        assert len(larger) > len(small)


@pytest.mark.parametrize("name", distributed_benchmark_names())
class TestDistributedBenchmarks:
    def test_tasks_have_node_assignments(self, name):
        graph = create_benchmark(name, scale=SMALL_SCALE).build_graph()
        nodes = {t.node for t in graph.tasks()}
        assert None not in nodes
        assert len(nodes) > 1

    def test_marked_distributed(self, name):
        assert create_benchmark(name, scale=SMALL_SCALE).distributed


class TestSparseLU:
    def test_paper_configuration(self):
        bench = SparseLUBenchmark()
        assert bench.n_blocks == 64
        assert bench.input_bytes == 12800 ** 2 * 8

    def test_task_types(self):
        graph = SparseLUBenchmark.from_scale(0.1).build_graph()
        types = graph.subgraph_types()
        assert set(types) == {"lu0", "fwd", "bdiv", "bmod"}
        assert types["lu0"] == SparseLUBenchmark.from_scale(0.1).n_blocks

    def test_sparsity_pattern_deterministic(self):
        a = SparseLUBenchmark.from_scale(0.1)
        b = SparseLUBenchmark.from_scale(0.1)
        assert (a.initial_pattern() == b.initial_pattern()).all()

    def test_diagonal_always_present(self):
        pattern = SparseLUBenchmark.from_scale(0.1).initial_pattern()
        assert pattern.diagonal().all()

    def test_sparser_matrix_fewer_tasks(self):
        dense = SparseLUBenchmark(matrix_size=1600, block_size=200, fill_fraction=0.9)
        sparse = SparseLUBenchmark(matrix_size=1600, block_size=200, fill_fraction=0.1)
        assert len(sparse.build_graph()) < len(dense.build_graph())

    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            SparseLUBenchmark(matrix_size=1000, block_size=300)


class TestCholesky:
    def test_paper_configuration_task_count(self):
        """32 blocks -> nb + nb(nb-1)/2 trsm + nb(nb-1)/2 syrk + C(nb,3) gemm tasks."""
        bench = CholeskyBenchmark()
        nb = bench.n_blocks
        expected = nb + nb * (nb - 1) // 2 + nb * (nb - 1) // 2 + nb * (nb - 1) * (nb - 2) // 6
        assert len(bench.build_graph()) == expected

    def test_task_types(self):
        types = CholeskyBenchmark.from_scale(0.2).build_graph().subgraph_types()
        assert set(types) == {"potrf", "trsm", "syrk", "gemm"}

    def test_potrf_chain_structure(self):
        """The first potrf has no dependencies; later potrfs depend on updates."""
        graph = CholeskyBenchmark.from_scale(0.15).build_graph()
        potrfs = [t for t in graph.tasks() if t.task_type == "potrf"]
        assert graph.in_degree(potrfs[0].task_id) == 0
        assert graph.in_degree(potrfs[1].task_id) > 0

    def test_gemm_is_heaviest_task_type(self):
        graph = CholeskyBenchmark.from_scale(0.2).build_graph()
        potrf = next(t for t in graph.tasks() if t.task_type == "potrf")
        gemm = next(t for t in graph.tasks() if t.task_type == "gemm")
        assert gemm.duration_s > potrf.duration_s
        assert gemm.argument_bytes > potrf.argument_bytes


class TestFFT:
    def test_paper_configuration_coarse_and_few(self):
        bench = FFTBenchmark()
        graph = bench.build_graph()
        assert len(graph) == 4 * bench.n_panels  # two FFT + two transpose stages
        assert bench.panel_bytes == pytest.approx(16384 * 128 * 16)

    def test_stage_ordering(self):
        graph = FFTBenchmark.from_scale(0.05).build_graph()
        types = [t.task_type for t in graph.iter_submission_order()]
        first_transpose = types.index("transpose")
        assert all(t == "fft_rows" for t in types[:first_transpose])

    def test_transpose_depends_on_all_fft_tasks(self):
        bench = FFTBenchmark.from_scale(0.05)
        graph = bench.build_graph()
        transpose = next(t for t in graph.tasks() if t.task_type == "transpose")
        assert len(graph.predecessors(transpose.task_id)) == bench.n_panels


class TestStreamAndPerlin:
    def test_stream_task_count(self):
        bench = StreamBenchmark(iterations=3)
        assert len(bench.build_graph()) == 3 * 4 * bench.n_blocks

    def test_stream_kernels_present(self):
        types = StreamBenchmark(iterations=2).build_graph().subgraph_types()
        assert set(types) == {"copy", "scale", "add", "triad"}

    def test_stream_is_memory_bound(self):
        graph = StreamBenchmark(iterations=1).build_graph()
        t = graph.tasks()[0]
        mem = t.metadata["mem_bytes"]
        assert mem / 50e9 > t.duration_s  # streams more bytes than it computes

    def test_perlin_has_frame_setup_and_block_tasks(self):
        types = PerlinNoiseBenchmark(frames=10, setup_every=5).build_graph().subgraph_types()
        assert types["frame_setup"] == 2
        assert types["perlin_block"] == 10 * 32

    def test_perlin_frame_setup_is_heavier(self):
        graph = PerlinNoiseBenchmark(frames=4).build_graph()
        setup = next(t for t in graph.tasks() if t.task_type == "frame_setup")
        block = next(t for t in graph.tasks() if t.task_type == "perlin_block")
        assert setup.argument_bytes > block.argument_bytes


class TestDistributedStructure:
    def test_nbody_force_tasks_quadratic_in_blocks(self):
        bench = NbodyBenchmark(n_bodies=65536, n_nodes=4, n_blocks=8, timesteps=2)
        types = bench.build_graph().subgraph_types()
        assert types["forces"] == 2 * 8 * 8
        assert types["update"] == 2 * 8

    def test_matmul_gather_tasks_exist(self):
        bench = MatmulBenchmark(iterations=1, n_nodes=4)
        types = bench.build_graph().subgraph_types()
        assert "gather_result" in types and "gemm" in types

    def test_matmul_gather_is_heavier_than_gemm(self):
        graph = MatmulBenchmark(iterations=1, n_nodes=4).build_graph()
        gather = next(t for t in graph.tasks() if t.task_type == "gather_result")
        gemm = next(t for t in graph.tasks() if t.task_type == "gemm")
        assert gather.argument_bytes > gemm.argument_bytes

    def test_pingpong_alternates_nodes(self):
        graph = PingpongBenchmark(n_nodes=4, iterations=3).build_graph()
        nodes = [t.node for t in graph.iter_submission_order()][:4]
        assert nodes[0] != nodes[1]

    def test_pingpong_even_nodes_required(self):
        with pytest.raises(ValueError):
            PingpongBenchmark(n_nodes=5)

    def test_linpack_phase_types(self):
        bench = LinpackBenchmark.from_scale(0.05)
        types = bench.build_graph().subgraph_types()
        assert set(types) == {"panel_factor", "panel_bcast", "update"}

    def test_linpack_task_weights_shrink_over_steps(self):
        bench = LinpackBenchmark.from_scale(0.05)
        graph = bench.build_graph()
        factors = [t for t in graph.tasks() if t.task_type == "panel_factor"]
        assert factors[0].duration_s > factors[-1].duration_s
        assert factors[0].argument_bytes > factors[-1].argument_bytes

    def test_linpack_n_nodes_matches_grid(self):
        assert LinpackBenchmark(matrix_size=4096, grid_rows=2, grid_cols=4).n_nodes == 8
