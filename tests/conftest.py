"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.rates import FitRateSpec
from repro.runtime.graph import TaskGraph
from repro.runtime.task import DataHandle, TaskDescriptor, arg_in, arg_inout, arg_out
from repro.util.rng import RngStream


@pytest.fixture
def rng() -> RngStream:
    """A deterministic RNG stream."""
    return RngStream(1234)


@pytest.fixture
def rate_spec() -> FitRateSpec:
    """The default Roadrunner-derived rate specification."""
    return FitRateSpec()


def make_task(
    task_id: int,
    size_bytes: float = 1024.0,
    duration_s: float = 1.0,
    task_type: str = "work",
    node=None,
) -> TaskDescriptor:
    """A standalone task with one inout argument of the given size."""
    handle = DataHandle(f"data{task_id}", size_bytes=size_bytes)
    return TaskDescriptor(
        task_id=task_id,
        task_type=task_type,
        args=[arg_inout(handle.whole())],
        duration_s=duration_s,
        node=node,
    )


def make_chain_graph(n: int, duration_s: float = 1.0, size_bytes: float = 1024.0) -> TaskGraph:
    """A linear chain of n tasks (task i depends on task i-1)."""
    graph = TaskGraph("chain")
    for i in range(n):
        graph.add_task(
            make_task(i, size_bytes=size_bytes, duration_s=duration_s),
            deps=[i - 1] if i else [],
        )
    return graph


def make_independent_graph(n: int, duration_s: float = 1.0, size_bytes: float = 1024.0) -> TaskGraph:
    """n fully independent tasks."""
    graph = TaskGraph("independent")
    for i in range(n):
        graph.add_task(make_task(i, size_bytes=size_bytes, duration_s=duration_s))
    return graph


def make_fork_join_graph(width: int, duration_s: float = 1.0) -> TaskGraph:
    """One source, ``width`` parallel tasks, one sink."""
    graph = TaskGraph("forkjoin")
    graph.add_task(make_task(0, duration_s=duration_s))
    for i in range(1, width + 1):
        graph.add_task(make_task(i, duration_s=duration_s), deps=[0])
    graph.add_task(make_task(width + 1, duration_s=duration_s), deps=list(range(1, width + 1)))
    return graph


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 10-task chain."""
    return make_chain_graph(10)


@pytest.fixture
def independent_graph() -> TaskGraph:
    """20 independent tasks."""
    return make_independent_graph(20)


@pytest.fixture
def fork_join_graph() -> TaskGraph:
    """A fork-join diamond of width 8."""
    return make_fork_join_graph(8)


@pytest.fixture
def array_handle() -> DataHandle:
    """A handle backed by a real NumPy array."""
    return DataHandle("arr", storage=np.arange(64, dtype=np.float64))
