"""Property-based invariants of the workload generators (hypothesis).

Each family promises a small set of structural invariants (see the
``promises`` field in :data:`repro.workloads.spec.FAMILIES`); these tests
drive randomly drawn parameter combinations through every generator and pin
them down:

* every generated graph is acyclic;
* families promising a single source/sink actually have exactly one;
* promised in-degree bounds hold;
* all durations and all argument byte counts are strictly positive;
* generation is a pure function of (spec, scale): rebuilding compiles to
  byte-identical arrays.

Runs under the ``quick`` hypothesis profile (5 examples) in the quick suite
and the default ``repro`` profile (30) in tier-1.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.compiled import ARRAY_FIELDS, compile_graph
from repro.workloads import WorkloadBenchmark, parse_workload

#: Shared distribution-parameter strategies (kept small so graphs stay tiny).
_SEED = st.integers(min_value=0, max_value=2**32 - 1)
_CV = st.sampled_from([0.0, 0.3, 1.0])
_SCALE = st.sampled_from([0.5, 1.0])


def _spec(family: str, seed: int, cv: float, block_cv: float, **structure) -> str:
    """Assemble a spec string from drawn parameters."""
    parts = [f"{k}={v}" for k, v in structure.items()]
    parts += [f"seed={seed}", f"cv={cv}", f"block_cv={block_cv}"]
    return f"{family}:{','.join(parts)}"


def _graph_and_compiled(text: str, scale: float):
    """Build one workload twice; assert determinism; return (graph, compiled)."""
    bench = WorkloadBenchmark(parse_workload(text), scale=scale)
    graph = bench.build_graph()
    compiled = compile_graph(graph)
    rebuilt = compile_graph(
        WorkloadBenchmark(parse_workload(text), scale=scale).build_graph()
    )
    for field in ARRAY_FIELDS:
        assert np.array_equal(getattr(compiled, field), getattr(rebuilt, field)), (
            f"{text} rebuilt differently in {field}"
        )
    return graph, compiled


def _assert_positive_and_acyclic(graph, compiled) -> None:
    """The invariants every family promises."""
    assert graph.is_acyclic()
    assert np.all(compiled.durations > 0)
    assert np.all(compiled.arg_bytes > 0)
    assert np.all(compiled.output_bytes > 0)
    compiled.validate()


def _assert_single_source_and_sink(graph) -> None:
    assert len(graph.roots()) == 1
    assert len(graph.leaves()) == 1


@given(
    depth=st.integers(2, 5),
    width=st.integers(1, 4),
    fanin=st.integers(1, 4),
    seed=_SEED,
    cv=_CV,
    block_cv=_CV,
    scale=_SCALE,
)
@settings(deadline=None)
def test_layered_invariants(depth, width, fanin, seed, cv, block_cv, scale):
    graph, compiled = _graph_and_compiled(
        _spec("layered", seed, cv, block_cv, depth=depth, width=width, fanin=fanin),
        scale,
    )
    _assert_positive_and_acyclic(graph, compiled)
    # Promised bound: at most `fanin` predecessors per task.
    assert int(compiled.in_degrees().max()) <= fanin


@given(tasks=st.integers(4, 24), p=st.floats(0.0, 1.0), seed=_SEED, scale=_SCALE)
@settings(deadline=None)
def test_erdos_invariants(tasks, p, seed, scale):
    graph, compiled = _graph_and_compiled(
        _spec("erdos", seed, 0.3, 0.0, tasks=tasks, p=p), scale
    )
    _assert_positive_and_acyclic(graph, compiled)


@given(stages=st.integers(1, 3), width=st.integers(1, 5), seed=_SEED, cv=_CV, scale=_SCALE)
@settings(deadline=None)
def test_forkjoin_invariants(stages, width, seed, cv, scale):
    graph, compiled = _graph_and_compiled(
        _spec("forkjoin", seed, cv, 0.0, stages=stages, width=width), scale
    )
    _assert_positive_and_acyclic(graph, compiled)
    _assert_single_source_and_sink(graph)
    # Joins collect `width` workers; everything else has at most one pred —
    # but width is the *effective* (scaled) value, never more than the drawn one.
    assert int(compiled.in_degrees().max()) <= max(width, 1)


@given(stages=st.integers(2, 5), items=st.integers(2, 5), seed=_SEED, cv=_CV, scale=_SCALE)
@settings(deadline=None)
def test_pipeline_invariants(stages, items, seed, cv, scale):
    graph, compiled = _graph_and_compiled(
        _spec("pipeline", seed, cv, 0.0, stages=stages, items=items), scale
    )
    _assert_positive_and_acyclic(graph, compiled)
    _assert_single_source_and_sink(graph)
    assert int(compiled.in_degrees().max()) <= 2


@given(rows=st.integers(2, 5), cols=st.integers(2, 5), seed=_SEED, block_cv=_CV, scale=_SCALE)
@settings(deadline=None)
def test_wavefront_invariants(rows, cols, seed, block_cv, scale):
    graph, compiled = _graph_and_compiled(
        _spec("wavefront", seed, 0.25, block_cv, rows=rows, cols=cols), scale
    )
    _assert_positive_and_acyclic(graph, compiled)
    _assert_single_source_and_sink(graph)
    assert int(compiled.in_degrees().max()) <= 3


@given(
    maps=st.integers(2, 6),
    reduces=st.integers(1, 3),
    rounds=st.integers(1, 3),
    seed=_SEED,
    scale=_SCALE,
)
@settings(deadline=None)
def test_mapreduce_invariants(maps, reduces, rounds, seed, scale):
    graph, compiled = _graph_and_compiled(
        _spec("mapreduce", seed, 0.25, 0.0, maps=maps, reduces=reduces, rounds=rounds),
        scale,
    )
    _assert_positive_and_acyclic(graph, compiled)
    # Reduces fan in from every map of their round.
    assert int(compiled.in_degrees().max()) <= maps


@given(seed=_SEED, scale=_SCALE)
@settings(deadline=None, max_examples=10)
def test_canonicalisation_is_stable_under_reparse(seed, scale):
    spec = parse_workload(f"layered:depth=3,width=2,seed={seed}")
    assert parse_workload(spec.canonical).canonical == spec.canonical
