"""Integration tests across the whole stack.

These exercise the path a user of the library follows: build an application on
the runtime, set a reliability target, let App_FIT pick the tasks to protect,
inject faults, and verify the application result and the FIT bookkeeping.
"""

import numpy as np
import pytest

from repro.apps import create_benchmark
from repro.apps.matmul import MatmulBenchmark
from repro.core.config import ReplicationConfig
from repro.core.engine import SelectiveReplicationEngine, decide_for_graph
from repro.core.estimator import ArgumentSizeEstimator
from repro.core.heuristic import AppFit
from repro.core.replication import TaskReplicator
from repro.faults.injector import FaultInjector, InjectionConfig
from repro.faults.model import FailureModel
from repro.faults.rates import FitRateSpec
from repro.runtime.runtime import TaskRuntime
from repro.simulator.execution import SimulationConfig, simulate_graph
from repro.simulator.machine import shared_memory_node


class TestAppFitOnRealBenchmarkGraphs:
    """Simulation-mode integration: benchmark generator -> App_FIT -> simulator."""

    @pytest.mark.parametrize("name", ["cholesky", "stream", "linpack"])
    def test_appfit_selection_respects_threshold_and_costs_less_than_complete(self, name):
        bench = create_benchmark(name, scale=0.08)
        graph = bench.build_graph()
        spec = FitRateSpec()
        threshold = FailureModel(spec).graph_total_fit(graph)

        policy = AppFit(threshold, len(graph), ArgumentSizeEstimator(spec.scaled(10.0)))
        decisions = decide_for_graph(graph, policy)
        audit = policy.audit()
        assert audit.threshold_respected
        assert 0.0 < decisions.task_fraction < 1.0

        machine = shared_memory_node(16) if not bench.distributed else None
        if machine is None:
            from repro.simulator.machine import marenostrum_cluster

            machine = marenostrum_cluster(getattr(bench, "n_nodes", 16))
        baseline = simulate_graph(graph, machine, SimulationConfig())
        selective = simulate_graph(
            graph, machine, SimulationConfig(replicated_ids=decisions.replicated_ids)
        )
        complete = simulate_graph(graph, machine, SimulationConfig(replicate_all=True))
        assert selective.makespan_s >= baseline.makespan_s - 1e-12
        assert selective.makespan_s <= complete.makespan_s + 1e-9
        assert selective.replicated_tasks == decisions.replicated_tasks

    def test_higher_rates_demand_more_protection_across_benchmarks(self):
        for name in ("fft", "pingpong"):
            graph = create_benchmark(name, scale=0.08).build_graph()
            spec = FitRateSpec()
            threshold = FailureModel(spec).graph_total_fit(graph)
            fractions = {}
            for mult in (2.0, 10.0):
                policy = AppFit(threshold, len(graph), ArgumentSizeEstimator(spec.scaled(mult)))
                fractions[mult] = decide_for_graph(graph, policy).task_fraction
            assert fractions[10.0] >= fractions[2.0]


class TestFunctionalSelectiveReplication:
    """Functional-mode integration: real kernels + App_FIT + fault injection."""

    def _run_matmul(self, threshold_fraction, sdc_p, seed=3):
        bench = MatmulBenchmark()
        # Count the tasks of the functional variant first (3x3 blocks -> 27 gemms).
        n_tasks = 27
        spec = FitRateSpec()
        # Threshold as a fraction of the unprotected FIT at 10x rates.
        est = ArgumentSizeEstimator(spec.scaled(10.0))
        config = ReplicationConfig()
        injector = FaultInjector(
            config=InjectionConfig(fixed_sdc_probability=sdc_p, fixed_crash_probability=0.0)
        )
        # A rough per-task FIT to derive the absolute threshold: 32x32 doubles blocks.
        per_task_fit = est.estimate_placeholder if False else None
        from repro.runtime.task import DataHandle, TaskDescriptor, arg_in

        probe = TaskDescriptor(
            task_id=-1,
            task_type="probe",
            args=[arg_in(DataHandle("p", size_bytes=3 * 32 * 32 * 8).whole())],
        )
        total_fit_10x = est.estimate(probe).total_fit * n_tasks
        policy = AppFit(threshold_fraction * total_fit_10x, n_tasks, est)
        engine = SelectiveReplicationEngine(
            policy=policy,
            replicator=TaskReplicator(injector=injector, config=config),
            config=config,
        )
        result, c_blocks, reference = bench.functional_run(
            n_workers=2, hook=engine, matrix_size=96, block_size=32
        )
        return result, c_blocks, reference, engine, policy

    def test_partial_protection_with_generous_threshold(self):
        result, _, _, engine, policy = self._run_matmul(threshold_fraction=0.5, sdc_p=0.0)
        assert result.succeeded
        counts = engine.recovery_counts()
        assert 0 < counts["protected"] < counts["tasks"]
        assert policy.audit().threshold_respected

    def test_tight_threshold_protects_everything_and_survives_sdc(self):
        result, c_blocks, reference, engine, policy = self._run_matmul(
            threshold_fraction=0.0, sdc_p=0.1
        )
        counts = engine.recovery_counts()
        assert counts["protected"] == counts["tasks"]
        assert counts["sdc_escaped"] == 0
        if counts["unrecovered"] == 0:
            dense = np.zeros((96, 96))
            for (i, j), blk in c_blocks.items():
                dense[i * 32 : (i + 1) * 32, j * 32 : (j + 1) * 32] = blk
            np.testing.assert_allclose(dense, reference, rtol=1e-10)

    def test_unprotected_run_lets_sdc_through(self):
        """Sanity check of the experiment's premise: without protection an SDC
        silently corrupts the result."""
        config = ReplicationConfig()
        injector = FaultInjector(config=InjectionConfig(fixed_sdc_probability=1.0))
        from repro.core.policies import NoReplication

        engine = SelectiveReplicationEngine(
            policy=NoReplication(),
            replicator=TaskReplicator(injector=injector, config=config),
            config=config,
        )
        _, c_blocks, reference, = MatmulBenchmark().functional_run(
            n_workers=1, hook=engine, matrix_size=64, block_size=32
        )
        dense = np.zeros((64, 64))
        for (i, j), blk in c_blocks.items():
            dense[i * 32 : (i + 1) * 32, j * 32 : (j + 1) * 32] = blk
        assert engine.recovery_counts()["sdc_escaped"] > 0
        assert not np.allclose(dense, reference)


class TestRuntimeLevelWorkflow:
    def test_user_workflow_with_reliability_target(self):
        """The workflow sketched in the paper's Section II-C: the user sets a FIT
        target and the runtime transparently protects enough tasks to meet it."""
        n_tasks = 40
        spec = FitRateSpec()
        est_10x = ArgumentSizeEstimator(spec.scaled(10.0))
        est_1x = ArgumentSizeEstimator(spec)

        # Application: independent vector updates of varying sizes.
        rt_probe = TaskRuntime(n_workers=1)
        sizes = [256 * (1 + (i % 5)) for i in range(n_tasks)]
        arrays = [np.zeros(s) for s in sizes]

        # The "current FIT" of the app (1x rates) defines the target.
        handles = [rt_probe.register_array(f"a{i}", arrays[i]) for i in range(n_tasks)]
        probe_tasks = [
            rt_probe.submit(lambda x: None, inout=[handles[i].whole()]) for i in range(n_tasks)
        ]
        threshold = sum(est_1x.estimate(t).total_fit for t in probe_tasks)
        rt_probe.reset()

        policy = AppFit(threshold, n_tasks, est_10x)
        config = ReplicationConfig()
        engine = SelectiveReplicationEngine(
            policy=policy,
            replicator=TaskReplicator(
                injector=FaultInjector(config=InjectionConfig(fixed_sdc_probability=0.05)),
                config=config,
            ),
            config=config,
        )
        rt = TaskRuntime(n_workers=4, hook=engine)
        run_handles = [rt.register_array(f"b{i}", np.zeros(sizes[i])) for i in range(n_tasks)]

        def bump(x):
            x += 1.0

        for h in run_handles:
            rt.submit(bump, inout=[h.whole()], task_type="bump")
        result = rt.taskwait()

        assert result.succeeded
        audit = policy.audit()
        assert audit.threshold_respected
        assert audit.decisions == n_tasks
        counts = engine.recovery_counts()
        assert counts["sdc_escaped"] <= counts["tasks"] - counts["protected"]
        for h in run_handles:
            if engine.outcomes[_task_id_for(engine, h)].clean:
                np.testing.assert_allclose(h.storage, 1.0)


def _task_id_for(engine, handle):
    """Find the engine outcome whose task wrote this handle (tasks are 1:1 with arrays)."""
    for task_id, decision in engine.decisions.items():
        pass
    # Task ids were assigned in submission order, matching handle registration order.
    index = int(handle.name[1:])
    return sorted(engine.outcomes)[index]
