"""The shared retry discipline: bounded attempts, jitter, deadlines.

:mod:`repro.util.retry` backs every unreliable boundary in the serving stack
(HTTP client, store/lease IO, artifact composition), so its contract is
pinned precisely: which exceptions retry, how the backoff grows and jitters,
how the deadline clips sleeps, and — critically — that exhaustion re-raises
the *original* exception so callers' ``except`` clauses never change.
"""

from __future__ import annotations

import random

import pytest

from repro.util.retry import RetryError, RetryPolicy, poll_delays, retry_call


class _Flaky:
    """A callable that fails ``n`` times with ``exc`` and then returns 42."""

    def __init__(self, n: int, exc: type = OSError) -> None:
        self.n = n
        self.exc = exc
        self.calls = 0

    def __call__(self) -> int:
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc(f"failure {self.calls}")
        return 42


def _no_sleep(_: float) -> None:
    """A sleep stub: retries should not slow the test suite down."""


def test_succeeds_after_transient_failures():
    """Two failures inside a 5-attempt budget are absorbed silently."""
    fn = _Flaky(2)
    assert retry_call(fn, sleep=_no_sleep) == 42
    assert fn.calls == 3


def test_exhaustion_reraises_original_exception_type():
    """Callers keep catching the underlying error, not a wrapper."""
    fn = _Flaky(99)
    with pytest.raises(OSError) as excinfo:
        retry_call(fn, policy=RetryPolicy(max_attempts=3), sleep=_no_sleep)
    assert fn.calls == 3
    # The RetryError rides along as the cause, carrying the attempt count.
    assert isinstance(excinfo.value.__cause__, RetryError)
    assert excinfo.value.__cause__.attempts == 3


def test_non_retryable_exceptions_propagate_immediately():
    """A ValueError is an answer, not weather: one call, no retries."""
    fn = _Flaky(1, exc=ValueError)
    with pytest.raises(ValueError):
        retry_call(fn, retryable=(OSError,), sleep=_no_sleep)
    assert fn.calls == 1


def test_max_attempts_one_means_no_retry():
    fn = _Flaky(1)
    with pytest.raises(OSError):
        retry_call(fn, policy=RetryPolicy(max_attempts=1), sleep=_no_sleep)
    assert fn.calls == 1


def test_backoff_is_exponential_and_capped_without_jitter():
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=False)
    assert [policy.delay(i) for i in range(5)] == [
        0.1, 0.2, 0.4, 0.5, 0.5
    ]


def test_jittered_delay_is_full_jitter():
    """With jitter, every delay is uniform in [0, cap] — never above the cap."""
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5)
    rng = random.Random(7)
    delays = [policy.delay(3, rng) for _ in range(200)]
    assert all(0.0 <= d <= 0.5 for d in delays)
    # Full jitter spreads over the whole range (not clustered at the cap).
    assert min(delays) < 0.1 and max(delays) > 0.4


def test_deadline_stops_retrying():
    """A deadline of zero means the first failure is also the last."""
    fn = _Flaky(99)
    with pytest.raises(OSError):
        retry_call(
            fn,
            policy=RetryPolicy(max_attempts=10, deadline_s=0.0),
            sleep=_no_sleep,
        )
    assert fn.calls == 1


def test_on_retry_callback_sees_each_failure():
    seen = []
    fn = _Flaky(2)
    retry_call(
        fn,
        on_retry=lambda attempt, exc, delay: seen.append((attempt, str(exc))),
        sleep=_no_sleep,
    )
    assert [s[0] for s in seen] == [0, 1]
    assert seen[0][1] == "failure 1"


def test_poll_delays_grow_to_cap_and_stay_jittered():
    """The --wait schedule: paced (floor of half the cap), bounded, endless."""
    rng = random.Random(3)
    gen = poll_delays(base_delay_s=0.1, max_delay_s=0.8, rng=rng)
    delays = [next(gen) for _ in range(32)]
    caps = [min(0.8, 0.1 * 2.0**i) for i in range(32)]
    for delay, cap in zip(delays, caps):
        assert cap * 0.5 <= delay <= cap
    # The tail sits at the cap's band: between 0.4 and 0.8 forever.
    assert all(0.4 <= d <= 0.8 for d in delays[8:])
