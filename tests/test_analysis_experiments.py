"""Tests for repro.analysis — metrics and the figure/table experiment drivers.

These run at very small scales so the whole module stays fast; the benchmark
harness in ``benchmarks/`` runs the same drivers at larger scales.
"""

import pytest

from repro.analysis.experiments import (
    ablation_policies,
    ablation_rate_sweep,
    appfit_single_benchmark,
    figure3_appfit,
    figure4_overheads,
    figure5_scalability_shared,
    figure6_scalability_distributed,
    table1_benchmark_inventory,
)
from repro.analysis.metrics import (
    AggregateReplication,
    ScalabilityCurve,
    aggregate_replication,
    overhead_percent,
    speedup_series,
)
from repro.analysis.report import PAPER_REFERENCE, qualitative_checks
from repro.core.engine import ReplicationDecisions

SCALE = 0.08
FAST_BENCHES = ("cholesky", "fft")


class TestMetrics:
    def _decisions(self, task_frac, time_frac):
        return ReplicationDecisions(
            policy_name="x",
            total_tasks=100,
            replicated_tasks=int(task_frac * 100),
            total_duration_s=100.0,
            replicated_duration_s=time_frac * 100.0,
        )

    def test_aggregate_replication_average(self):
        agg = aggregate_replication(
            {"a": self._decisions(0.5, 0.6), "b": self._decisions(0.3, 0.2)}
        )
        assert agg.mean_task_fraction == pytest.approx(0.4)
        assert agg.mean_time_fraction == pytest.approx(0.4)
        assert agg.mean_task_percent == pytest.approx(40.0)

    def test_aggregate_empty(self):
        agg = aggregate_replication({})
        assert agg.mean_task_fraction == 0.0

    def test_speedup_series(self):
        assert speedup_series([10.0, 5.0, 2.5]) == pytest.approx([1.0, 2.0, 4.0])

    def test_speedup_series_empty(self):
        assert speedup_series([]) == []

    def test_scalability_curve(self):
        curve = ScalabilityCurve("b", 0.0, x_values=[1, 4], makespans_s=[8.0, 2.0])
        assert curve.speedups == pytest.approx([1.0, 4.0])
        assert curve.parallel_efficiency == pytest.approx([1.0, 1.0])


class TestTable1:
    def test_all_nine_rows(self):
        result = table1_benchmark_inventory(scale=SCALE)
        assert len(result.rows) == 9
        assert {r["benchmark"] for r in result.rows} == {
            "sparselu", "cholesky", "fft", "perlin", "stream",
            "nbody", "matmul", "pingpong", "linpack",
        }

    def test_render_contains_groups(self):
        text = table1_benchmark_inventory(scale=SCALE, benchmarks=("cholesky", "nbody")).render()
        assert "shared-memory" in text and "distributed" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return figure3_appfit(scale=SCALE, multipliers=(10.0, 5.0), benchmarks=FAST_BENCHES)

    def test_row_per_benchmark_and_multiplier(self, fig3):
        assert len(fig3.rows) == len(FAST_BENCHES) * 2

    def test_threshold_always_respected(self, fig3):
        assert all(r["threshold_respected"] for r in fig3.rows)
        assert all(r["envelope_respected"] for r in fig3.rows)

    def test_complete_replication_not_needed(self, fig3):
        assert all(r["task_fraction"] < 1.0 for r in fig3.rows)

    def test_10x_needs_at_least_as_much_as_5x(self, fig3):
        for name in FAST_BENCHES:
            by_mult = {r["multiplier"]: r for r in fig3.rows if r["benchmark"] == name}
            assert by_mult[10.0]["task_fraction"] >= by_mult[5.0]["task_fraction"] - 1e-9

    def test_averages_populated(self, fig3):
        assert set(fig3.averages) == {10.0, 5.0}
        assert 0.0 < fig3.averages[10.0]["task_fraction"] <= 1.0

    def test_render(self, fig3):
        text = fig3.render()
        assert "average @ 10x" in text and "%" in text

    def test_qualitative_checks_pass(self, fig3):
        assert qualitative_checks(fig3=fig3) == []


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return figure4_overheads(scale=SCALE, benchmarks=FAST_BENCHES)

    def test_overheads_low_and_non_negative(self, fig4):
        for row in fig4.rows:
            assert -1.0 < row["overhead_percent"] < 40.0
        assert fig4.average_overhead_percent < 20.0

    def test_replicated_makespan_not_smaller(self, fig4):
        for row in fig4.rows:
            assert row["replicated_makespan_s"] >= row["baseline_makespan_s"] - 1e-12

    def test_render_mentions_average(self, fig4):
        assert "average overhead" in fig4.render()

    def test_qualitative_checks_pass(self, fig4):
        assert qualitative_checks(fig4=fig4) == []


class TestFigure5And6:
    def test_shared_memory_scalability_shape(self):
        fig5 = figure5_scalability_shared(
            scale=0.25,
            core_counts=(1, 4, 16),
            fault_rates=(0.0,),
            benchmarks=("cholesky", "stream"),
        )
        chol = fig5.curve("cholesky", 0.0)
        stream = fig5.curve("stream", 0.0)
        assert chol[-1]["speedup"] > 3.0          # compute-bound benchmark scales
        assert stream[-1]["speedup"] < 2.0        # memory-bound benchmark does not
        assert chol[0]["speedup"] == pytest.approx(1.0)

    def test_fault_rate_does_not_break_scaling(self):
        fig5 = figure5_scalability_shared(
            scale=0.25, core_counts=(1, 16), fault_rates=(0.0, 0.05), benchmarks=("cholesky",)
        )
        clean = fig5.curve("cholesky", 0.0)[-1]["speedup"]
        faulty = fig5.curve("cholesky", 0.05)[-1]["speedup"]
        assert faulty > 0.7 * clean

    def test_distributed_scalability(self):
        fig6 = figure6_scalability_distributed(
            scale=0.08, node_counts=(4, 16), fault_rates=(0.0,), benchmarks=("nbody",)
        )
        curve = fig6.curve("nbody", 0.0)
        assert curve[0]["x"] == 64 and curve[-1]["x"] == 256
        assert curve[-1]["speedup"] > 2.0

    def test_render(self):
        fig6 = figure6_scalability_distributed(
            scale=0.08, node_counts=(4,), fault_rates=(0.0,), benchmarks=("pingpong",)
        )
        assert "cores" in fig6.render()


class TestAblations:
    def test_policy_comparison_rows(self):
        result = ablation_policies(scale=SCALE, benchmarks=("cholesky",))
        policies = {r["policy"] for r in result.rows}
        assert policies == {"app_fit", "knapsack_oracle", "random", "top_fit", "complete"}

    def test_appfit_and_oracle_meet_threshold(self):
        result = ablation_policies(scale=SCALE, benchmarks=("cholesky",))
        for row in result.rows:
            if row["policy"] in ("app_fit", "knapsack_oracle", "complete"):
                assert row["meets_threshold"]

    def test_random_same_budget_misses_threshold(self):
        """A FIT-oblivious policy with the same replica count cannot guarantee
        the target — the reason a budget-aware heuristic is needed."""
        result = ablation_policies(scale=SCALE, benchmarks=("cholesky",))
        rows = {r["policy"]: r for r in result.rows}
        assert rows["random"]["unprotected_fit"] >= rows["app_fit"]["unprotected_fit"]

    def test_rate_sweep_monotone(self):
        sweep = ablation_rate_sweep("cholesky", scale=SCALE, multipliers=(2.0, 5.0, 10.0), residual_factors=(0.0,))
        fracs = [r["task_fraction"] for r in sweep.rows]
        assert fracs == sorted(fracs)

    def test_rate_sweep_render(self):
        sweep = ablation_rate_sweep("cholesky", scale=SCALE, multipliers=(5.0,), residual_factors=(0.0,))
        assert "cholesky" in sweep.render()


class TestQuickstartAndReference:
    def test_quickstart_summary(self):
        text = appfit_single_benchmark("cholesky", multiplier=10.0, scale=SCALE)
        assert "tasks replicated" in text and "threshold respected" in text

    def test_paper_reference_numbers_present(self):
        assert PAPER_REFERENCE["fig3_task_percent_10x"] == 53.0
        assert PAPER_REFERENCE["fig4_average_overhead_percent"] == 2.5

    def test_qualitative_checks_empty_for_no_input(self):
        assert qualitative_checks() == []
